"""Heartbeat-based failure detection (paper Section 4.5).

"Heart-beats are exchanged periodically among MDSs within each group.  Once
an MDS failure is detected, the corresponding Bloom filters are removed
from the other MDSs to reduce the number of false positives."

:class:`HeartbeatMonitor` drives that protocol on the deterministic
discrete-event engine: every server beats every ``heartbeat_interval_s``;
group peers watch each other's last-seen timestamps; a server silent for
longer than ``heartbeat_timeout_s`` is declared failed, excised from every
Bloom structure via :meth:`GHBACluster.fail_server`, and reported to the
registered callbacks.  The metadata service remains functional at degraded
coverage, exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Set, Tuple

from repro.core.cluster import GHBACluster
from repro.sim.engine import Simulator


@dataclass
class FailureEvent:
    """One detected failure."""

    server_id: int
    detected_at: float
    detected_by: int
    last_heartbeat_at: float


class HeartbeatMonitor:
    """Group-scoped heartbeat exchange and failure detection.

    Parameters
    ----------
    cluster:
        The cluster to protect; heartbeat timing comes from its config
        (``heartbeat_interval_s`` / ``heartbeat_timeout_s``).
    simulator:
        The event engine supplying virtual time.
    auto_excise:
        When True (default), a detected failure immediately calls
        ``cluster.fail_server`` so stale filters stop misrouting.
    """

    def __init__(
        self,
        cluster: GHBACluster,
        simulator: Simulator,
        auto_excise: bool = True,
    ) -> None:
        self.cluster = cluster
        self.simulator = simulator
        self.auto_excise = auto_excise
        self._last_seen: Dict[int, float] = {}
        self._down: Set[int] = set()
        self._stopped = False
        self._stop_fns: List[Callable[[], None]] = []
        self.failures: List[FailureEvent] = []
        self._callbacks: List[Callable[[FailureEvent], None]] = []
        #: ``(event, exception)`` pairs from callbacks that raised.  A bad
        #: callback must not block the remaining ones (or re-enter the
        #: detection round), so errors are collected here instead of
        #: propagating.
        self.callback_errors: List[Tuple[FailureEvent, Exception]] = []
        self.heartbeats_sent = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic heartbeats and timeout checks."""
        interval = self.cluster.config.heartbeat_interval_s
        now = self.simulator.now
        for server_id in self.cluster.server_ids():
            self._last_seen[server_id] = now
        self._stop_fns.append(
            self.simulator.schedule_periodic(interval, self._beat_round)
        )
        self._stop_fns.append(
            self.simulator.schedule_periodic(interval, self._check_round)
        )

    def stop(self) -> None:
        self._stopped = True
        for stop in self._stop_fns:
            stop()
        self._stop_fns.clear()

    def on_failure(self, callback: Callable[[FailureEvent], None]) -> None:
        """Register a callback invoked on every detection."""
        self._callbacks.append(callback)

    # ------------------------------------------------------------------
    # Crash injection (tests / failure-injection experiments)
    # ------------------------------------------------------------------
    def crash(self, server_id: int) -> None:
        """Silence ``server_id``: it stops beating but is not yet excised.

        Detection (and excision, if ``auto_excise``) happens only when the
        timeout elapses — the window during which the paper's stale-filter
        misrouting risk exists.
        """
        if server_id not in self._last_seen:
            raise KeyError(f"unknown server {server_id}")
        self._down.add(server_id)

    def is_down(self, server_id: int) -> bool:
        return server_id in self._down

    def detected(self, server_id: int) -> bool:
        return any(event.server_id == server_id for event in self.failures)

    # ------------------------------------------------------------------
    # Protocol rounds
    # ------------------------------------------------------------------
    def _beat_round(self) -> None:
        """Every live server heartbeats to its group peers."""
        if self._stopped:
            return
        now = self.simulator.now
        for server_id in list(self._last_seen):
            if server_id in self._down:
                continue
            if server_id not in self.cluster.servers:
                self._last_seen.pop(server_id, None)
                continue
            self._last_seen[server_id] = now
            group = self.cluster.group_of(server_id)
            self.heartbeats_sent += max(0, group.size - 1)

    def _check_round(self) -> None:
        """Group peers look for members whose beats have gone silent."""
        if self._stopped:
            return
        now = self.simulator.now
        timeout = self.cluster.config.heartbeat_timeout_s
        for server_id, last in list(self._last_seen.items()):
            if server_id not in self.cluster.servers:
                self._last_seen.pop(server_id, None)
                continue
            if now - last <= timeout:
                continue
            group = self.cluster.group_of(server_id)
            witnesses = [
                peer for peer in group.member_ids() if peer != server_id
            ]
            detector = witnesses[0] if witnesses else server_id
            event = FailureEvent(
                server_id=server_id,
                detected_at=now,
                detected_by=detector,
                last_heartbeat_at=last,
            )
            self.failures.append(event)
            self._last_seen.pop(server_id, None)
            self._down.discard(server_id)
            if self.auto_excise and self.cluster.num_servers > 1:
                self.cluster.fail_server(server_id)
            # Excision is complete before any callback runs, and one
            # misbehaving callback cannot starve the others.
            for callback in self._callbacks:
                try:
                    callback(event)
                except Exception as exc:
                    self.callback_errors.append((event, exc))

    # ------------------------------------------------------------------
    # Membership tracking
    # ------------------------------------------------------------------
    def track(self, server_id: int) -> None:
        """Start monitoring a newly joined server."""
        self._last_seen[server_id] = self.simulator.now

    def __repr__(self) -> str:
        return (
            f"HeartbeatMonitor(tracked={len(self._last_seen)}, "
            f"failures={len(self.failures)})"
        )
