"""Algebraic operations on Bloom filters (paper Section 3.4).

The paper uses three algebraic properties of Bloom filters built with the
same geometry and hash functions:

- **Property 1** — the union of two sets is represented by the bitwise OR of
  their filters: ``BF(A ∪ B) = BF(A) | BF(B)`` exactly.
- **Property 2** — the bitwise AND approximates the intersection:
  ``BF(A) & BF(B)`` contains every bit of ``BF(A ∩ B)`` and possibly more.
- **Property 3** — the XOR of the sets, ``A ⊕ B = (A − B) ∪ (B − A)``, is
  approximated by combining unions and intersections; at the *bit vector*
  level, the XOR of two filters highlights exactly the positions where they
  differ.

The bit-level XOR drives the replica update rule: an MDS periodically XORs
its live local filter against the version last shipped to remote groups, and
re-replicates only when the number of differing bits exceeds a threshold.
"""

from __future__ import annotations

from repro.bloom.bloom_filter import BloomFilter


def _check_pair(a: BloomFilter, b: BloomFilter) -> None:
    if not a.is_compatible(b):
        raise ValueError(
            "filters are incompatible (geometry or hash family differs): "
            f"{a!r} vs {b!r}"
        )


def bloom_union(a: BloomFilter, b: BloomFilter) -> BloomFilter:
    """Return ``BF(A ∪ B)`` — exact per paper Property 1.

    The resulting filter answers membership for ``A ∪ B`` exactly as a filter
    built from scratch over the union would (identical bit vector).
    """
    _check_pair(a, b)
    return a._with_bits(a.bits | b.bits, a.num_items + b.num_items)


def bloom_intersection(a: BloomFilter, b: BloomFilter) -> BloomFilter:
    """Return the AND approximation of ``BF(A ∩ B)`` — paper Property 2.

    Every member of ``A ∩ B`` is contained (no false negatives) but the
    false-positive rate exceeds that of a filter built directly over the
    intersection.
    """
    _check_pair(a, b)
    # Item count is unknowable from bits alone; the min is a safe upper bound.
    return a._with_bits(a.bits & b.bits, min(a.num_items, b.num_items))


def bloom_xor(a: BloomFilter, b: BloomFilter) -> BloomFilter:
    """Return the bit-level XOR of two filters — paper Property 3.

    The set bits mark exactly the positions where the filters differ.  The
    result is primarily useful for *difference measurement* (see
    :func:`bit_difference`), not membership queries.
    """
    _check_pair(a, b)
    return a._with_bits(a.bits ^ b.bits, abs(a.num_items - b.num_items))


def bit_difference(a: BloomFilter, b: BloomFilter) -> int:
    """Return the Hamming distance between two filters' bit vectors.

    This is the quantity the XOR-threshold update rule compares against its
    threshold (paper Section 3.4, last paragraph).
    """
    _check_pair(a, b)
    return a.bits.hamming_distance(b.bits)


def needs_update(local: BloomFilter, replica: BloomFilter, threshold: int) -> bool:
    """Return True if ``replica`` is stale enough to warrant re-replication.

    Parameters
    ----------
    local:
        The authoritative, live filter on the home MDS.
    replica:
        The version currently held by remote MDSs.
    threshold:
        Maximum tolerated number of differing bits; a difference strictly
        greater than this triggers an update message.
    """
    if threshold < 0:
        raise ValueError(f"threshold must be non-negative, got {threshold}")
    return bit_difference(local, replica) > threshold


def intersection_excess_probability(
    num_bits: int,
    num_hashes: int,
    a_only_items: int,
    b_only_items: int,
) -> float:
    """Section 3.4's intersection analysis, as a computable function.

    The paper states that the false-positive probability of the directly
    built ``BF(A ∩ B)`` is smaller than that of the bitwise
    ``BF(A) & BF(B)`` *with probability*

        (1 - (1 - 1/m)^(k |A - (A∩B)|)) * (1 - (1 - 1/m)^(k |B - (A∩B)|)),

    i.e. the probability that both exclusive sides contribute at least one
    extra bit position to the AND (each term is the chance that a given
    position is touched by the side's exclusive items).  When either side
    has no exclusive items the AND equals the direct filter and the excess
    vanishes.
    """
    if num_bits <= 0:
        raise ValueError(f"num_bits must be positive, got {num_bits}")
    if num_hashes <= 0:
        raise ValueError(f"num_hashes must be positive, got {num_hashes}")
    if a_only_items < 0 or b_only_items < 0:
        raise ValueError("exclusive item counts must be non-negative")
    miss = 1.0 - 1.0 / num_bits
    term_a = 1.0 - miss ** (num_hashes * a_only_items)
    term_b = 1.0 - miss ** (num_hashes * b_only_items)
    return term_a * term_b


def measured_false_positive_rate(
    bloom: BloomFilter, probes: int = 2_000, tag: str = "fpr"
) -> float:
    """Empirical false-positive rate over never-inserted probe items."""
    if probes <= 0:
        raise ValueError(f"probes must be positive, got {probes}")
    hits = sum(
        1 for index in range(probes) if bloom.query(f"__{tag}_probe_{index}")
    )
    return hits / probes


def merge_into(target: BloomFilter, source: BloomFilter) -> None:
    """In-place union: fold ``source`` into ``target`` (Property 1)."""
    _check_pair(target, source)
    target.bits.__ior__(source.bits)
    target._num_items += source.num_items
