"""Counting Bloom filter (Fan et al., Summary Cache, 2000).

The paper's identification Bloom filter array (IDBFA, Section 2.4) uses
counting Bloom filters so that a replica's location record can be *deleted*
when the replica migrates or its MDS departs.  Each position holds a small
counter instead of a single bit; insertion increments, deletion decrements,
and membership tests check that every counter is non-zero.

Hot path: alongside the counter list the filter maintains ``_nonzero``, a
packed big-int mirror with bit ``i`` set iff ``counters[i] > 0``.  A
membership test is then identical to the plain filter's — one AND plus a
compare against the memoized probe mask — instead of k list indexings
(DESIGN.md §15).  The counters stay the source of truth; the mirror is
updated on every zero-crossing.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.bloom.bloom_filter import BloomFilter
from repro.bloom.hashing import HashFamily, shared_family


class CountingBloomFilter:
    """A Bloom filter whose positions are counters, supporting deletion.

    Parameters
    ----------
    num_counters:
        Number of counter cells (the ``m`` of the equivalent plain filter).
    num_hashes:
        Number of hash functions (``k``).
    seed:
        Hash family seed.
    counter_bits:
        Width of each counter; counters saturate at ``2**counter_bits - 1``
        rather than overflowing (4 bits is the classic choice and overflows
        with negligible probability).
    """

    __slots__ = ("_counters", "_nonzero", "_hashes", "_num_items", "_max_count")

    def __init__(
        self,
        num_counters: int,
        num_hashes: int,
        seed: int = 0,
        counter_bits: int = 4,
    ) -> None:
        if num_counters <= 0:
            raise ValueError(f"num_counters must be positive, got {num_counters}")
        if counter_bits <= 0 or counter_bits > 16:
            raise ValueError(f"counter_bits must be in [1, 16], got {counter_bits}")
        self._counters: List[int] = [0] * num_counters
        self._nonzero = 0
        self._hashes = shared_family(num_hashes, num_counters, seed)
        self._num_items = 0
        self._max_count = (1 << counter_bits) - 1

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def num_counters(self) -> int:
        return len(self._counters)

    @property
    def hash_family(self) -> HashFamily:
        return self._hashes

    @property
    def num_hashes(self) -> int:
        return self._hashes.num_hashes

    @property
    def seed(self) -> int:
        return self._hashes.seed

    @property
    def num_items(self) -> int:
        """Net number of items currently represented (adds minus removes)."""
        return self._num_items

    @property
    def max_count(self) -> int:
        return self._max_count

    @property
    def nonzero_value(self) -> int:
        """Packed mirror: bit ``i`` set iff ``counters[i] > 0``."""
        return self._nonzero

    def counters(self) -> List[int]:
        """A copy of the raw counter array (the source of truth)."""
        return list(self._counters)

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def add(self, item: object) -> None:
        """Insert ``item``, incrementing (saturating) its counters."""
        counters = self._counters
        max_count = self._max_count
        # Mirror bits flip only on 0 -> 1 transitions (not a blanket mask
        # OR): duplicate indices in one probe sequence can leave a counter
        # at zero after an increment, and the mirror must agree with the
        # per-counter truth ``count > 0`` in that corner too.
        for index in self._hashes.probe(item)[0]:
            count = counters[index]
            if count < max_count:
                counters[index] = count + 1
                if count == 0:
                    self._nonzero |= 1 << index
        self._num_items += 1

    def update(self, items: Iterable[object]) -> None:
        for item in items:
            self.add(item)

    def remove(self, item: object) -> None:
        """Delete ``item``, decrementing its counters.

        Raises
        ------
        KeyError
            If the filter definitely does not contain ``item`` (some counter
            is already zero).  Deleting a never-inserted item that happens to
            collide is undetectable — that is inherent to counting filters —
            but deleting an item whose counters are zero is always an error.
        """
        indices = self._hashes.probe(item)[0]
        counters = self._counters
        # The exact per-counter check, not the mirror: the historical
        # contract raises only when some counter is exactly zero.
        if any(counters[i] == 0 for i in indices):
            raise KeyError(f"item not present in counting filter: {item!r}")
        max_count = self._max_count
        for index in indices:
            # Saturated counters cannot be decremented safely: the true count
            # is unknown.  Leaving them saturated keeps false negatives out.
            count = counters[index]
            if count < max_count:
                counters[index] = count - 1
                if count == 1:
                    self._nonzero &= ~(1 << index)
        self._num_items = max(0, self._num_items - 1)

    def discard(self, item: object) -> bool:
        """Like :meth:`remove` but returns False instead of raising."""
        try:
            self.remove(item)
        except KeyError:
            return False
        return True

    def __contains__(self, item: object) -> bool:
        return self.query(item)

    def query(self, item: object) -> bool:
        """Return True if ``item`` *may* be present."""
        mask = self._hashes.probe(item)[1]
        return (self._nonzero & mask) == mask

    def query_mask(self, mask: int) -> bool:
        """Membership test for a precomputed probe mask (the batch path)."""
        return (self._nonzero & mask) == mask

    def contains_many(self, items: Sequence[object]) -> List[bool]:
        """Batched membership: one AND/compare per item."""
        nonzero = self._nonzero
        probe = self._hashes.probe
        return [(nonzero & (m := probe(item)[1])) == m for item in items]

    def contains_indices(self, indices: List[int]) -> bool:
        """Membership test with precomputed indices (shared-family probes)."""
        return all(self._counters[i] > 0 for i in indices)

    def count_estimate(self, item: object) -> int:
        """Minimum counter value across the item's positions.

        This is an upper bound on the number of times ``item`` was added
        (the count-min sketch estimate restricted to this filter).
        """
        return min(self._counters[i] for i in self._hashes.probe(item)[0])

    def clear(self) -> None:
        for i in range(len(self._counters)):
            self._counters[i] = 0
        self._nonzero = 0
        self._num_items = 0

    # ------------------------------------------------------------------
    # Conversions and introspection
    # ------------------------------------------------------------------
    def to_bloom_filter(self) -> BloomFilter:
        """Project to a plain Bloom filter (counter > 0 → bit set)."""
        bloom = BloomFilter(self.num_counters, self.num_hashes, self.seed)
        bloom.bits.set_mask(self._nonzero)
        bloom._num_items = self._num_items
        return bloom

    def fill_ratio(self) -> float:
        """Fraction of non-zero counters."""
        nonzero = sum(1 for count in self._counters if count > 0)
        return nonzero / len(self._counters)

    def copy(self) -> "CountingBloomFilter":
        clone = CountingBloomFilter(
            self.num_counters, self.num_hashes, self.seed
        )
        clone._max_count = self._max_count
        clone._counters = list(self._counters)
        clone._nonzero = self._nonzero
        clone._num_items = self._num_items
        return clone

    def is_compatible(self, other: "CountingBloomFilter") -> bool:
        return self._hashes.is_compatible(other._hashes)

    def __repr__(self) -> str:
        return (
            f"CountingBloomFilter(num_counters={self.num_counters}, "
            f"num_hashes={self.num_hashes}, num_items={self._num_items})"
        )

    def size_bytes(self) -> int:
        """Approximate in-memory payload size (counter_bits per cell)."""
        bits = len(self._counters) * max(1, self._max_count.bit_length())
        return (bits + 7) // 8
