"""Bloom filter arrays — the building blocks of G-HBA's query levels.

Three array structures from the paper are implemented here:

- :class:`BloomFilterArray` — an ordered collection of Bloom filter replicas,
  one per home MDS.  A membership query probes every filter; a *unique hit*
  (exactly one filter fires) names the likely home MDS.  This is the
  structure behind both the L2 *segment* array (a subset of all replicas)
  and the flat array of the HBA/BFA baselines (all replicas).
- :class:`LRUBloomFilterArray` — the L1 array capturing temporal locality:
  a capacity-bounded LRU of recently resolved ``file → home MDS`` mappings,
  represented per-MDS by counting Bloom filters so that evictions cleanly
  clear bits.
- :class:`IDBloomFilterArray` — the IDBFA of Section 2.4: for each MDS in a
  group, a counting Bloom filter of the replica IDs it currently hosts,
  used to localize a replica before updating it.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.bloom.bloom_filter import BloomFilter
from repro.bloom.counting import CountingBloomFilter

# ``slots=True`` for dataclasses is 3.10+; CI also runs 3.9.
if sys.version_info >= (3, 10):
    _frozen_slots = dataclass(frozen=True, slots=True)
else:  # pragma: no cover - exercised only on Python < 3.10
    _frozen_slots = dataclass(frozen=True)


@_frozen_slots
class ArrayLookup:
    """Result of probing a Bloom filter array.

    Attributes
    ----------
    hits:
        IDs (home MDS identifiers) of the filters that reported membership.
    probes:
        Number of filters examined.
    """

    hits: Tuple[int, ...]
    probes: int

    @property
    def is_unique(self) -> bool:
        """True when exactly one filter fired — the array's success case."""
        return len(self.hits) == 1

    @property
    def is_miss(self) -> bool:
        """True when zero or multiple filters fired (paper: a 'miss')."""
        return not self.is_unique

    @property
    def unique_hit(self) -> int:
        """The single hit ID; raises if the lookup was not unique."""
        if not self.is_unique:
            raise ValueError(f"lookup is not unique: hits={self.hits}")
        return self.hits[0]


class BloomFilterArray:
    """An ordered array of Bloom filter replicas keyed by home MDS ID."""

    def __init__(self) -> None:
        # Insertion-ordered like every dict; a plain dict probes and
        # iterates faster than OrderedDict on the query hot path.
        self._filters: Dict[int, BloomFilter] = {}
        #: Monotonic mutation counter.  Callers that cache a flattened view
        #: of the array (the group's fused L3 probe plan) compare versions
        #: to detect replica installs/updates/removals.
        self._version = 0
        # Most probes miss every filter; reuse one (immutable) empty result
        # instead of allocating a fresh ArrayLookup per miss.
        self._empty_lookup: Optional[ArrayLookup] = None

    @property
    def version(self) -> int:
        return self._version

    # ------------------------------------------------------------------
    # Replica management
    # ------------------------------------------------------------------
    def add_replica(self, home_id: int, bloom: BloomFilter) -> None:
        """Install ``bloom`` as the replica for ``home_id``.

        Raises
        ------
        ValueError
            If a replica for ``home_id`` already exists (use
            :meth:`replace_replica` for updates).
        """
        if home_id in self._filters:
            raise ValueError(f"replica for MDS {home_id} already present")
        self._filters[home_id] = bloom
        self._version += 1

    def replace_replica(self, home_id: int, bloom: BloomFilter) -> None:
        """Overwrite the replica for ``home_id`` (replica update path)."""
        if home_id not in self._filters:
            raise KeyError(f"no replica for MDS {home_id}")
        self._filters[home_id] = bloom
        self._version += 1

    def remove_replica(self, home_id: int) -> BloomFilter:
        """Remove and return the replica for ``home_id``."""
        try:
            replica = self._filters.pop(home_id)
        except KeyError:
            raise KeyError(f"no replica for MDS {home_id}") from None
        self._version += 1
        return replica

    def get_replica(self, home_id: int) -> BloomFilter:
        try:
            return self._filters[home_id]
        except KeyError:
            raise KeyError(f"no replica for MDS {home_id}") from None

    def __contains__(self, home_id: int) -> bool:
        return home_id in self._filters

    def __len__(self) -> int:
        return len(self._filters)

    def __iter__(self) -> Iterator[int]:
        return iter(self._filters)

    def home_ids(self) -> List[int]:
        """IDs of the MDSs whose replicas this array holds, in order."""
        return list(self._filters)

    def items(self) -> Iterable[Tuple[int, BloomFilter]]:
        return self._filters.items()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, item: object) -> ArrayLookup:
        """Probe every filter; return the set of hits.

        Filters sharing a hash family (the common case: every MDS uses the
        same geometry so replicas stay comparable — and interning hands
        them the *same* family object) are probed with one memoized mask
        computation; each filter then costs one AND plus one compare.
        """
        hits: List[int] = []
        family = None
        mask = 0
        for home_id, bloom in self._filters.items():
            if bloom._hashes is not family:
                family = bloom._hashes
                mask = family.mask(item)
            if (bloom._bits._value & mask) == mask:
                hits.append(home_id)
        probes = len(self._filters)
        if hits:
            return ArrayLookup(hits=tuple(hits), probes=probes)
        empty = self._empty_lookup
        if empty is None or empty.probes != probes:
            empty = ArrayLookup(hits=(), probes=probes)
            self._empty_lookup = empty
        return empty

    def query_into(self, item: object, hits: set) -> int:
        """Fused :meth:`query`: union hit IDs into ``hits``, return probes.

        The L3 multicast probes every group member's array for the same
        item and only needs the union of hits; this variant skips the
        per-member :class:`ArrayLookup` allocation and sort (DESIGN.md §15).
        """
        family = None
        mask = 0
        for home_id, bloom in self._filters.items():
            if bloom._hashes is not family:
                family = bloom._hashes
                mask = family.mask(item)
            if (bloom._bits._value & mask) == mask:
                hits.add(home_id)
        return len(self._filters)

    def probe_batch(self, items: Sequence[object]) -> List[ArrayLookup]:
        """Batched :meth:`query`: one walk of the array per item, with the
        per-call plumbing (filter iteration setup, family dispatch) hoisted
        out of the loop.  Semantically identical to ``[self.query(i) for i
        in items]``."""
        filters = list(self._filters.items())
        probes = len(filters)
        out: List[ArrayLookup] = []
        for item in items:
            hits: List[int] = []
            family = None
            mask = 0
            for home_id, bloom in filters:
                if bloom._hashes is not family:
                    family = bloom._hashes
                    mask = family.mask(item)
                if (bloom._bits._value & mask) == mask:
                    hits.append(home_id)
            out.append(ArrayLookup(hits=tuple(hits), probes=probes))
        return out

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def size_bytes(self) -> int:
        """Total payload size of all replicas."""
        return sum(bloom.size_bytes() for bloom in self._filters.values())

    def __repr__(self) -> str:
        return f"BloomFilterArray(replicas={len(self._filters)})"


#: Replacement policies supported by the L1 array.  The paper uses LRU and
#: names better replacement as future work (Section 7); FIFO and LFU are
#: provided for the replacement-policy ablation.
REPLACEMENT_POLICIES = ("lru", "fifo", "lfu")


class LRUBloomFilterArray:
    """The L1 array: a bounded cache of hot ``file → home MDS`` mappings.

    The ground truth is a capacity-bounded dictionary evicted by the chosen
    replacement policy (LRU by default, as in the paper).  For faithful
    Bloom-filter semantics, each home MDS is additionally summarized by a
    counting Bloom filter over the hot files it owns; queries probe the
    filters (so false positives can and do occur), and evictions decrement
    counters so the filters track the cache contents exactly.

    Parameters
    ----------
    capacity:
        Maximum number of hot entries retained.
    filter_bits:
        Counter cells per per-MDS filter.
    num_hashes:
        Hash functions per filter.
    seed:
        Hash family seed.
    policy:
        ``"lru"`` (recency, the paper's choice), ``"fifo"`` (insertion
        order, no refresh) or ``"lfu"`` (least frequently used; ties evict
        the newest entry — including the just-admitted one — so one-hit
        wonders never displace established entries, and ghost frequency
        counts let repeatedly requested items win admission eventually).
    """

    def __init__(
        self,
        capacity: int,
        filter_bits: int = 4096,
        num_hashes: int = 6,
        seed: int = 0,
        policy: str = "lru",
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if policy not in REPLACEMENT_POLICIES:
            raise ValueError(
                f"policy must be one of {REPLACEMENT_POLICIES}, got {policy!r}"
            )
        self._capacity = capacity
        self._filter_bits = filter_bits
        self._num_hashes = num_hashes
        self._seed = seed
        self._policy = policy
        # Insertion order doubles as the recency order (refreshed via
        # pop + reinsert); a plain dict is faster than OrderedDict here.
        self._entries: Dict[object, int] = {}
        self._use_counts: Dict[object, int] = {}
        self._is_lfu = policy == "lfu"
        self._is_fifo = policy == "fifo"
        self._is_lru = policy == "lru"
        self._empty_lru_lookup: Optional[ArrayLookup] = None
        self._hits = 0
        self._misses = 0
        self._filters: Dict[int, CountingBloomFilter] = {}

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def policy(self) -> str:
        return self._policy

    @property
    def num_filters(self) -> int:
        """Number of per-home counting filters currently held."""
        return len(self._filters)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        """Unique-hit count since construction (for hit-rate metrics)."""
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    def hit_rate(self) -> float:
        total = self._hits + self._misses
        return self._hits / total if total else 0.0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def _filter_for(self, home_id: int) -> CountingBloomFilter:
        bloom = self._filters.get(home_id)
        if bloom is None:
            bloom = CountingBloomFilter(
                self._filter_bits, self._num_hashes, self._seed
            )
            self._filters[home_id] = bloom
        return bloom

    def record(self, item: object, home_id: int) -> None:
        """Record that ``item`` was resolved to ``home_id`` (query success).

        Under LRU, existing entries are refreshed (moved to the MRU
        position); under FIFO they keep their insertion rank; under LFU
        their use count increments.  If the home changed (metadata
        migrated), the stale mapping is replaced.  Capacity overflow evicts
        one victim by policy and clears its filter bits.
        """
        if self._is_fifo and item in self._entries:
            previous = self._entries[item]
            if previous != home_id:
                self._filters[previous].discard(item)
                self._entries[item] = home_id
                self._filter_for(home_id).add(item)
            return
        previous = self._entries.pop(item, None)
        if previous is not None and previous != home_id:
            self._filters[previous].discard(item)
            previous = None
        self._entries[item] = home_id
        if self._is_lfu:
            # Use counts only drive LFU victim selection; skip the
            # bookkeeping entirely under LRU/FIFO.
            self._use_counts[item] = self._use_counts.get(item, 0) + 1
        if previous is None:
            self._filter_for(home_id).add(item)
        if len(self._entries) > self._capacity:
            self._evict_one()

    def _pick_victim(self) -> object:
        if self._is_lfu:
            # Least frequently used; ties evict the *newest* entry, so
            # established entries keep tenure instead of thrashing when a
            # scan floods the cache with count-1 items.
            victim = None
            victim_key = None
            for position, item in enumerate(self._entries):
                key = (self._use_counts.get(item, 0), -position)
                if victim_key is None or key < victim_key:
                    victim_key = key
                    victim = item
            return victim
        # LRU and FIFO both evict the oldest entry in ``_entries`` order
        # (LRU refreshes order on use; FIFO never does).
        return next(iter(self._entries))

    def _evict_one(self) -> None:
        item = self._pick_victim()
        home_id = self._entries.pop(item)
        if self._is_lfu:
            # Keep a ghost frequency count so a repeatedly requested item
            # eventually out-scores incumbents and gets admitted (TinyLFU
            # style); bound the ghost table to a multiple of capacity.
            # (Under LRU/FIFO ``_use_counts`` is never written, so there
            # is nothing to drop.)
            if len(self._use_counts) > 8 * self._capacity:
                self._use_counts = {
                    key: count
                    for key, count in self._use_counts.items()
                    if key in self._entries
                }
        self._filters[home_id].discard(item)

    def invalidate(self, item: object) -> bool:
        """Drop ``item`` from the cache (e.g. after a false forward)."""
        home_id = self._entries.pop(item, None)
        if home_id is None:
            return False
        self._use_counts.pop(item, None)
        self._filters[home_id].discard(item)
        return True

    def invalidate_home(self, home_id: int) -> int:
        """Drop every entry pointing at ``home_id`` (MDS departure).

        Returns the number of entries removed.
        """
        victims = [
            item for item, home in self._entries.items() if home == home_id
        ]
        for item in victims:
            del self._entries[item]
            self._use_counts.pop(item, None)
        self._filters.pop(home_id, None)
        return len(victims)

    def clear(self) -> None:
        self._entries.clear()
        self._use_counts.clear()
        self._filters.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, item: object) -> ArrayLookup:
        """Probe the per-MDS counting filters (L1 lookup).

        Updates the hit/miss counters used for Figure 13's per-level rates.
        Every per-home filter is built by :meth:`_filter_for` with one
        geometry, so they all share one interned hash family and the probe
        mask is computed exactly once.
        """
        hits_list: List[int] = []
        filters = self._filters
        if filters:
            mask = next(iter(filters.values()))._hashes.mask(item)
            for home_id, bloom in filters.items():
                if (bloom._nonzero & mask) == mask:
                    hits_list.append(home_id)
        probes = len(filters)
        if hits_list:
            if len(hits_list) == 1:
                self._hits += 1
            else:
                self._misses += 1
            return ArrayLookup(hits=tuple(hits_list), probes=probes)
        self._misses += 1
        empty = self._empty_lru_lookup
        if empty is None or empty.probes != probes:
            empty = ArrayLookup(hits=(), probes=probes)
            self._empty_lru_lookup = empty
        return empty

    def probe_batch(self, items: Sequence[object]) -> List[ArrayLookup]:
        """Batched :meth:`query` over the per-home counting filters.

        Updates the hit/miss statistics exactly as per-item :meth:`query`
        calls would.
        """
        filters = list(self._filters.items())
        probes = len(filters)
        mask_of = filters[0][1]._hashes.mask if filters else None
        out: List[ArrayLookup] = []
        for item in items:
            hits_list: List[int] = []
            if filters:
                mask = mask_of(item)
                for home_id, bloom in filters:
                    if (bloom._nonzero & mask) == mask:
                        hits_list.append(home_id)
            out.append(ArrayLookup(hits=tuple(hits_list), probes=probes))
            if len(hits_list) == 1:
                self._hits += 1
            else:
                self._misses += 1
        return out

    def touch(self, item: object) -> None:
        """Register a use of ``item`` without changing its mapping.

        Refreshes recency under LRU, bumps the use count under LFU, and is
        a no-op under FIFO.
        """
        if item not in self._entries:
            return
        if self._is_lfu:
            self._use_counts[item] = self._use_counts.get(item, 0) + 1
        if self._is_lru:
            home_id = self._entries.pop(item)
            self._entries[item] = home_id

    def peek(self, item: object) -> Optional[int]:
        """Ground-truth lookup (no Bloom probing, no stat updates)."""
        return self._entries.get(item)

    def size_bytes(self) -> int:
        return sum(bloom.size_bytes() for bloom in self._filters.values())

    def __repr__(self) -> str:
        return (
            f"LRUBloomFilterArray(capacity={self._capacity}, "
            f"entries={len(self._entries)}, homes={len(self._filters)})"
        )


class IDBloomFilterArray:
    """The IDBFA (paper Section 2.4): replica localization within a group.

    For every MDS in the group, a counting Bloom filter represents the set of
    replica IDs (home MDS identifiers of the replicated filters) that
    physically reside on that MDS.  Updating a replica first queries this
    array to find the hosting MDS; counting filters let replica migrations
    and MDS departures delete entries.

    The class also maintains an exact mirror of the placements so that false
    positives can be *detected* (the paper notes a falsely identified MDS
    simply drops the update), and so invariants can be asserted in tests.
    """

    def __init__(
        self,
        num_counters: int = 512,
        num_hashes: int = 4,
        seed: int = 0,
    ) -> None:
        self._num_counters = num_counters
        self._num_hashes = num_hashes
        self._seed = seed
        self._filters: Dict[int, CountingBloomFilter] = {}
        self._placements: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Membership of member MDSs
    # ------------------------------------------------------------------
    def add_member(self, mds_id: int) -> None:
        """Register a group member with an empty ID filter."""
        if mds_id in self._filters:
            raise ValueError(f"MDS {mds_id} already a member")
        self._filters[mds_id] = CountingBloomFilter(
            self._num_counters, self._num_hashes, self._seed
        )

    def remove_member(self, mds_id: int) -> List[int]:
        """Deregister ``mds_id``; return the replica IDs it was hosting."""
        if mds_id not in self._filters:
            raise KeyError(f"MDS {mds_id} is not a member")
        del self._filters[mds_id]
        orphans = [
            replica_id
            for replica_id, host in self._placements.items()
            if host == mds_id
        ]
        for replica_id in orphans:
            del self._placements[replica_id]
        return orphans

    def members(self) -> List[int]:
        return list(self._filters)

    def __contains__(self, mds_id: int) -> bool:
        return mds_id in self._filters

    # ------------------------------------------------------------------
    # Replica placement records
    # ------------------------------------------------------------------
    def place(self, replica_id: int, mds_id: int) -> None:
        """Record that the replica of MDS ``replica_id`` lives on ``mds_id``."""
        if mds_id not in self._filters:
            raise KeyError(f"MDS {mds_id} is not a member")
        if replica_id in self._placements:
            raise ValueError(
                f"replica {replica_id} already placed on "
                f"MDS {self._placements[replica_id]}"
            )
        self._filters[mds_id].add(replica_id)
        self._placements[replica_id] = mds_id

    def unplace(self, replica_id: int) -> int:
        """Remove the placement record; return the MDS that hosted it."""
        try:
            mds_id = self._placements.pop(replica_id)
        except KeyError:
            raise KeyError(f"replica {replica_id} is not placed") from None
        self._filters[mds_id].remove(replica_id)
        return mds_id

    def move(self, replica_id: int, new_mds_id: int) -> int:
        """Migrate a placement record; return the previous host."""
        old = self.unplace(replica_id)
        self.place(replica_id, new_mds_id)
        return old

    def host_of(self, replica_id: int) -> Optional[int]:
        """Exact (ground-truth) host of ``replica_id``, or None."""
        return self._placements.get(replica_id)

    def replicas_on(self, mds_id: int) -> List[int]:
        """Exact list of replica IDs hosted on ``mds_id``."""
        return [
            replica_id
            for replica_id, host in self._placements.items()
            if host == mds_id
        ]

    def replica_count(self, mds_id: int) -> int:
        return len(self.replicas_on(mds_id))

    def placements(self) -> Dict[int, int]:
        """Copy of the exact placement map (replica ID → host MDS)."""
        return dict(self._placements)

    # ------------------------------------------------------------------
    # Probabilistic lookup (the actual IDBFA query)
    # ------------------------------------------------------------------
    def locate(self, replica_id: int) -> ArrayLookup:
        """Probe every member's ID filter for ``replica_id``.

        Multiple hits are possible (false positives); the caller contacts
        every candidate and the false ones drop the request, exactly as the
        paper describes.
        """
        hits = tuple(
            mds_id
            for mds_id, bloom in self._filters.items()
            if bloom.query(replica_id)
        )
        return ArrayLookup(hits=hits, probes=len(self._filters))

    def copy(self) -> "IDBloomFilterArray":
        """Deep copy — multicast to a newly joined MDS clones the IDBFA."""
        clone = IDBloomFilterArray(
            self._num_counters, self._num_hashes, self._seed
        )
        clone._filters = {
            mds_id: bloom.copy() for mds_id, bloom in self._filters.items()
        }
        clone._placements = dict(self._placements)
        return clone

    def size_bytes(self) -> int:
        return sum(bloom.size_bytes() for bloom in self._filters.values())

    def __repr__(self) -> str:
        return (
            f"IDBloomFilterArray(members={len(self._filters)}, "
            f"placements={len(self._placements)})"
        )
