"""Compressed Bloom filter transfer (Mitzenmacher 2002, paper Section 6).

The paper's related work cites compressed Bloom filters as a standard way
to cut the *transmission* size of a filter: a filter tuned for a low
in-memory false-positive rate is sparse (fill ratio well under 1/2), and a
sparse bit vector compresses far below its raw size.  G-HBA ships filter
replicas on every update and reconfiguration, so transfer size matters.

:func:`compress_filter` / :func:`decompress_filter` wrap the filter's
serialization with DEFLATE (zlib, stdlib) and report the achieved ratio;
:func:`transfer_cost_report` quantifies the saving for a given filter —
used by the replica-shipping accounting and its tests.

The information-theoretic floor for a vector with fill ratio ``p`` is the
binary entropy ``H(p)`` bits per bit; :func:`entropy_bound_bytes` exposes
it so tests can check DEFLATE lands between the floor and the raw size.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

from repro.bloom.bloom_filter import BloomFilter

#: zlib level used for replica shipping: best ratio, still microseconds for
#: the kilobyte-scale filters in play.
COMPRESSION_LEVEL = 9


@dataclass(frozen=True)
class TransferCost:
    """Size accounting for shipping one filter replica."""

    raw_bytes: int
    compressed_bytes: int
    fill_ratio: float
    entropy_bound_bytes: int

    @property
    def ratio(self) -> float:
        """Compressed size relative to raw (< 1 means savings)."""
        if self.raw_bytes == 0:
            return 1.0
        return self.compressed_bytes / self.raw_bytes

    @property
    def saved_bytes(self) -> int:
        return max(0, self.raw_bytes - self.compressed_bytes)


def compress_filter(bloom: BloomFilter) -> bytes:
    """Serialize and DEFLATE-compress ``bloom`` for transfer."""
    return zlib.compress(bloom.to_bytes(), COMPRESSION_LEVEL)


def decompress_filter(payload: bytes) -> BloomFilter:
    """Reverse of :func:`compress_filter`."""
    return BloomFilter.from_bytes(zlib.decompress(payload))


def binary_entropy(p: float) -> float:
    """The binary entropy H(p) in bits."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    if p in (0.0, 1.0):
        return 0.0
    return -p * math.log2(p) - (1.0 - p) * math.log2(1.0 - p)


def entropy_bound_bytes(bloom: BloomFilter) -> int:
    """Information-theoretic floor for the filter's bit payload."""
    bits = bloom.num_bits * binary_entropy(bloom.fill_ratio())
    return math.ceil(bits / 8)


def transfer_cost_report(bloom: BloomFilter) -> TransferCost:
    """Measure the transfer saving for one replica."""
    raw = bloom.to_bytes()
    compressed = compress_filter(bloom)
    return TransferCost(
        raw_bytes=len(raw),
        compressed_bytes=len(compressed),
        fill_ratio=bloom.fill_ratio(),
        entropy_bound_bytes=entropy_bound_bytes(bloom),
    )
