"""Hash families for Bloom filters.

The paper assumes ``k`` independent hash functions per filter.  We derive them
with the classic Kirsch-Mitzenmacher *double hashing* construction,
``h_i(x) = h1(x) + i * h2(x) mod m``, which preserves the asymptotic
false-positive behaviour of truly independent hashes while needing only two
base digests.  The base digests come from ``hashlib.blake2b`` with distinct
keys, so two :class:`HashFamily` instances built with the same parameters
produce identical indices — a property the replica machinery relies on
(a Bloom filter replica must probe the same bits as the original).
"""

from __future__ import annotations

import hashlib
from typing import List, Tuple


def _digest64(data: bytes, salt: bytes) -> int:
    """Return a 64-bit digest of ``data`` salted with ``salt``."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8, key=salt).digest(), "big"
    )


class HashFamily:
    """``k`` index functions over ``[0, m)`` via double hashing.

    Parameters
    ----------
    num_hashes:
        Number of index functions (``k``).
    num_bits:
        Size of the target bit space (``m``).
    seed:
        Integer seed; families with equal ``(num_hashes, num_bits, seed)``
        are interchangeable.
    """

    __slots__ = ("_num_hashes", "_num_bits", "_seed", "_salt1", "_salt2")

    def __init__(self, num_hashes: int, num_bits: int, seed: int = 0) -> None:
        if num_hashes <= 0:
            raise ValueError(f"num_hashes must be positive, got {num_hashes}")
        if num_bits <= 0:
            raise ValueError(f"num_bits must be positive, got {num_bits}")
        self._num_hashes = num_hashes
        self._num_bits = num_bits
        self._seed = seed
        self._salt1 = seed.to_bytes(8, "big", signed=True) + b"\x01"
        self._salt2 = seed.to_bytes(8, "big", signed=True) + b"\x02"

    @property
    def num_hashes(self) -> int:
        return self._num_hashes

    @property
    def num_bits(self) -> int:
        return self._num_bits

    @property
    def seed(self) -> int:
        return self._seed

    def _encode(self, item: object) -> bytes:
        if isinstance(item, bytes):
            return item
        if isinstance(item, str):
            return item.encode("utf-8")
        if isinstance(item, int):
            return item.to_bytes(16, "big", signed=True)
        raise TypeError(
            f"items must be str, bytes or int, got {type(item).__name__}"
        )

    def indices(self, item: object) -> List[int]:
        """Return the ``k`` bit indices for ``item``."""
        data = self._encode(item)
        h1 = _digest64(data, self._salt1)
        h2 = _digest64(data, self._salt2)
        # An even h2 could cycle through a strict subset of positions when m
        # is even; forcing it odd keeps the probe sequence well distributed.
        h2 |= 1
        m = self._num_bits
        return [(h1 + i * h2) % m for i in range(self._num_hashes)]

    def parameters(self) -> Tuple[int, int, int]:
        """Return ``(num_hashes, num_bits, seed)``."""
        return (self._num_hashes, self._num_bits, self._seed)

    def is_compatible(self, other: "HashFamily") -> bool:
        """True if both families map items to identical index sequences."""
        return self.parameters() == other.parameters()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashFamily):
            return NotImplemented
        return self.parameters() == other.parameters()

    def __hash__(self) -> int:
        return hash(self.parameters())

    def __repr__(self) -> str:
        return (
            f"HashFamily(num_hashes={self._num_hashes}, "
            f"num_bits={self._num_bits}, seed={self._seed})"
        )
