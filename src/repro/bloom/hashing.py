"""Hash families for Bloom filters.

The paper assumes ``k`` independent hash functions per filter.  We derive them
with the classic Kirsch-Mitzenmacher *double hashing* construction,
``h_i(x) = h1(x) + i * h2(x) mod m``, which preserves the asymptotic
false-positive behaviour of truly independent hashes while needing only two
base digests.  The base digests come from ``hashlib.blake2b`` with distinct
keys, so two :class:`HashFamily` instances built with the same parameters
produce identical indices — a property the replica machinery relies on
(a Bloom filter replica must probe the same bits as the original).

Hot-path machinery (DESIGN.md §15)
----------------------------------
Hashing dominates probe cost once the bit tests themselves collapse to
int ops, so this module adds two layers on top of the construction:

* **Interning** — :func:`shared_family` returns one canonical
  :class:`HashFamily` per ``(num_hashes, num_bits, seed)``.  Every filter
  of the same geometry (all L1 LRU filters, all L2 segment replicas of a
  group, every server's global replica) shares one instance, and
  therefore one probe cache: a key hashed once while probing server 1's
  replica is free at servers 2..N.
* **Probe cache** — :meth:`HashFamily.probe` memoizes
  ``item -> (indices, mask)`` where ``mask`` is the OR of ``1 << index``.
  A membership test against a packed :class:`~repro.bloom.bitvector.BitVector`
  is then ``(bits & mask) == mask`` — no per-index loop at all.  The
  cache is bounded; on overflow the oldest half (dict insertion order)
  is dropped in one slice.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

#: Per-family bound on memoized probes.  Sized to hold the hot set of the
#: bench workloads (thousands of distinct paths) with slack; at ~200 bytes
#: per entry the worst case is a few MB per geometry.
PROBE_CACHE_CAPACITY = 1 << 16


def _digest64(data: bytes, salt: bytes) -> int:
    """Return a 64-bit digest of ``data`` salted with ``salt``."""
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8, key=salt).digest(), "big"
    )


class HashFamily:
    """``k`` index functions over ``[0, m)`` via double hashing.

    Parameters
    ----------
    num_hashes:
        Number of index functions (``k``).
    num_bits:
        Size of the target bit space (``m``).
    seed:
        Integer seed; families with equal ``(num_hashes, num_bits, seed)``
        are interchangeable.
    """

    __slots__ = (
        "_num_hashes",
        "_num_bits",
        "_seed",
        "_salt1",
        "_salt2",
        "_probe_cache",
    )

    def __init__(self, num_hashes: int, num_bits: int, seed: int = 0) -> None:
        if num_hashes <= 0:
            raise ValueError(f"num_hashes must be positive, got {num_hashes}")
        if num_bits <= 0:
            raise ValueError(f"num_bits must be positive, got {num_bits}")
        self._num_hashes = num_hashes
        self._num_bits = num_bits
        self._seed = seed
        self._salt1 = seed.to_bytes(8, "big", signed=True) + b"\x01"
        self._salt2 = seed.to_bytes(8, "big", signed=True) + b"\x02"
        self._probe_cache: Dict[object, Tuple[Tuple[int, ...], int]] = {}

    @property
    def num_hashes(self) -> int:
        return self._num_hashes

    @property
    def num_bits(self) -> int:
        return self._num_bits

    @property
    def seed(self) -> int:
        return self._seed

    def _encode(self, item: object) -> bytes:
        if isinstance(item, bytes):
            return item
        if isinstance(item, str):
            return item.encode("utf-8")
        if isinstance(item, int):
            return item.to_bytes(16, "big", signed=True)
        raise TypeError(
            f"items must be str, bytes or int, got {type(item).__name__}"
        )

    def _compute(self, item: object) -> Tuple[Tuple[int, ...], int]:
        data = self._encode(item)
        h1 = _digest64(data, self._salt1)
        h2 = _digest64(data, self._salt2)
        # An even h2 could cycle through a strict subset of positions when m
        # is even; forcing it odd keeps the probe sequence well distributed.
        h2 |= 1
        m = self._num_bits
        indices = tuple((h1 + i * h2) % m for i in range(self._num_hashes))
        mask = 0
        for index in indices:
            mask |= 1 << index
        return indices, mask

    def probe(self, item: object) -> Tuple[Tuple[int, ...], int]:
        """Return (and memoize) ``(indices, mask)`` for ``item``.

        ``mask`` is the OR of ``1 << i`` over the ``k`` indices — the
        single-int form consumed by
        :meth:`~repro.bloom.bitvector.BitVector.contains_mask`.
        """
        cache = self._probe_cache
        entry = cache.get(item)
        if entry is None:
            if len(cache) >= PROBE_CACHE_CAPACITY:
                # Drop the oldest (insertion-ordered) half in one pass.
                for key in list(cache)[: PROBE_CACHE_CAPACITY // 2]:
                    del cache[key]
            entry = self._compute(item)
            # bytes/str/int keys only (enforced by _encode), so the item
            # itself is a safe, hashable cache key.
            cache[item] = entry
        return entry

    def mask(self, item: object) -> int:
        """The packed probe mask of ``item`` (memoized)."""
        entry = self._probe_cache.get(item)
        if entry is None:
            entry = self.probe(item)
        return entry[1]

    def indices(self, item: object) -> List[int]:
        """Return the ``k`` bit indices for ``item``."""
        return list(self.probe(item)[0])

    def cache_info(self) -> Tuple[int, int]:
        """``(entries, capacity)`` of the probe cache (for introspection)."""
        return len(self._probe_cache), PROBE_CACHE_CAPACITY

    def parameters(self) -> Tuple[int, int, int]:
        """Return ``(num_hashes, num_bits, seed)``."""
        return (self._num_hashes, self._num_bits, self._seed)

    def is_compatible(self, other: "HashFamily") -> bool:
        """True if both families map items to identical index sequences."""
        return self.parameters() == other.parameters()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashFamily):
            return NotImplemented
        return self.parameters() == other.parameters()

    def __hash__(self) -> int:
        return hash(self.parameters())

    def __repr__(self) -> str:
        return (
            f"HashFamily(num_hashes={self._num_hashes}, "
            f"num_bits={self._num_bits}, seed={self._seed})"
        )


# ----------------------------------------------------------------------
# Interning — one family (and one probe cache) per geometry
# ----------------------------------------------------------------------
_SHARED_FAMILIES: Dict[Tuple[int, int, int], HashFamily] = {}


def shared_family(num_hashes: int, num_bits: int, seed: int = 0) -> HashFamily:
    """Return the canonical :class:`HashFamily` for this geometry.

    Filters share hash state purely by value (`parameters()`), so handing
    every same-geometry filter the same instance is semantically
    invisible — it only fuses their probe caches, which is exactly what
    the replica fan-out wants: the L3 multicast probes ~N replicas of
    identical geometry with the same key.
    """
    key = (num_hashes, num_bits, seed)
    family = _SHARED_FAMILIES.get(key)
    if family is None:
        family = HashFamily(num_hashes, num_bits, seed)
        _SHARED_FAMILIES[key] = family
    return family
