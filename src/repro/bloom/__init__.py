"""Bloom filter substrate for the G-HBA reproduction.

This package implements, from scratch, every probabilistic data structure the
paper relies on:

- :class:`~repro.bloom.bitvector.BitVector` — a compact bit array.
- :class:`~repro.bloom.hashing.HashFamily` — ``k`` index functions derived by
  double hashing, the standard construction for Bloom filters.
- :class:`~repro.bloom.bloom_filter.BloomFilter` — the standard filter
  (Bloom, 1970).
- :class:`~repro.bloom.counting.CountingBloomFilter` — counting variant
  supporting deletion (Fan et al., Summary Cache), used by the IDBFA.
- :mod:`~repro.bloom.algebra` — union / intersection / XOR of filters
  (paper Section 3.4, Properties 1-3) plus bit-difference used by the
  XOR-threshold replica update rule.
- :mod:`~repro.bloom.analysis` — false-positive mathematics: the optimal
  false rate ``f0 = 0.6185^(m/n)`` and the segment-array false-positive
  probability of the paper's Equation 1.
- :mod:`~repro.bloom.arrays` — the Bloom filter *arrays* that form G-HBA's
  query levels: the plain :class:`BloomFilterArray`, the
  :class:`LRUBloomFilterArray` (L1) and the identification array
  :class:`IDBloomFilterArray` used for replica localization.
"""

from repro.bloom.bitvector import BitVector
from repro.bloom.hashing import HashFamily
from repro.bloom.bloom_filter import BloomFilter
from repro.bloom.counting import CountingBloomFilter
from repro.bloom.algebra import (
    bloom_union,
    bloom_intersection,
    bloom_xor,
    bit_difference,
)
from repro.bloom.analysis import (
    optimal_num_hashes,
    false_positive_rate,
    optimal_false_positive_rate,
    segment_array_false_positive_rate,
)
from repro.bloom.arrays import (
    ArrayLookup,
    BloomFilterArray,
    LRUBloomFilterArray,
    IDBloomFilterArray,
    REPLACEMENT_POLICIES,
)
from repro.bloom.compressed import (
    TransferCost,
    compress_filter,
    decompress_filter,
    transfer_cost_report,
)

__all__ = [
    "BitVector",
    "HashFamily",
    "BloomFilter",
    "CountingBloomFilter",
    "bloom_union",
    "bloom_intersection",
    "bloom_xor",
    "bit_difference",
    "optimal_num_hashes",
    "false_positive_rate",
    "optimal_false_positive_rate",
    "segment_array_false_positive_rate",
    "ArrayLookup",
    "BloomFilterArray",
    "LRUBloomFilterArray",
    "IDBloomFilterArray",
    "REPLACEMENT_POLICIES",
    "TransferCost",
    "compress_filter",
    "decompress_filter",
    "transfer_cost_report",
]
