"""A compact, fixed-size bit vector backed by a ``bytearray``.

The Bloom filters in this package store their state in a :class:`BitVector`.
The class intentionally exposes only the operations Bloom filters need:
single-bit get/set/clear, population count, and the bitwise algebra
(OR / AND / XOR) that underpins the filter algebra of paper Section 3.4.
"""

from __future__ import annotations

from typing import Iterator


class BitVector:
    """A fixed-length sequence of bits.

    Parameters
    ----------
    num_bits:
        Length of the vector.  Must be positive.
    """

    __slots__ = ("_num_bits", "_bytes")

    def __init__(self, num_bits: int) -> None:
        if num_bits <= 0:
            raise ValueError(f"num_bits must be positive, got {num_bits}")
        self._num_bits = num_bits
        self._bytes = bytearray((num_bits + 7) // 8)

    # ------------------------------------------------------------------
    # Basic bit access
    # ------------------------------------------------------------------
    @property
    def num_bits(self) -> int:
        """Length of the vector in bits."""
        return self._num_bits

    def _check_index(self, index: int) -> int:
        if index < 0:
            index += self._num_bits
        if not 0 <= index < self._num_bits:
            raise IndexError(
                f"bit index {index} out of range for vector of {self._num_bits} bits"
            )
        return index

    def get(self, index: int) -> bool:
        """Return the bit at ``index``."""
        index = self._check_index(index)
        return bool(self._bytes[index >> 3] & (1 << (index & 7)))

    def set(self, index: int) -> None:
        """Set the bit at ``index`` to 1."""
        index = self._check_index(index)
        self._bytes[index >> 3] |= 1 << (index & 7)

    def clear(self, index: int) -> None:
        """Set the bit at ``index`` to 0."""
        index = self._check_index(index)
        self._bytes[index >> 3] &= ~(1 << (index & 7)) & 0xFF

    def __getitem__(self, index: int) -> bool:
        return self.get(index)

    def __setitem__(self, index: int, value: bool) -> None:
        if value:
            self.set(index)
        else:
            self.clear(index)

    def __len__(self) -> int:
        return self._num_bits

    def __iter__(self) -> Iterator[bool]:
        for i in range(self._num_bits):
            yield self.get(i)

    # ------------------------------------------------------------------
    # Whole-vector operations
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear every bit."""
        for i in range(len(self._bytes)):
            self._bytes[i] = 0

    def popcount(self) -> int:
        """Return the number of set bits."""
        return sum(bin(byte).count("1") for byte in self._bytes)

    def fill_ratio(self) -> float:
        """Return the fraction of bits that are set."""
        return self.popcount() / self._num_bits

    def copy(self) -> "BitVector":
        """Return a deep copy of this vector."""
        clone = BitVector(self._num_bits)
        clone._bytes[:] = self._bytes
        return clone

    def _check_compatible(self, other: "BitVector") -> None:
        if not isinstance(other, BitVector):
            raise TypeError(f"expected BitVector, got {type(other).__name__}")
        if other._num_bits != self._num_bits:
            raise ValueError(
                "bit vectors have different lengths: "
                f"{self._num_bits} vs {other._num_bits}"
            )

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        result = BitVector(self._num_bits)
        result._bytes[:] = bytes(a | b for a, b in zip(self._bytes, other._bytes))
        return result

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        result = BitVector(self._num_bits)
        result._bytes[:] = bytes(a & b for a, b in zip(self._bytes, other._bytes))
        return result

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        result = BitVector(self._num_bits)
        result._bytes[:] = bytes(a ^ b for a, b in zip(self._bytes, other._bytes))
        return result

    def __ior__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        for i, byte in enumerate(other._bytes):
            self._bytes[i] |= byte
        return self

    def __iand__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        for i, byte in enumerate(other._bytes):
            self._bytes[i] &= byte
        return self

    def __ixor__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        for i, byte in enumerate(other._bytes):
            self._bytes[i] ^= byte
        return self

    def hamming_distance(self, other: "BitVector") -> int:
        """Return the number of bit positions where the vectors differ."""
        self._check_compatible(other)
        return sum(
            bin(a ^ b).count("1") for a, b in zip(self._bytes, other._bytes)
        )

    def is_subset_of(self, other: "BitVector") -> bool:
        """Return True if every set bit of this vector is also set in ``other``."""
        self._check_compatible(other)
        return all((a & ~b) == 0 for a, b in zip(self._bytes, other._bytes))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._num_bits == other._num_bits and self._bytes == other._bytes

    def __hash__(self) -> int:
        return hash((self._num_bits, bytes(self._bytes)))

    def __repr__(self) -> str:
        return f"BitVector(num_bits={self._num_bits}, set={self.popcount()})"

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize the vector payload (without the length)."""
        return bytes(self._bytes)

    @classmethod
    def from_bytes(cls, num_bits: int, payload: bytes) -> "BitVector":
        """Reconstruct a vector of ``num_bits`` bits from ``payload``."""
        expected = (num_bits + 7) // 8
        if len(payload) != expected:
            raise ValueError(
                f"payload has {len(payload)} bytes, expected {expected} "
                f"for {num_bits} bits"
            )
        vector = cls(num_bits)
        vector._bytes[:] = payload
        return vector
