"""A compact, fixed-size bit vector backed by a packed Python big-int.

The Bloom filters in this package store their state in a :class:`BitVector`.
The class intentionally exposes only the operations Bloom filters need:
single-bit get/set/clear, population count, and the bitwise algebra
(OR / AND / XOR) that underpins the filter algebra of paper Section 3.4.

Representation
--------------
All bits live in one arbitrary-precision integer ``_value``: bit ``i`` of
the vector is bit ``i`` of the int.  That makes every whole-vector
operation — union, intersection, XOR, popcount, equality, subset — a
*single* C-level big-int operation instead of a Python-level loop over
bytes, which is what moves the L1/L2 probe walk from a tree of method
calls to a handful of integer ops (DESIGN.md §15).

The layout is serialization-compatible with the original ``bytearray``
implementation: ``_value.to_bytes(n, "little")`` places bit ``i`` at
``byte[i >> 3] & (1 << (i & 7))``, exactly the old wire form, so
:meth:`to_bytes` / :meth:`from_bytes` stay byte-identical.

Mask-based access
-----------------
Hot paths never call :meth:`get` per index.  They precompute an int mask
(OR of ``1 << index`` over the k hash indices, cached per key by
:class:`~repro.bloom.hashing.HashFamily`) and ask
:meth:`contains_mask` — one AND plus one compare for a whole k-probe
membership test.
"""

from __future__ import annotations

from typing import Iterator

# ``int.bit_count`` is 3.10+; CI also runs 3.9.  ``bin(x).count("1")`` is
# the portable fallback and still operates on the whole word at once.
if hasattr(int, "bit_count"):  # pragma: no branch
    def _popcount(value: int) -> int:
        return value.bit_count()
else:  # pragma: no cover - exercised only on Python < 3.10
    def _popcount(value: int) -> int:
        return bin(value).count("1")


class BitVector:
    """A fixed-length sequence of bits packed into one big integer.

    Parameters
    ----------
    num_bits:
        Length of the vector.  Must be positive.
    """

    __slots__ = ("_num_bits", "_value")

    def __init__(self, num_bits: int) -> None:
        if num_bits <= 0:
            raise ValueError(f"num_bits must be positive, got {num_bits}")
        self._num_bits = num_bits
        self._value = 0

    # ------------------------------------------------------------------
    # Basic bit access
    # ------------------------------------------------------------------
    @property
    def num_bits(self) -> int:
        """Length of the vector in bits."""
        return self._num_bits

    @property
    def value(self) -> int:
        """The packed integer (bit ``i`` of the vector = bit ``i`` here)."""
        return self._value

    def _check_index(self, index: int) -> int:
        if -self._num_bits <= index < 0:
            return index + self._num_bits
        if 0 <= index < self._num_bits:
            return index
        raise IndexError(
            f"bit index {index} out of range for vector of {self._num_bits} bits"
        )

    def get(self, index: int) -> bool:
        """Return the bit at ``index``."""
        return bool((self._value >> self._check_index(index)) & 1)

    def set(self, index: int) -> None:
        """Set the bit at ``index`` to 1."""
        self._value |= 1 << self._check_index(index)

    def clear(self, index: int) -> None:
        """Set the bit at ``index`` to 0."""
        self._value &= ~(1 << self._check_index(index))

    def __getitem__(self, index: int) -> bool:
        return self.get(index)

    def __setitem__(self, index: int, value: bool) -> None:
        if value:
            self.set(index)
        else:
            self.clear(index)

    def __len__(self) -> int:
        return self._num_bits

    def __iter__(self) -> Iterator[bool]:
        value = self._value
        for _ in range(self._num_bits):
            yield bool(value & 1)
            value >>= 1

    # ------------------------------------------------------------------
    # Mask operations — the hot-path membership primitives
    # ------------------------------------------------------------------
    def contains_mask(self, mask: int) -> bool:
        """True if every bit of ``mask`` is set (one AND + one compare)."""
        return (self._value & mask) == mask

    def set_mask(self, mask: int) -> None:
        """Set every bit of ``mask`` (one OR)."""
        self._value |= mask

    # ------------------------------------------------------------------
    # Whole-vector operations
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Clear every bit."""
        self._value = 0

    def popcount(self) -> int:
        """Return the number of set bits."""
        return _popcount(self._value)

    def fill_ratio(self) -> float:
        """Return the fraction of bits that are set."""
        return _popcount(self._value) / self._num_bits

    def copy(self) -> "BitVector":
        """Return a deep copy of this vector."""
        clone = BitVector(self._num_bits)
        clone._value = self._value
        return clone

    def _check_compatible(self, other: "BitVector") -> None:
        if not isinstance(other, BitVector):
            raise TypeError(f"expected BitVector, got {type(other).__name__}")
        if other._num_bits != self._num_bits:
            raise ValueError(
                "bit vectors have different lengths: "
                f"{self._num_bits} vs {other._num_bits}"
            )

    def __or__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        result = BitVector(self._num_bits)
        result._value = self._value | other._value
        return result

    def __and__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        result = BitVector(self._num_bits)
        result._value = self._value & other._value
        return result

    def __xor__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        result = BitVector(self._num_bits)
        result._value = self._value ^ other._value
        return result

    def __ior__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        self._value |= other._value
        return self

    def __iand__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        self._value &= other._value
        return self

    def __ixor__(self, other: "BitVector") -> "BitVector":
        self._check_compatible(other)
        self._value ^= other._value
        return self

    def hamming_distance(self, other: "BitVector") -> int:
        """Return the number of bit positions where the vectors differ."""
        self._check_compatible(other)
        return _popcount(self._value ^ other._value)

    def is_subset_of(self, other: "BitVector") -> bool:
        """Return True if every set bit of this vector is also set in ``other``."""
        self._check_compatible(other)
        return (self._value & ~other._value) == 0

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self._num_bits == other._num_bits and self._value == other._value

    def __hash__(self) -> int:
        return hash((self._num_bits, self._value))

    def __repr__(self) -> str:
        return f"BitVector(num_bits={self._num_bits}, set={self.popcount()})"

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize the vector payload (without the length).

        Little-endian packing reproduces the historical layout exactly:
        bit ``i`` lands at ``byte[i >> 3]``, position ``i & 7``.
        """
        return self._value.to_bytes((self._num_bits + 7) // 8, "little")

    @classmethod
    def from_bytes(cls, num_bits: int, payload: bytes) -> "BitVector":
        """Reconstruct a vector of ``num_bits`` bits from ``payload``."""
        expected = (num_bits + 7) // 8
        if len(payload) != expected:
            raise ValueError(
                f"payload has {len(payload)} bytes, expected {expected} "
                f"for {num_bits} bits"
            )
        vector = cls(num_bits)
        vector._value = int.from_bytes(payload, "little")
        return vector
