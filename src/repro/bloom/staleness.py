"""False-rate analysis of stale Bloom filter replicas (Zhu & Jiang, ICPP'06).

The paper's reliability argument rests on its companion analysis [33] of
what happens when replicas lag the authoritative filter:

- **False negatives** — items *added* at the home MDS after the snapshot
  are entirely absent from the replica: the replica misses them with
  probability ``1 - fpr`` (it can still fire by coincidence).
- **False positives** — items *deleted* after the snapshot leave their
  bits set in the replica forever (plain filters cannot clear bits), so
  the replica keeps claiming them with probability ~1, on top of the
  hash-collision false positives every filter has.

These rates drive Figure 13's observation that L4 traffic grows with N:
more servers under a fixed update budget means more accumulated staleness.

The functions here give the analytic rates; the test suite checks them
against live filters empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bloom.analysis import false_positive_rate
from repro.bloom.bloom_filter import BloomFilter


@dataclass(frozen=True)
class StalenessRates:
    """Analytic false rates of one stale replica.

    Attributes
    ----------
    false_negative_rate:
        Probability a query for a post-snapshot *addition* misses.
    false_positive_deleted:
        Probability a query for a post-snapshot *deletion* still hits.
    base_false_positive_rate:
        The ordinary hash-collision rate for never-inserted items.
    """

    false_negative_rate: float
    false_positive_deleted: float
    base_false_positive_rate: float


def stale_replica_rates(
    num_bits: int,
    num_hashes: int,
    items_at_snapshot: int,
    added_since: int,
    deleted_since: int,
) -> StalenessRates:
    """Analytic false rates for a replica lagging by the given churn.

    Parameters
    ----------
    num_bits / num_hashes:
        Filter geometry (m, k).
    items_at_snapshot:
        Items the replica represents (n at publication time).
    added_since:
        Items inserted at the home MDS after publication (cause false
        negatives at the replica).
    deleted_since:
        Items removed after publication (cause false positives — their
        bits persist both in the replica *and* in the home's live filter
        until a rebuild).
    """
    if added_since < 0 or deleted_since < 0:
        raise ValueError("churn counts must be non-negative")
    if deleted_since > items_at_snapshot:
        raise ValueError(
            "cannot delete more items than the snapshot contained"
        )
    base_fpr = false_positive_rate(num_bits, items_at_snapshot, num_hashes)
    # An added item hits the stale replica only by collision.
    false_negative = 1.0 - base_fpr
    # A deleted item's own bits are all still set: certain hit.
    return StalenessRates(
        false_negative_rate=false_negative,
        false_positive_deleted=1.0,
        base_false_positive_rate=base_fpr,
    )


def expected_l4_escape_rate(
    fraction_queries_to_fresh_items: float,
    group_coverage: float,
) -> float:
    """Probability a query escapes to L4 because of replica staleness.

    A query for a fresh (not-yet-replicated) item resolves within the
    group only if the origin's group contains the item's home MDS — whose
    *local* filter is always current — which happens with probability
    ``group_coverage`` (≈ M/N).  Everything else falls through to L4.

    This is the analytic form of the Figure 13 staleness effect.
    """
    if not 0.0 <= fraction_queries_to_fresh_items <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    if not 0.0 <= group_coverage <= 1.0:
        raise ValueError("group_coverage must be in [0, 1]")
    return fraction_queries_to_fresh_items * (1.0 - group_coverage)


def measure_staleness(
    live: BloomFilter, replica: BloomFilter, probes: int = 1_000
) -> float:
    """Empirical drift: fraction of random probes the two filters disagree on.

    A cheap Monte-Carlo alternative to the XOR bit-difference for deciding
    whether a replica needs refreshing; used in tests to cross-validate the
    analytic rates.
    """
    if not live.is_compatible(replica):
        raise ValueError("filters are incompatible")
    if probes <= 0:
        raise ValueError(f"probes must be positive, got {probes}")
    disagreements = 0
    for index in range(probes):
        probe = f"__staleness_probe_{index}"
        if live.query(probe) != replica.query(probe):
            disagreements += 1
    return disagreements / probes
