"""False-positive mathematics for Bloom filters and segment arrays.

The paper's analysis (Sections 2.3 and 3.4) rests on two results:

1.  The classic false-positive probability of a Bloom filter with ``m`` bits,
    ``n`` items and ``k`` hash functions,

        f0 = (1 - e^(-k n / m))^k,

    minimized at ``k = (m / n) ln 2``, where it equals
    ``(1/2)^k = 0.6185^(m/n)``.

2.  Equation 1 — the probability that the *segment Bloom filter array* of one
    MDS (holding ``theta`` replicas) produces a false unique hit:

        f_g+ = theta * f0 * (1 - f0)^(theta - 1).

    This is the probability that exactly one of ``theta`` non-owning filters
    fires falsely.

All functions here are pure and deterministic; the simulator and the optimal
group-size model consume them directly.
"""

from __future__ import annotations

import math

#: Base of the optimal false-positive rate: (1/2)^(ln 2) ~= 0.6185.
OPTIMAL_BASE = 0.5 ** math.log(2)


def optimal_num_hashes(bits_per_item: float) -> int:
    """Return the integer ``k`` minimizing the false-positive rate.

    The continuous optimum is ``k = (m/n) ln 2``; we round to the nearest
    integer and never go below 1.
    """
    if bits_per_item <= 0:
        raise ValueError(f"bits_per_item must be positive, got {bits_per_item}")
    return max(1, round(bits_per_item * math.log(2)))


def false_positive_rate(num_bits: int, num_items: int, num_hashes: int) -> float:
    """Return ``(1 - e^(-k n / m))^k`` for the given parameters.

    An empty filter (``num_items == 0``) never reports a false positive.
    """
    if num_bits <= 0:
        raise ValueError(f"num_bits must be positive, got {num_bits}")
    if num_items < 0:
        raise ValueError(f"num_items must be non-negative, got {num_items}")
    if num_hashes <= 0:
        raise ValueError(f"num_hashes must be positive, got {num_hashes}")
    if num_items == 0:
        return 0.0
    return (1.0 - math.exp(-num_hashes * num_items / num_bits)) ** num_hashes


def optimal_false_positive_rate(bits_per_item: float) -> float:
    """Return ``0.6185^(m/n)``, the false rate at the optimal ``k``."""
    if bits_per_item <= 0:
        raise ValueError(f"bits_per_item must be positive, got {bits_per_item}")
    return OPTIMAL_BASE ** bits_per_item


def segment_array_false_positive_rate(theta: int, bits_per_item: float) -> float:
    """Paper Equation 1: false unique-hit rate of one MDS's segment array.

    Parameters
    ----------
    theta:
        Number of Bloom filter replicas stored locally on the MDS.
    bits_per_item:
        The filter bit ratio ``m/n`` (bits per file).

    Returns
    -------
    float
        ``theta * f0 * (1 - f0)^(theta - 1)`` with
        ``f0 = 0.6185^(m/n)``.
    """
    if theta < 0:
        raise ValueError(f"theta must be non-negative, got {theta}")
    if theta == 0:
        return 0.0
    f0 = optimal_false_positive_rate(bits_per_item)
    return theta * f0 * (1.0 - f0) ** (theta - 1)


def expected_fill_ratio(num_bits: int, num_items: int, num_hashes: int) -> float:
    """Return the expected fraction of set bits, ``1 - e^(-k n / m)``."""
    if num_bits <= 0:
        raise ValueError(f"num_bits must be positive, got {num_bits}")
    if num_items < 0:
        raise ValueError(f"num_items must be non-negative, got {num_items}")
    if num_hashes <= 0:
        raise ValueError(f"num_hashes must be positive, got {num_hashes}")
    return 1.0 - math.exp(-num_hashes * num_items / num_bits)


def required_bits(num_items: int, target_fpr: float) -> int:
    """Return the number of bits needed to hold ``num_items`` at ``target_fpr``.

    Uses the standard sizing formula ``m = -n ln(p) / (ln 2)^2`` assuming the
    optimal ``k`` is used.
    """
    if num_items <= 0:
        raise ValueError(f"num_items must be positive, got {num_items}")
    if not 0.0 < target_fpr < 1.0:
        raise ValueError(f"target_fpr must be in (0, 1), got {target_fpr}")
    return max(1, math.ceil(-num_items * math.log(target_fpr) / (math.log(2) ** 2)))


def unique_hit_probability(
    num_filters: int,
    owner_present: bool,
    fpr: float,
) -> float:
    """Probability that an array of filters returns exactly one hit.

    Models an array of ``num_filters`` filters where at most one (the owner's)
    genuinely contains the item and each non-owner fires falsely with
    probability ``fpr``, independently.

    If the owner's filter is present the unique hit requires every non-owner
    to stay silent; otherwise exactly one non-owner must fire falsely.
    """
    if num_filters < 0:
        raise ValueError(f"num_filters must be non-negative, got {num_filters}")
    if not 0.0 <= fpr <= 1.0:
        raise ValueError(f"fpr must be in [0, 1], got {fpr}")
    if owner_present:
        others = num_filters - 1
        if others < 0:
            raise ValueError("owner_present requires at least one filter")
        return (1.0 - fpr) ** others
    if num_filters == 0:
        return 0.0
    return num_filters * fpr * (1.0 - fpr) ** (num_filters - 1)
