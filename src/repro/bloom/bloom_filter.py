"""The standard Bloom filter (Bloom, 1970).

Each metadata server in G-HBA summarizes the set of files whose metadata it
stores locally in one :class:`BloomFilter`, then replicates the filter to
other servers.  The filter therefore needs to be cheaply copyable,
serializable, and comparable bit-by-bit (for the XOR-threshold update rule of
paper Section 3.4).

Hot path: membership tests go through the packed-mask primitives — the
shared :class:`~repro.bloom.hashing.HashFamily` memoizes each key's probe
mask, and :meth:`query` is then one big-int AND plus a compare against
the packed :class:`~repro.bloom.bitvector.BitVector`.  The batched
:meth:`contains_many` amortizes attribute lookups across a whole
``VERIFY_BATCH`` (DESIGN.md §15).
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.bloom.bitvector import BitVector
from repro.bloom.hashing import HashFamily, shared_family
from repro.bloom.analysis import false_positive_rate, optimal_num_hashes


class BloomFilter:
    """A standard Bloom filter over string / bytes / int items.

    Parameters
    ----------
    num_bits:
        Size of the bit vector (``m``).
    num_hashes:
        Number of hash functions (``k``).
    seed:
        Seed for the hash family.  Filters that must be unioned, intersected
        or compared (originals and their replicas) must share ``num_bits``,
        ``num_hashes`` and ``seed``.
    """

    __slots__ = ("_bits", "_hashes", "_num_items")

    def __init__(self, num_bits: int, num_hashes: int, seed: int = 0) -> None:
        self._bits = BitVector(num_bits)
        # Same-geometry filters share one family — and one probe cache —
        # so a key hashed at one replica is free at every other.
        self._hashes = shared_family(num_hashes, num_bits, seed)
        self._num_items = 0

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def with_capacity(
        cls,
        expected_items: int,
        bits_per_item: float = 8.0,
        seed: int = 0,
    ) -> "BloomFilter":
        """Build a filter sized for ``expected_items`` at ``bits_per_item``.

        The paper evaluates bit/file ratios of 8 and 16 (Table 5); the number
        of hash functions is the optimal ``k = (m/n) ln 2`` rounded.
        """
        if expected_items <= 0:
            raise ValueError(
                f"expected_items must be positive, got {expected_items}"
            )
        if bits_per_item <= 0:
            raise ValueError(
                f"bits_per_item must be positive, got {bits_per_item}"
            )
        num_bits = max(8, int(expected_items * bits_per_item))
        return cls(num_bits, optimal_num_hashes(bits_per_item), seed)

    @classmethod
    def from_items(
        cls,
        items: Iterable[object],
        num_bits: int,
        num_hashes: int,
        seed: int = 0,
    ) -> "BloomFilter":
        """Build a filter containing ``items``."""
        bloom = cls(num_bits, num_hashes, seed)
        for item in items:
            bloom.add(item)
        return bloom

    # ------------------------------------------------------------------
    # Properties
    # ------------------------------------------------------------------
    @property
    def num_bits(self) -> int:
        return self._bits.num_bits

    @property
    def num_hashes(self) -> int:
        return self._hashes.num_hashes

    @property
    def seed(self) -> int:
        return self._hashes.seed

    @property
    def num_items(self) -> int:
        """Number of ``add`` calls recorded (re-adding counts again)."""
        return self._num_items

    @property
    def bits(self) -> BitVector:
        """The underlying bit vector (shared, not a copy)."""
        return self._bits

    @property
    def hash_family(self) -> HashFamily:
        return self._hashes

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def add(self, item: object) -> None:
        """Insert ``item`` into the filter."""
        self._bits.set_mask(self._hashes.mask(item))
        self._num_items += 1

    def update(self, items: Iterable[object]) -> None:
        """Insert every item of ``items``."""
        for item in items:
            self.add(item)

    def __contains__(self, item: object) -> bool:
        return self.query(item)

    def query(self, item: object) -> bool:
        """Return True if ``item`` *may* be in the set (no false negatives)."""
        mask = self._hashes.mask(item)
        return (self._bits.value & mask) == mask

    def query_mask(self, mask: int) -> bool:
        """Membership test for a precomputed probe mask (the batch path)."""
        return (self._bits.value & mask) == mask

    def contains_many(self, items: Sequence[object]) -> List[bool]:
        """Batched membership: one pass, one answer per item.

        Equivalent to ``[item in self for item in items]`` but hoists the
        bit-vector and hash-family lookups out of the loop, so a whole
        ``VERIFY_BATCH`` costs k hashes (amortized zero once cached) plus
        one AND/compare per item.
        """
        value = self._bits.value
        mask_of = self._hashes.mask
        return [(value & (m := mask_of(item))) == m for item in items]

    def clear(self) -> None:
        """Remove all items (reset every bit)."""
        self._bits.reset()
        self._num_items = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def fill_ratio(self) -> float:
        """Fraction of set bits."""
        return self._bits.fill_ratio()

    def estimated_fpr(self) -> float:
        """Estimated false-positive rate from the analytic formula."""
        return false_positive_rate(self.num_bits, self._num_items, self.num_hashes)

    def is_compatible(self, other: "BloomFilter") -> bool:
        """True if ``other`` uses the same geometry and hash family."""
        return self._hashes.is_compatible(other._hashes)

    def copy(self) -> "BloomFilter":
        """Return an independent deep copy (a *replica* of this filter)."""
        clone = BloomFilter(self.num_bits, self.num_hashes, self.seed)
        clone._bits = self._bits.copy()
        clone._num_items = self._num_items
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BloomFilter):
            return NotImplemented
        return self.is_compatible(other) and self._bits == other._bits

    def __hash__(self) -> int:  # pragma: no cover - filters are mutable
        raise TypeError("BloomFilter is mutable and unhashable")

    def __repr__(self) -> str:
        return (
            f"BloomFilter(num_bits={self.num_bits}, num_hashes={self.num_hashes}, "
            f"num_items={self._num_items}, fill={self.fill_ratio():.3f})"
        )

    # ------------------------------------------------------------------
    # Serialization — used by the prototype's wire messages
    # ------------------------------------------------------------------
    def to_bytes(self) -> bytes:
        """Serialize geometry + payload into a self-describing byte string."""
        header = (
            self.num_bits.to_bytes(8, "big")
            + self.num_hashes.to_bytes(4, "big")
            + self.seed.to_bytes(8, "big", signed=True)
            + self._num_items.to_bytes(8, "big")
        )
        return header + self._bits.to_bytes()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "BloomFilter":
        """Reconstruct a filter serialized with :meth:`to_bytes`."""
        if len(payload) < 28:
            raise ValueError("payload too short for a BloomFilter header")
        num_bits = int.from_bytes(payload[0:8], "big")
        num_hashes = int.from_bytes(payload[8:12], "big")
        seed = int.from_bytes(payload[12:20], "big", signed=True)
        num_items = int.from_bytes(payload[20:28], "big")
        bloom = cls(num_bits, num_hashes, seed)
        bloom._bits = BitVector.from_bytes(num_bits, payload[28:])
        bloom._num_items = num_items
        return bloom

    # ------------------------------------------------------------------
    # Internal helper used by the algebra module
    # ------------------------------------------------------------------
    def _with_bits(self, bits: BitVector, num_items: int) -> "BloomFilter":
        result = BloomFilter(self.num_bits, self.num_hashes, self.seed)
        result._bits = bits
        result._num_items = num_items
        return result

    def size_bytes(self) -> int:
        """Approximate in-memory size of the filter payload in bytes."""
        return (self.num_bits + 7) // 8
