"""Multi-process wall-clock bench over the TCP transport.

``python -m repro.gateway bench --transport tcp`` lands here: the driver
reserves a port map, launches one ``repro.net serve`` MDS process per
server, populates the namespace over the real wire, then spawns one
gateway *worker process* per gateway.  Each worker hammers the fleet
with batched lookups (VERIFY_BATCH) and write-back style mutation
flushes (MUTATE_BATCH, per-origin versions + cumulative acks — the PR 5
at-most-once protocol), timing every RPC on the real clock.

Correctness gate: every mutation a worker saw *acknowledged* must be
visible in the fleet's final state.  Paths are partitioned across
workers (``crc32(path) % gateways``) so each path has exactly one
writer and the expected final state is computable per worker; the
driver re-reads every partitioned path at the end and counts
mismatches as lost acknowledged mutations — the bench exits nonzero on
any loss, mirroring the in-process write-back bench's acknowledgement
oracle.

Everything here is wall-clock and real-serialization: the numbers in
``BENCH_tcp.json`` are what the prototype costs as a *network* system,
not under the virtual clock.
"""

from __future__ import annotations

import json
import time
import zlib
from typing import Dict, List, Optional

from repro.core.config import GHBAConfig
from repro.metadata.attributes import FileMetadata
from repro.net.supervisor import ProcessSupervisor, config_from_dict
from repro.net.tcp import PortMap, TcpTransport
from repro.prototype.messages import Message, MessageKind

#: Sender id the bench driver uses on the wire (clients are negative).
DRIVER_SENDER = -100
#: Mutation origin the driver's populate phase claims; worker origins are
#: their gateway ids, so this must stay clear of them.
DRIVER_ORIGIN = 1000


def bench_paths(files: int) -> List[str]:
    return [f"/bench/d{index // 64:03d}/f{index:06d}" for index in range(files)]


def home_of(path: str, servers: int) -> int:
    """Cross-process deterministic placement (built-in hash is salted)."""
    return zlib.crc32(path.encode("utf-8")) % servers


def owner_of(path: str, gateways: int) -> int:
    # Salted differently from home_of so ownership does not correlate
    # with placement (every worker talks to every server).
    return zlib.crc32(b"owner:" + path.encode("utf-8")) % gateways


def _record_for(path: str, index: int) -> FileMetadata:
    return FileMetadata(path=path, inode=index + 1, size=index % 4096)


def _percentiles(samples_ms: List[float]) -> Dict[str, float]:
    if not samples_ms:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    ordered = sorted(samples_ms)

    def pick(p: float) -> float:
        index = min(len(ordered) - 1, int(p * len(ordered)))
        return round(ordered[index], 3)

    return {
        "p50": pick(0.50),
        "p95": pick(0.95),
        "p99": pick(0.99),
        "max": round(ordered[-1], 3),
    }


# ----------------------------------------------------------------------
# Gateway worker (runs in its own OS process)
# ----------------------------------------------------------------------
def run_gateway_worker(args) -> Dict[str, object]:
    """One gateway's share of the bench; returns its JSON report."""
    import random

    portmap = PortMap.from_json(open(args.portmap_file).read())
    config_from_dict(json.loads(open(args.config_file).read()))  # validate
    transport = TcpTransport(
        portmap,
        default_timeout_s=args.timeout_s,
        connect_attempts=5,
        connect_backoff_s=0.05,
    )
    rng = random.Random(args.seed * 1009 + args.gateway_id)
    paths = bench_paths(args.files)
    path_index = {path: index for index, path in enumerate(paths)}
    owned = [
        path
        for path in paths
        if owner_of(path, args.gateways) == args.gateway_id
    ]
    exists: Dict[str, bool] = {path: True for path in owned}
    version = 0
    acked = 0
    latencies_ms: List[float] = []
    lookups = mutations = mutation_rpcs = lookup_rpcs = 0

    def timed_request(dest: int, message: Message) -> Message:
        start = time.monotonic()
        reply = transport.request(dest, message)
        latencies_ms.append((time.monotonic() - start) * 1000.0)
        return reply

    try:
        for _ in range(args.ops):
            if rng.random() < args.lookup_frac or not owned:
                batch = rng.sample(paths, min(8, len(paths)))
                by_home: Dict[int, List[str]] = {}
                for path in batch:
                    by_home.setdefault(
                        home_of(path, args.servers), []
                    ).append(path)
                for home, home_paths in sorted(by_home.items()):
                    reply = timed_request(
                        home,
                        Message(
                            kind=MessageKind.VERIFY_BATCH,
                            sender=-(args.gateway_id + 1),
                            payload={"paths": home_paths},
                        ),
                    )
                    lookup_rpcs += 1
                    lookups += len(reply.payload["found"])
            else:
                batch = rng.sample(owned, min(4, len(owned)))
                by_home: Dict[int, List[dict]] = {}
                for path in batch:
                    version += 1
                    if exists[path]:
                        mutation = {
                            "version": version,
                            "op": "delete",
                            "path": path,
                            "record": None,
                        }
                    else:
                        mutation = {
                            "version": version,
                            "op": "create",
                            "path": path,
                            "record": _record_for(path, path_index[path]),
                        }
                    by_home.setdefault(
                        home_of(path, args.servers), []
                    ).append(mutation)
                for home, muts in sorted(by_home.items()):
                    reply = timed_request(
                        home,
                        Message(
                            kind=MessageKind.MUTATE_BATCH,
                            sender=-(args.gateway_id + 1),
                            payload={
                                "origin": args.gateway_id,
                                "acked": acked,
                                "mutations": muts,
                            },
                        ),
                    )
                    mutation_rpcs += 1
                    outcomes = reply.payload["outcomes"]
                    if any(not o["applied"] for o in outcomes):
                        raise RuntimeError(f"mutation rejected: {outcomes}")
                    # The reply is the acknowledgement: fold the batch
                    # into the expected final state.
                    for mutation in muts:
                        exists[mutation["path"]] = (
                            mutation["op"] == "create"
                        )
                        mutations += 1
                # Synchronous flush: everything issued so far is settled.
                acked = version
        report = {
            "gateway": args.gateway_id,
            "ops": args.ops,
            "lookups": lookups,
            "lookup_rpcs": lookup_rpcs,
            "mutations": mutations,
            "mutation_rpcs": mutation_rpcs,
            "latency_ms": _percentiles(latencies_ms),
            "expected": {path: exists[path] for path in sorted(exists)},
            "transport": transport.stats(),
            "counters": {
                "messages_sent": transport.messages_sent,
                "replies_received": transport.replies_received,
                "retries": transport.retries,
                "exhausted": transport.exhausted,
            },
        }
    finally:
        transport.close()
    return report


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def _populate(
    transport: TcpTransport, paths: List[str], servers: int
) -> None:
    by_home: Dict[int, List[dict]] = {}
    for index, path in enumerate(paths):
        by_home.setdefault(home_of(path, servers), []).append(
            {
                "version": index + 1,
                "op": "create",
                "path": path,
                "record": _record_for(path, index),
            }
        )
    for home, muts in sorted(by_home.items()):
        for start in range(0, len(muts), 64):
            reply = transport.request(
                home,
                Message(
                    kind=MessageKind.MUTATE_BATCH,
                    sender=DRIVER_SENDER,
                    payload={
                        "origin": DRIVER_ORIGIN,
                        "acked": 0,
                        "mutations": muts[start : start + 64],
                    },
                ),
            )
            if any(not o["applied"] for o in reply.payload["outcomes"]):
                raise RuntimeError("populate mutation rejected")


def _verify_final_state(
    transport: TcpTransport,
    expected: Dict[str, bool],
    servers: int,
) -> List[str]:
    """Re-read every path; return the ones whose state diverged."""
    by_home: Dict[int, List[str]] = {}
    for path in expected:
        by_home.setdefault(home_of(path, servers), []).append(path)
    mismatches: List[str] = []
    for home, home_paths in sorted(by_home.items()):
        for start in range(0, len(home_paths), 128):
            chunk = home_paths[start : start + 128]
            reply = transport.request(
                home,
                Message(
                    kind=MessageKind.VERIFY_BATCH,
                    sender=DRIVER_SENDER,
                    payload={"paths": chunk},
                ),
            )
            found = reply.payload["found"]
            for path in chunk:
                if bool(found.get(path)) != expected[path]:
                    mismatches.append(path)
    return mismatches


def run_tcp_bench(args, run_metadata) -> int:
    """Drive the multi-process bench; returns the process exit code."""
    started = time.monotonic()
    config = GHBAConfig()
    portmap = PortMap.reserve(range(args.servers))
    paths = bench_paths(args.files)
    out_path = args.out

    print(
        f"[tcp-bench] {args.servers} MDS process(es), "
        f"{args.gateways} gateway worker(s), {args.files} files, "
        f"{args.ops} ops/gateway"
    )
    with ProcessSupervisor(portmap, config, args.workdir) as supervisor:
        transport = TcpTransport(
            portmap,
            default_timeout_s=args.timeout_s,
            connect_attempts=3,
            connect_backoff_s=0.05,
        )
        try:
            for node_id in range(args.servers):
                supervisor.launch_mds(node_id)
            supervisor.wait_ready(
                transport, list(range(args.servers)), timeout_s=30.0
            )
            _populate(transport, paths, args.servers)
            print(f"[tcp-bench] populated {len(paths)} records")

            workers = []
            worker_phase_start = time.monotonic()
            for gateway_id in range(args.gateways):
                workers.append(
                    supervisor.spawn_worker(
                        [
                            "bench-worker",
                            "--gateway-id",
                            str(gateway_id),
                            "--gateways",
                            str(args.gateways),
                            "--servers",
                            str(args.servers),
                            "--files",
                            str(args.files),
                            "--ops",
                            str(args.ops),
                            "--seed",
                            str(args.seed),
                            "--lookup-frac",
                            str(args.lookup_frac),
                            "--timeout-s",
                            str(args.timeout_s),
                            "--portmap-file",
                            str(supervisor._portmap_path),
                            "--config-file",
                            str(supervisor._config_path),
                        ],
                        f"gateway-{gateway_id}.log",
                    )
                )
            reports = []
            failed = False
            for gateway_id, proc in enumerate(workers):
                stdout, _ = proc.communicate(timeout=args.worker_timeout_s)
                if proc.returncode != 0:
                    print(
                        f"[tcp-bench] FAIL: gateway worker {gateway_id} "
                        f"exited {proc.returncode} "
                        f"(see gateway-{gateway_id}.log)"
                    )
                    failed = True
                    continue
                reports.append(json.loads(stdout.decode("utf-8")))
            worker_wall_s = time.monotonic() - worker_phase_start
            if failed:
                return 1

            expected: Dict[str, bool] = {}
            for report in reports:
                expected.update(report.pop("expected"))
            # Paths no worker owns keep their populated state.
            for path in paths:
                expected.setdefault(path, True)
            mismatches = _verify_final_state(transport, expected, args.servers)

            total_rpcs = sum(
                r["lookup_rpcs"] + r["mutation_rpcs"] for r in reports
            )
            total_mutations = sum(r["mutations"] for r in reports)
            stats = {
                "transport": "tcp",
                "servers": args.servers,
                "gateways": args.gateways,
                "files": args.files,
                "ops_per_gateway": args.ops,
                "seed": args.seed,
                "worker_wall_s": round(worker_wall_s, 3),
                "rpcs": total_rpcs,
                "rpcs_per_s": round(total_rpcs / max(worker_wall_s, 1e-9), 1),
                "lookups": sum(r["lookups"] for r in reports),
                "mutations": total_mutations,
                "verified_paths": len(expected),
                "lost_acknowledged_mutations": len(mismatches),
                "driver_transport": transport.stats(),
                "workers": reports,
            }
            payload = {
                "tcp": stats,
                "_meta": run_metadata(time.monotonic() - started),
            }
            with open(out_path, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(
                f"[tcp-bench] {total_rpcs} RPCs in {worker_wall_s:.2f}s "
                f"({stats['rpcs_per_s']:.0f}/s), "
                f"{total_mutations} acknowledged mutations, "
                f"{len(mismatches)} lost -> {out_path}"
            )
            if mismatches:
                print(
                    "[tcp-bench] FAIL: acknowledged mutations lost at "
                    + ", ".join(sorted(mismatches)[:10])
                )
                return 1
            return 0
        finally:
            supervisor.stop_all(transport)
            transport.close()
