"""``repro.net``: a real network substrate for the prototype protocol.

The prototype's message layer was transport-shaped from the start — every
protocol step is a :class:`~repro.prototype.messages.Message` delivered by
a transport object exposing ``send`` / ``request`` / ``gather``.  This
package supplies the second implementation of that surface:

- :mod:`repro.net.reliability` — the transport-agnostic retry/backoff
  driver (hoisted out of ``InProcessTransport``) plus the shared
  :class:`~repro.net.reliability.GatherResult` /
  :class:`~repro.net.reliability.TransportClosed` vocabulary.
- :mod:`repro.net.codec` — a versioned, length-prefixed, deterministic
  binary wire format for every :class:`~repro.prototype.messages.
  MessageKind` payload (stdlib only).
- :mod:`repro.net.tcp` — :class:`~repro.net.tcp.TcpTransport`, an asyncio
  TCP transport with per-peer connection pooling and bounded outbound
  queues, speaking the codec and driving the same fault injector and
  retry policy as the in-process transport.
- :mod:`repro.net.supervisor` — launches each MDS as a real OS process
  (``python -m repro.net serve``) wired together by a static port map.
- :mod:`repro.net.bench` — the multi-process wall-clock bench behind
  ``python -m repro.gateway bench --transport tcp``.

The in-process transport remains the deterministic tier-1 harness; this
package is where real serialization cost, real backpressure, and
wall-clock numbers come from.

Submodules are resolved lazily (PEP 562) so that importing
``repro.prototype`` — whose transport uses only the reliability layer —
never pays for asyncio.
"""

_EXPORTS = {
    "CodecError": "repro.net.codec",
    "decode_body": "repro.net.codec",
    "decode_frame": "repro.net.codec",
    "encode_body": "repro.net.codec",
    "encode_frame": "repro.net.codec",
    "GatherResult": "repro.net.reliability",
    "TransportClosed": "repro.net.reliability",
    "PortMap": "repro.net.tcp",
    "TcpTransport": "repro.net.tcp",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
