"""CLI for the TCP substrate.

``serve``
    Run one MDS as this OS process: register on the port map, start the
    node thread, serve until a STOP message arrives over the wire.
    This is what :class:`~repro.net.supervisor.ProcessSupervisor`
    launches per node::

        python -m repro.net serve --node-id 0 \\
            --portmap-file portmap.json --config-file config.json

``bench-worker``
    One gateway's share of the TCP bench (spawned by
    ``python -m repro.gateway bench --transport tcp``); emits its JSON
    report on stdout.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _cmd_serve(args) -> int:
    from repro.core.checkpoint import restore_server
    from repro.net.supervisor import config_from_dict
    from repro.net.tcp import PortMap, TcpTransport
    from repro.prototype.node import MDSNode

    portmap = PortMap.from_json(Path(args.portmap_file).read_text())
    if args.config_file:
        config = config_from_dict(json.loads(Path(args.config_file).read_text()))
    else:
        from repro.core.config import GHBAConfig

        config = GHBAConfig()
    server = None
    if args.checkpoint:
        entry = json.loads(Path(args.checkpoint).read_text())
        server = restore_server(entry, config)
    transport = TcpTransport(portmap, default_timeout_s=args.timeout_s)
    node = MDSNode(args.node_id, config, transport, server=server)
    node.start()
    print(f"READY {args.node_id}", flush=True)
    try:
        node.join()  # runs until a STOP frame arrives
    except KeyboardInterrupt:
        pass
    finally:
        transport.deregister(args.node_id)
        transport.close()
    return 0


def _cmd_bench_worker(args) -> int:
    from repro.net.bench import run_gateway_worker

    report = run_gateway_worker(args)
    json.dump(report, sys.stdout, sort_keys=True)
    sys.stdout.write("\n")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net",
        description="TCP transport processes for the G-HBA prototype.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run one MDS as this process")
    serve.add_argument("--node-id", type=int, required=True)
    serve.add_argument(
        "--portmap-file",
        required=True,
        help="JSON {node_id: [host, port]} written by the supervisor",
    )
    serve.add_argument(
        "--config-file", default=None, help="GHBAConfig fields as JSON"
    )
    serve.add_argument(
        "--checkpoint",
        default=None,
        help="snapshot_server document to restore instead of a fresh store",
    )
    serve.add_argument("--timeout-s", type=float, default=30.0)
    serve.set_defaults(func=_cmd_serve)

    worker = sub.add_parser(
        "bench-worker", help="one gateway's share of the TCP bench"
    )
    worker.add_argument("--gateway-id", type=int, required=True)
    worker.add_argument("--gateways", type=int, required=True)
    worker.add_argument("--servers", type=int, required=True)
    worker.add_argument("--files", type=int, required=True)
    worker.add_argument("--ops", type=int, required=True)
    worker.add_argument("--seed", type=int, default=0)
    worker.add_argument("--lookup-frac", type=float, default=0.8)
    worker.add_argument("--timeout-s", type=float, default=10.0)
    worker.add_argument("--portmap-file", required=True)
    worker.add_argument("--config-file", required=True)
    worker.set_defaults(func=_cmd_bench_worker)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
