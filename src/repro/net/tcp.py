"""Asyncio TCP transport speaking the ``repro.net.codec`` wire format.

One :class:`TcpTransport` per OS process.  It exposes the exact surface
of :class:`~repro.prototype.transport.InProcessTransport` — ``register``
(returns a plain ``queue.Queue`` mailbox, so :class:`~repro.prototype.
node.MDSNode` runs unmodified), ``send`` / ``request`` / ``gather``,
the same counters, the same fault-injector hook — which is what lets
``PrototypeCluster``, the gateway cohort, and the write-back flush
engine run on either transport.

Architecture
------------
A single daemon thread runs an asyncio event loop; caller threads talk
to it through ``run_coroutine_threadsafe``.  Per peer there is one
pooled client connection carrying all requests, with:

- a **bounded outbound queue** (``outbound_queue_limit`` frames): when
  it is full the *caller thread blocks* until the writer drains — that
  is real backpressure, surfaced in ``transport_backpressure_stalls_total``
  and the ``transport_queue_high_water`` gauge rather than hidden in an
  unbounded buffer;
- a writer task (write + drain, counting bytes/frames out);
- a reader task demultiplexing REPLY frames to waiting requests by
  ``request_id``.

The server side (``register``) accepts connections, decodes frames into
the node's mailbox, and arms ``message.reply_to`` with a shim whose
``put(reply)`` encodes the reply back onto the originating connection —
the node's handler loop cannot tell the two transports apart.

Fault-boundary parity: every ``send`` consults the same
:class:`~repro.faults.injector.FaultInjector` verdict protocol as the
in-process transport (drop → ``False`` but still counted, delay →
virtual arrival bump, duplicate → extra frames), and retry/backoff is
the shared :mod:`repro.net.reliability` driver, so recovery semantics
are identical by construction.  A peer that cannot be reached (connect
refused after bounded attempts, or not in the port map) raises
:class:`TransportClosed` — which ``gather`` reports as ``unreachable``,
matching a deregistered in-process node.
"""

from __future__ import annotations

import asyncio
import json
import queue
import random
import socket
import struct
import threading
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.faults.injector import FaultInjector, NULL_INJECTOR
from repro.faults.retry import DEFAULT_RETRY, RetryPolicy
from repro.net.codec import (
    MAX_FRAME_BYTES,
    CodecError,
    decode_body,
    encode_body,
)
from repro.net.reliability import (
    GatherResult,
    TransportClosed,
    reliable_gather,
    reliable_request,
)
from repro.prototype.messages import Message

__all__ = ["PortMap", "TcpTransport"]


class PortMap:
    """Static discovery: ``node_id -> (host, port)`` for every peer.

    The supervisor reserves ports up front (bind port 0, record what the
    kernel handed out) and ships the map to every child process, so
    there is no runtime discovery protocol to get wrong.
    """

    def __init__(self, endpoints: Dict[int, Tuple[str, int]]) -> None:
        self._endpoints = {
            int(node_id): (str(host), int(port))
            for node_id, (host, port) in endpoints.items()
        }

    @classmethod
    def reserve(
        cls, node_ids: Iterable[int], host: str = "127.0.0.1"
    ) -> "PortMap":
        """Reserve one OS-assigned port per node id.

        The sockets are closed again immediately — a tiny window exists
        in which another process could claim the port, which is fine for
        a test/bench harness on localhost.
        """
        endpoints: Dict[int, Tuple[str, int]] = {}
        probes: List[socket.socket] = []
        try:
            for node_id in node_ids:
                probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
                probe.bind((host, 0))
                probes.append(probe)
                endpoints[int(node_id)] = (host, probe.getsockname()[1])
        finally:
            for probe in probes:
                probe.close()
        return cls(endpoints)

    def endpoint(self, node_id: int) -> Tuple[str, int]:
        try:
            return self._endpoints[node_id]
        except KeyError:
            raise TransportClosed(
                f"node {node_id} is not in the port map"
            ) from None

    def node_ids(self) -> List[int]:
        return sorted(self._endpoints)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._endpoints

    def __len__(self) -> int:
        return len(self._endpoints)

    def to_json(self) -> str:
        return json.dumps(
            {
                str(node_id): [host, port]
                for node_id, (host, port) in sorted(self._endpoints.items())
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, raw: str) -> "PortMap":
        data = json.loads(raw)
        return cls(
            {
                int(node_id): (host, int(port))
                for node_id, (host, port) in data.items()
            }
        )


class _ReplyShim:
    """Stands in for the in-process reply queue on the server side.

    The node's handler calls ``reply_to.put(reply)``; here that encodes
    the reply and enqueues it on the originating connection's bounded
    outbound queue (blocking the node thread when the peer reads slowly
    — reply backpressure, same accounting as the client side).
    """

    __slots__ = ("_transport", "_outbound")

    def __init__(self, transport: "TcpTransport", outbound: "_Outbound"):
        self._transport = transport
        self._outbound = outbound

    def put(self, reply: Message) -> None:
        body = encode_body(reply, expects_reply=False)
        self._transport._enqueue_threadsafe(self._outbound, body)


class _Outbound:
    """One bounded outbound frame queue + writer task for a connection."""

    __slots__ = ("queue", "task", "closed")

    def __init__(
        self,
        transport: "TcpTransport",
        writer: asyncio.StreamWriter,
        limit: int,
    ) -> None:
        self.queue: "asyncio.Queue[Optional[bytes]]" = asyncio.Queue(
            maxsize=limit
        )
        self.closed = False
        self.task = asyncio.get_running_loop().create_task(
            self._drain(transport, writer)
        )

    async def _drain(
        self, transport: "TcpTransport", writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                body = await self.queue.get()
                if body is None:
                    break
                frame = struct.pack(">I", len(body)) + body
                writer.write(frame)
                await writer.drain()
                transport._count_wire_out(len(frame))
        except (ConnectionError, OSError):
            pass
        finally:
            self.closed = True
            try:
                writer.close()
            except Exception:
                pass


class _PeerConnection:
    """One pooled client connection to a peer node."""

    __slots__ = ("outbound", "reader_task", "closed")

    def __init__(self) -> None:
        self.outbound: Optional[_Outbound] = None
        self.reader_task: Optional[asyncio.Task] = None
        self.closed = False


class TcpTransport:
    """TCP implementation of the prototype transport surface.

    Parameters mirror :class:`~repro.prototype.transport.
    InProcessTransport`, plus the TCP-specific connection knobs.
    """

    def __init__(
        self,
        portmap: PortMap,
        default_timeout_s: float = 30.0,
        injector: Optional[FaultInjector] = None,
        retry: Optional[RetryPolicy] = None,
        metrics=None,
        connect_attempts: int = 10,
        connect_backoff_s: float = 0.05,
        outbound_queue_limit: int = 1024,
    ) -> None:
        self.portmap = portmap
        self._default_timeout = default_timeout_s
        self.injector: FaultInjector = (
            injector if injector is not None else NULL_INJECTOR
        )
        self.retry: RetryPolicy = retry if retry is not None else DEFAULT_RETRY
        self._retry_rng = random.Random(0)
        self._connect_attempts = max(1, connect_attempts)
        self._connect_backoff_s = connect_backoff_s
        self._outbound_queue_limit = outbound_queue_limit

        self._lock = threading.Lock()
        self._messages_sent = 0
        self._replies_received = 0
        self._retries = 0
        self._exhausted = 0
        # Wire-level stats (TCP-only; the in-process transport has no wire).
        self._bytes_in = 0
        self._bytes_out = 0
        self._frames_in = 0
        self._frames_out = 0
        self._connects = 0
        self._connect_retries = 0
        self._backpressure_stalls = 0
        self._queue_high_water = 0

        self._pending: Dict[int, "queue.Queue[Message]"] = {}
        self._mailboxes: Dict[int, "queue.Queue[Message]"] = {}
        self._servers: Dict[int, asyncio.AbstractServer] = {}
        self._conns: Dict[int, _PeerConnection] = {}
        self._closed = False

        self._metrics = metrics
        self._m = {}
        if metrics is not None:
            self._m = {
                "retries": metrics.counter(
                    "transport_retries_total",
                    "Request attempts re-sent after a reply timed out.",
                ),
                "exhausted": metrics.counter(
                    "transport_retry_exhausted_total",
                    "Requests/multicast legs that ran out of retry attempts.",
                ),
                "backoff": metrics.histogram(
                    "transport_retry_backoff_ms",
                    "Backoff (virtual milliseconds) charged before each retry.",
                ).labels(),
                "bytes": metrics.counter(
                    "transport_bytes_total",
                    "Bytes moved on the wire, by direction.",
                    labels=("direction",),
                ),
                "frames": metrics.counter(
                    "transport_frames_total",
                    "Frames moved on the wire, by direction.",
                    labels=("direction",),
                ),
                "connects": metrics.counter(
                    "transport_connects_total",
                    "Client connections established.",
                ),
                "connect_retries": metrics.counter(
                    "transport_connect_retries_total",
                    "Failed connect attempts that were retried.",
                ),
                "stalls": metrics.counter(
                    "transport_backpressure_stalls_total",
                    "Sends that blocked on a full outbound queue.",
                ),
                "high_water": metrics.gauge(
                    "transport_queue_high_water",
                    "Maximum outbound queue depth observed (frames).",
                ),
            }

        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run_loop, name="tcp-transport", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Event loop plumbing
    # ------------------------------------------------------------------
    def _run_loop(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def _call(self, coro):
        """Run a coroutine on the loop from a caller thread."""
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()

    # ------------------------------------------------------------------
    # Counters (same surface as InProcessTransport, plus wire stats)
    # ------------------------------------------------------------------
    @property
    def messages_sent(self) -> int:
        with self._lock:
            return self._messages_sent

    @property
    def replies_received(self) -> int:
        with self._lock:
            return self._replies_received

    @property
    def retries(self) -> int:
        with self._lock:
            return self._retries

    @property
    def exhausted(self) -> int:
        with self._lock:
            return self._exhausted

    def reset_counters(self) -> None:
        with self._lock:
            self._messages_sent = 0
            self._replies_received = 0
            self._retries = 0
            self._exhausted = 0

    def stats(self) -> Dict[str, int]:
        """Wire-level stats snapshot (monotonic since construction)."""
        with self._lock:
            return {
                "bytes_in": self._bytes_in,
                "bytes_out": self._bytes_out,
                "frames_in": self._frames_in,
                "frames_out": self._frames_out,
                "connects": self._connects,
                "connect_retries": self._connect_retries,
                "backpressure_stalls": self._backpressure_stalls,
                "queue_high_water": self._queue_high_water,
            }

    def _count_wire_out(self, nbytes: int) -> None:
        with self._lock:
            self._bytes_out += nbytes
            self._frames_out += 1
        if self._m:
            self._m["bytes"].labels("out").inc(nbytes)
            self._m["frames"].labels("out").inc()

    def _count_wire_in(self, nbytes: int) -> None:
        with self._lock:
            self._bytes_in += nbytes
            self._frames_in += 1
        if self._m:
            self._m["bytes"].labels("in").inc(nbytes)
            self._m["frames"].labels("in").inc()

    def _note_queue_depth(self, depth: int) -> None:
        with self._lock:
            if depth > self._queue_high_water:
                self._queue_high_water = depth
            high = self._queue_high_water
        if self._m:
            self._m["high_water"].labels().set(high)

    def _count_reply(self) -> None:
        with self._lock:
            self._messages_sent += 1  # the reply on the wire
            self._replies_received += 1

    def _note_retry(self, backoff_s: float) -> None:
        with self._lock:
            self._retries += 1
        if self._m:
            self._m["retries"].inc()
            self._m["backoff"].observe(backoff_s * 1000.0)

    def _note_exhausted(self, count: int = 1) -> None:
        with self._lock:
            self._exhausted += count
        if self._m:
            self._m["exhausted"].inc(count)

    # ------------------------------------------------------------------
    # Registration (server side)
    # ------------------------------------------------------------------
    def register(self, node_id: int) -> "queue.Queue[Message]":
        with self._lock:
            if node_id in self._mailboxes:
                raise ValueError(f"node {node_id} already registered")
            mailbox: "queue.Queue[Message]" = queue.Queue()
            self._mailboxes[node_id] = mailbox
        host, port = self.portmap.endpoint(node_id)
        server = self._call(self._start_server(node_id, host, port))
        self._servers[node_id] = server
        return mailbox

    async def _start_server(
        self, node_id: int, host: str, port: int
    ) -> asyncio.AbstractServer:
        mailbox = self._mailboxes[node_id]

        async def handle(reader, writer):
            outbound = _Outbound(self, writer, self._outbound_queue_limit)
            try:
                await self._pump_inbound(reader, mailbox, outbound)
            except asyncio.CancelledError:
                pass  # transport shutdown; end the task uncancelled
            finally:
                if not outbound.closed:
                    try:
                        outbound.queue.put_nowait(None)
                    except asyncio.QueueFull:
                        outbound.task.cancel()

        return await asyncio.start_server(handle, host, port)

    async def _pump_inbound(self, reader, mailbox, outbound) -> None:
        """Decode inbound frames from one connection into the mailbox."""
        while True:
            try:
                header = await reader.readexactly(4)
            except (asyncio.IncompleteReadError, ConnectionError):
                break
            (length,) = struct.unpack(">I", header)
            if length > MAX_FRAME_BYTES:
                break  # corrupt peer; drop the connection
            try:
                body = await reader.readexactly(length)
            except (asyncio.IncompleteReadError, ConnectionError):
                break
            self._count_wire_in(4 + length)
            try:
                message, expects_reply = decode_body(body)
            except CodecError:
                break  # protocol violation; drop the connection
            if expects_reply:
                message.reply_to = _ReplyShim(self, outbound)
            mailbox.put(message)

    def deregister(self, node_id: int) -> None:
        with self._lock:
            self._mailboxes.pop(node_id, None)
        server = self._servers.pop(node_id, None)
        if server is not None:
            self._call(self._close_server(server))

    @staticmethod
    async def _close_server(server: asyncio.AbstractServer) -> None:
        server.close()
        await server.wait_closed()

    def node_ids(self) -> List[int]:
        return self.portmap.node_ids()

    def __contains__(self, node_id: int) -> bool:
        return node_id in self.portmap

    # ------------------------------------------------------------------
    # Client connections
    # ------------------------------------------------------------------
    async def _get_connection(self, dest: int) -> _PeerConnection:
        conn = self._conns.get(dest)
        if conn is not None and not conn.closed and not conn.outbound.closed:
            return conn
        host, port = self.portmap.endpoint(dest)
        reader = writer = None
        for attempt in range(self._connect_attempts):
            try:
                reader, writer = await asyncio.open_connection(host, port)
                break
            except OSError:
                with self._lock:
                    self._connect_retries += 1
                if self._m:
                    self._m["connect_retries"].inc()
                if attempt + 1 >= self._connect_attempts:
                    raise TransportClosed(
                        f"node {dest} unreachable at {host}:{port} after "
                        f"{self._connect_attempts} connect attempt(s)"
                    ) from None
                await asyncio.sleep(self._connect_backoff_s * (attempt + 1))
        with self._lock:
            self._connects += 1
        if self._m:
            self._m["connects"].inc()
        conn = _PeerConnection()
        conn.outbound = _Outbound(self, writer, self._outbound_queue_limit)
        conn.reader_task = self._loop.create_task(
            self._client_reader(dest, conn, reader)
        )
        self._conns[dest] = conn
        return conn

    async def _client_reader(
        self, dest: int, conn: _PeerConnection, reader: asyncio.StreamReader
    ) -> None:
        """Demultiplex reply frames from one peer to waiting requests."""
        try:
            while True:
                try:
                    header = await reader.readexactly(4)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                (length,) = struct.unpack(">I", header)
                if length > MAX_FRAME_BYTES:
                    break
                try:
                    body = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                self._count_wire_in(4 + length)
                try:
                    message, _ = decode_body(body)
                except CodecError:
                    break
                with self._lock:
                    waiter = self._pending.get(message.request_id)
                if waiter is not None:
                    waiter.put(message)
                # else: a reply nobody waits for anymore (late duplicate
                # after the retry budget) — dropped, like in-process.
        finally:
            conn.closed = True
            if conn.outbound is not None and not conn.outbound.closed:
                await conn.outbound.queue.put(None)

    async def _enqueue_frames(self, dest: int, bodies: List[bytes]) -> None:
        conn = await self._get_connection(dest)
        for body in bodies:
            if conn.outbound.queue.full():
                with self._lock:
                    self._backpressure_stalls += 1
                if self._m:
                    self._m["stalls"].inc()
            await conn.outbound.queue.put(body)
            self._note_queue_depth(conn.outbound.queue.qsize())

    def _enqueue_threadsafe(self, outbound: _Outbound, body: bytes) -> None:
        """Reply path: enqueue one frame on an inbound connection."""

        async def put() -> None:
            if outbound.closed:
                return  # peer went away; reply has nowhere to go
            if outbound.queue.full():
                with self._lock:
                    self._backpressure_stalls += 1
                if self._m:
                    self._m["stalls"].inc()
            await outbound.queue.put(body)
            self._note_queue_depth(outbound.queue.qsize())

        self._call(put())

    # ------------------------------------------------------------------
    # Messaging
    # ------------------------------------------------------------------
    def send(self, dest: int, message: Message, count: bool = True) -> bool:
        """One-way send; parity with ``InProcessTransport.send``.

        Returns True when the frame was handed to the peer connection;
        False when the fault layer dropped it (still counted — it went
        on the wire and vanished there).  Raises :class:`TransportClosed`
        for a peer that is absent from the port map or refuses
        connections beyond the bounded connect retries.
        """
        if self._closed:
            raise TransportClosed("transport is closed")
        # Counting and the injector verdict come first, exactly like the
        # in-process transport: a dropped message was still sent.
        with self._lock:
            if count:
                self._messages_sent += 1
        copies = 1
        if self.injector.enabled:
            verdict = self.injector.on_send(dest, message)
            if not verdict.deliver:
                return False
            if verdict.delay_s:
                message.arrival_vtime += verdict.delay_s
            copies = verdict.copies
        expects_reply = message.reply_to is not None
        if expects_reply:
            with self._lock:
                self._pending[message.request_id] = message.reply_to
        body = encode_body(message, expects_reply)
        self._call(self._enqueue_frames(dest, [body] * copies))
        return True

    # ------------------------------------------------------------------
    # Wire adapter driven by repro.net.reliability
    # ------------------------------------------------------------------
    def dispatch_attempt(self, dest: int, message: Message, count: bool) -> bool:
        message.reply_to = queue.Queue()
        return self.send(dest, message, count=count)

    def collect_reply(
        self, message: Message, timeout_s: float
    ) -> Optional[Message]:
        try:
            return message.reply_to.get(timeout=timeout_s)
        except queue.Empty:
            return None

    def reply_received(self, count: bool) -> None:
        if count:
            self._count_reply()
        else:
            with self._lock:
                self._replies_received += 1

    def next_backoff(self, retry_index: int) -> float:
        with self._lock:
            return self.retry.backoff_s(retry_index, self._retry_rng)

    def note_retry(self, backoff_s: float) -> None:
        self._note_retry(backoff_s)

    def note_exhausted(self, count: int) -> None:
        self._note_exhausted(count)

    def retry_attempt(self, message: Message, backoff_s: float) -> Message:
        return Message(
            kind=message.kind,
            sender=message.sender,
            payload=message.payload,
            request_id=message.request_id,
            arrival_vtime=message.arrival_vtime + self.retry.timeout_s + backoff_s,
            trace=message.trace,
        )

    def request(
        self,
        dest: int,
        message: Message,
        timeout_s: Optional[float] = None,
        count: bool = True,
    ) -> Message:
        timeout = timeout_s if timeout_s is not None else self._default_timeout
        try:
            return reliable_request(
                self, self.retry, dest, message, timeout, count
            )
        finally:
            with self._lock:
                self._pending.pop(message.request_id, None)

    def gather(
        self,
        dests: Iterable[int],
        build_message: Callable[[int], Message],
        timeout_s: Optional[float] = None,
    ) -> GatherResult:
        timeout = timeout_s if timeout_s is not None else self._default_timeout
        issued: List[int] = []

        def build(dest: int) -> Message:
            message = build_message(dest)
            issued.append(message.request_id)
            return message

        try:
            return reliable_gather(self, self.retry, dests, build, timeout)
        finally:
            with self._lock:
                for request_id in issued:
                    self._pending.pop(request_id, None)

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Tear down servers, connections, and the event loop."""
        if self._closed:
            return
        self._closed = True
        try:
            self._call(self._shutdown())
        except Exception:
            pass
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=5.0)
        if not self._loop.is_running():
            self._loop.close()

    async def _shutdown(self) -> None:
        for server in self._servers.values():
            server.close()
        for server in self._servers.values():
            try:
                await server.wait_closed()
            except Exception:
                pass
        self._servers.clear()
        for conn in self._conns.values():
            if conn.outbound is not None and not conn.outbound.closed:
                await conn.outbound.queue.put(None)
            if conn.reader_task is not None:
                conn.reader_task.cancel()
        self._conns.clear()
        # Server-side connection handlers (and their drain tasks) are
        # still parked on reads; cancel them inside the live loop so the
        # loop closes without "Task was destroyed but it is pending".
        tasks = [
            task
            for task in asyncio.all_tasks()
            if task is not asyncio.current_task()
        ]
        for task in tasks:
            task.cancel()
        await asyncio.gather(*tasks, return_exceptions=True)

    def __enter__(self) -> "TcpTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
