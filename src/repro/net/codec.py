"""Deterministic binary wire format for the prototype's ``Message``.

Frame layout (everything big-endian)::

    +--------------------+-------------------------------------------+
    | 4 bytes            | body length N (excludes these 4 bytes)    |
    | N bytes            | body                                      |
    +--------------------+-------------------------------------------+

    body := magic "RN" | version u8 | kind u8 | flags u8
          | sender zigzag-varint | request_id varint
          | arrival_vtime f64
          | [trace: 3 x zigzag-varint]        (iff flags bit 1)
          | payload value                      (always a dict)

``flags`` bit 0 marks a message that expects a reply (the in-process
transport expresses this with an attached ``reply_to`` queue, which
cannot cross a process boundary — the bit replaces it on the wire);
bit 1 marks the presence of the PR 6 trace context
``(trace_id, parent_span_id, origin)``.

Values are tagged:

====  =======================================================
tag   encoding
====  =======================================================
0x00  None
0x01  False
0x02  True
0x03  int — zigzag LEB128 varint (up to 70 bits after zigzag)
0x04  float — IEEE-754 binary64
0x05  str — varint byte length + UTF-8
0x06  bytes — varint length + raw
0x07  list/tuple — varint count + elements (tuples decode as lists)
0x08  dict — varint count + sorted (str key, value) pairs
0x09  FileMetadata — 12 fields in declaration order
0x0A  BloomFilter — varint length + ``BloomFilter.to_bytes()``
====  =======================================================

Dict keys must be strings and are written sorted, so
``encode(decode(encode(m))) == encode(m)`` bit-for-bit — the property
the determinism suite and the fuzz tests pin.  The decoder is strictly
bounds-checked: truncated, oversized, or garbage input raises the typed
:class:`CodecError` (never ``IndexError``/``struct.error``, never an
over-read past the frame, never an unbounded allocation — element
counts are validated against the bytes actually remaining).

Stdlib only; no reflection or pickling — every type that crosses the
wire is listed above, and anything else is a :class:`CodecError` at
*encode* time, so an unpicklable payload fails on the sender where the
bug is, not on the peer.
"""

from __future__ import annotations

import struct
from typing import Any, Optional, Tuple

from repro.bloom.bloom_filter import BloomFilter
from repro.metadata.attributes import FileKind, FileMetadata
from repro.prototype.messages import Message, MessageKind

WIRE_MAGIC = b"RN"
WIRE_VERSION = 1
#: Hard ceiling on one frame body; a length prefix beyond this is rejected
#: before any allocation, so a corrupt prefix cannot balloon memory.
MAX_FRAME_BYTES = 16 * 1024 * 1024

FLAG_EXPECTS_REPLY = 0x01
FLAG_HAS_TRACE = 0x02

_TAG_NONE = 0x00
_TAG_FALSE = 0x01
_TAG_TRUE = 0x02
_TAG_INT = 0x03
_TAG_FLOAT = 0x04
_TAG_STR = 0x05
_TAG_BYTES = 0x06
_TAG_LIST = 0x07
_TAG_DICT = 0x08
_TAG_METADATA = 0x09
_TAG_BLOOM = 0x0A

# Wire IDs are assigned explicitly (not enum order at runtime) so that
# reordering the enum in a refactor cannot silently change the protocol.
KIND_TO_WIRE = {
    MessageKind.PROBE_LRU: 1,
    MessageKind.PROBE_LOCAL: 2,
    MessageKind.PROBE_SEGMENT: 3,
    MessageKind.VERIFY: 4,
    MessageKind.VERIFY_BATCH: 5,
    MessageKind.MUTATE_BATCH: 6,
    MessageKind.INSERT: 7,
    MessageKind.HOST_REPLICA: 8,
    MessageKind.DROP_REPLICA: 9,
    MessageKind.REPLACE_REPLICA: 10,
    MessageKind.PUBLISH: 11,
    MessageKind.COPY_REPLICA_TO: 12,
    MessageKind.SEND_LOCAL_TO: 13,
    MessageKind.EXCHANGE_REPLICA: 14,
    MessageKind.RECORD_LRU: 15,
    MessageKind.PING: 16,
    MessageKind.STOP: 17,
    MessageKind.REPLY: 18,
    MessageKind.INVALIDATE: 19,
    MessageKind.COHORT_HEARTBEAT: 20,
    MessageKind.COHORT_SYNC: 21,
    MessageKind.COHORT_SYNC_REPLY: 22,
    MessageKind.REPL_SHIP: 23,
    MessageKind.REPL_ACK: 24,
    MessageKind.REPL_SYNC: 25,
    MessageKind.REPL_PROMOTE: 26,
}
WIRE_TO_KIND = {wire_id: kind for kind, wire_id in KIND_TO_WIRE.items()}

_FILE_KINDS = (FileKind.REGULAR, FileKind.DIRECTORY, FileKind.SYMLINK)
_FILE_KIND_TO_WIRE = {kind: index for index, kind in enumerate(_FILE_KINDS)}


class CodecError(Exception):
    """Raised for any malformed frame: bad magic/version/tag, truncation,
    trailing bytes, oversize, or an unencodable payload value."""


# ----------------------------------------------------------------------
# Primitives
# ----------------------------------------------------------------------
def _encode_varint(value: int) -> bytes:
    if value < 0:
        raise CodecError(f"varint must be non-negative, got {value}")
    if value > _MAX_VARINT:
        raise CodecError(f"varint {value} exceeds the 70-bit range")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


#: Widest varint either side will accept: 10 septets = 70 bits, room for
#: any 64-bit quantity after zigzag.  The shared bound keeps encode and
#: decode symmetric — nothing the encoder emits is rejected by the peer.
_MAX_VARINT = (1 << 70) - 1


def _encode_zigzag(value: int) -> bytes:
    encoded = (value << 1) if value >= 0 else ((-value << 1) - 1)
    if encoded > _MAX_VARINT:
        raise CodecError(f"int {value} exceeds the 70-bit varint range")
    return _encode_varint(encoded)


def _decode_zigzag(encoded: int) -> int:
    return (encoded >> 1) if not (encoded & 1) else -((encoded + 1) >> 1)


class _Reader:
    """Bounds-checked cursor over one frame body."""

    __slots__ = ("_data", "_pos")

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def take(self, count: int) -> bytes:
        if count < 0 or count > self.remaining:
            raise CodecError(
                f"truncated frame: need {count} byte(s), "
                f"{self.remaining} remaining"
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def byte(self) -> int:
        return self.take(1)[0]

    def varint(self) -> int:
        result = 0
        shift = 0
        # 10 septets cover 70 bits — beyond any length this codec emits;
        # the cap turns a corrupt continuation-bit run into CodecError
        # instead of an unbounded loop.
        for _ in range(10):
            byte = self.byte()
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return result
            shift += 7
        raise CodecError("varint longer than 10 bytes")

    def zigzag(self) -> int:
        return _decode_zigzag(self.varint())

    def float64(self) -> float:
        return struct.unpack(">d", self.take(8))[0]

    def expect_end(self) -> None:
        if self.remaining:
            raise CodecError(f"{self.remaining} trailing byte(s) after frame")


# ----------------------------------------------------------------------
# Values
# ----------------------------------------------------------------------
def _encode_value(value: Any, out: bytearray) -> None:
    if value is None:
        out.append(_TAG_NONE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif isinstance(value, int):
        out.append(_TAG_INT)
        out += _encode_zigzag(value)
    elif isinstance(value, float):
        out.append(_TAG_FLOAT)
        out += struct.pack(">d", value)
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_TAG_STR)
        out += _encode_varint(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out.append(_TAG_BYTES)
        out += _encode_varint(len(value))
        out += bytes(value)
    elif isinstance(value, (list, tuple)):
        out.append(_TAG_LIST)
        out += _encode_varint(len(value))
        for item in value:
            _encode_value(item, out)
    elif isinstance(value, dict):
        out.append(_TAG_DICT)
        out += _encode_varint(len(value))
        for key in sorted(value):
            if not isinstance(key, str):
                raise CodecError(
                    f"dict keys must be str, got {type(key).__name__}"
                )
            raw = key.encode("utf-8")
            out += _encode_varint(len(raw))
            out += raw
            _encode_value(value[key], out)
    elif isinstance(value, FileMetadata):
        out.append(_TAG_METADATA)
        raw = value.path.encode("utf-8")
        out += _encode_varint(len(raw))
        out += raw
        out += _encode_varint(value.inode)
        out.append(_FILE_KIND_TO_WIRE[value.kind])
        out += _encode_varint(value.size)
        out += _encode_zigzag(value.uid)
        out += _encode_zigzag(value.gid)
        out += _encode_varint(value.mode)
        out += struct.pack(">ddd", value.atime, value.mtime, value.ctime)
        out += _encode_varint(value.nlink)
        raw = value.symlink_target.encode("utf-8")
        out += _encode_varint(len(raw))
        out += raw
    elif isinstance(value, BloomFilter):
        raw = value.to_bytes()
        out.append(_TAG_BLOOM)
        out += _encode_varint(len(raw))
        out += raw
    else:
        raise CodecError(
            f"cannot encode payload value of type {type(value).__name__}"
        )


def _decode_str(reader: _Reader) -> str:
    length = reader.varint()
    try:
        return reader.take(length).decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError(f"invalid UTF-8 in string: {exc}") from None


def _decode_value(reader: _Reader) -> Any:
    tag = reader.byte()
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_FALSE:
        return False
    if tag == _TAG_TRUE:
        return True
    if tag == _TAG_INT:
        return reader.zigzag()
    if tag == _TAG_FLOAT:
        return reader.float64()
    if tag == _TAG_STR:
        return _decode_str(reader)
    if tag == _TAG_BYTES:
        return reader.take(reader.varint())
    if tag == _TAG_LIST:
        count = reader.varint()
        # Every element costs >= 1 byte, so a count beyond the bytes
        # left is corrupt — reject before allocating the list.
        if count > reader.remaining:
            raise CodecError(
                f"list claims {count} elements with only "
                f"{reader.remaining} byte(s) left"
            )
        return [_decode_value(reader) for _ in range(count)]
    if tag == _TAG_DICT:
        count = reader.varint()
        if count > reader.remaining:
            raise CodecError(
                f"dict claims {count} entries with only "
                f"{reader.remaining} byte(s) left"
            )
        result = {}
        for _ in range(count):
            key = _decode_str(reader)
            result[key] = _decode_value(reader)
        return result
    if tag == _TAG_METADATA:
        path = _decode_str(reader)
        inode = reader.varint()
        kind_id = reader.byte()
        if kind_id >= len(_FILE_KINDS):
            raise CodecError(f"unknown FileKind wire id {kind_id}")
        kind = _FILE_KINDS[kind_id]
        size = reader.varint()
        uid = reader.zigzag()
        gid = reader.zigzag()
        mode = reader.varint()
        atime, mtime, ctime = struct.unpack(">ddd", reader.take(24))
        nlink = reader.varint()
        symlink_target = _decode_str(reader)
        try:
            return FileMetadata(
                path=path,
                inode=inode,
                kind=kind,
                size=size,
                uid=uid,
                gid=gid,
                mode=mode,
                atime=atime,
                mtime=mtime,
                ctime=ctime,
                nlink=nlink,
                symlink_target=symlink_target,
            )
        except ValueError as exc:
            raise CodecError(f"invalid FileMetadata on wire: {exc}") from None
    if tag == _TAG_BLOOM:
        raw = reader.take(reader.varint())
        if len(raw) < 28:
            raise CodecError("BloomFilter blob shorter than its header")
        # BloomFilter.from_bytes allocates num_bits of BitVector before
        # it validates the payload length, so a corrupt header claiming
        # 2^60 bits would be a giant allocation.  Check the claimed
        # geometry against the bytes actually present first.
        num_bits = int.from_bytes(raw[0:8], "big")
        if len(raw) != 28 + (num_bits + 7) // 8:
            raise CodecError(
                f"BloomFilter blob length {len(raw)} inconsistent with "
                f"claimed {num_bits} bits"
            )
        try:
            return BloomFilter.from_bytes(raw)
        except (ValueError, OverflowError) as exc:
            raise CodecError(f"invalid BloomFilter on wire: {exc}") from None
    raise CodecError(f"unknown value tag 0x{tag:02x}")


# ----------------------------------------------------------------------
# Frames
# ----------------------------------------------------------------------
def encode_body(message: Message, expects_reply: bool) -> bytes:
    """Encode one message into a frame body (no length prefix)."""
    wire_kind = KIND_TO_WIRE.get(message.kind)
    if wire_kind is None:
        raise CodecError(f"unregistered MessageKind {message.kind!r}")
    flags = 0
    if expects_reply:
        flags |= FLAG_EXPECTS_REPLY
    if message.trace is not None:
        flags |= FLAG_HAS_TRACE
    out = bytearray(WIRE_MAGIC)
    out.append(WIRE_VERSION)
    out.append(wire_kind)
    out.append(flags)
    out += _encode_zigzag(message.sender)
    out += _encode_varint(message.request_id)
    out += struct.pack(">d", message.arrival_vtime)
    if message.trace is not None:
        trace_id, parent_span_id, origin = message.trace
        out += _encode_zigzag(trace_id)
        out += _encode_zigzag(parent_span_id)
        out += _encode_zigzag(origin)
    _encode_value(message.payload, out)
    if len(out) > MAX_FRAME_BYTES:
        raise CodecError(
            f"frame body {len(out)} bytes exceeds MAX_FRAME_BYTES"
        )
    return bytes(out)


def decode_body(body: bytes) -> Tuple[Message, bool]:
    """Decode one frame body into ``(message, expects_reply)``."""
    if len(body) > MAX_FRAME_BYTES:
        raise CodecError(
            f"frame body {len(body)} bytes exceeds MAX_FRAME_BYTES"
        )
    reader = _Reader(body)
    if reader.take(2) != WIRE_MAGIC:
        raise CodecError("bad magic: not a repro.net frame")
    version = reader.byte()
    if version != WIRE_VERSION:
        raise CodecError(f"unsupported wire version {version}")
    kind = WIRE_TO_KIND.get(reader.byte())
    if kind is None:
        raise CodecError("unknown MessageKind wire id")
    flags = reader.byte()
    if flags & ~(FLAG_EXPECTS_REPLY | FLAG_HAS_TRACE):
        raise CodecError(f"unknown flag bits 0x{flags:02x}")
    sender = reader.zigzag()
    request_id = reader.varint()
    arrival_vtime = reader.float64()
    trace: Optional[Tuple[int, int, int]] = None
    if flags & FLAG_HAS_TRACE:
        trace = (reader.zigzag(), reader.zigzag(), reader.zigzag())
    payload = _decode_value(reader)
    if not isinstance(payload, dict):
        raise CodecError("frame payload must be a dict")
    reader.expect_end()
    message = Message(
        kind=kind,
        sender=sender,
        payload=payload,
        request_id=request_id,
        arrival_vtime=arrival_vtime,
        trace=trace,
    )
    return message, bool(flags & FLAG_EXPECTS_REPLY)


def encode_frame(message: Message, expects_reply: bool = False) -> bytes:
    """Encode one message into a length-prefixed frame."""
    body = encode_body(message, expects_reply)
    return struct.pack(">I", len(body)) + body


def decode_frame(data: bytes) -> Tuple[Message, bool]:
    """Decode one complete length-prefixed frame.

    The frame must be exactly one message — missing or trailing bytes
    raise :class:`CodecError` (stream readers should split on the length
    prefix first and hand whole bodies to :func:`decode_body`).
    """
    if len(data) < 4:
        raise CodecError("truncated frame: missing length prefix")
    (length,) = struct.unpack(">I", data[:4])
    if length > MAX_FRAME_BYTES:
        raise CodecError(
            f"frame length {length} exceeds MAX_FRAME_BYTES"
        )
    if len(data) - 4 != length:
        raise CodecError(
            f"frame length prefix says {length} byte(s), "
            f"got {len(data) - 4}"
        )
    return decode_body(data[4:])
