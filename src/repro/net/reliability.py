"""Transport-agnostic reliability: bounded retry with backoff, partial
multicast results, and the shared unreachable-peer vocabulary.

Before this module existed the retry loop lived inside
``InProcessTransport.request`` / ``gather``; the TCP transport needs the
identical recovery semantics (same attempt budget, same backoff draws,
same partial-failure shape), so the loop is hoisted here and both
transports drive it through a small wire-adapter surface:

``dispatch_attempt(dest, message, count)``
    Arm the reply path and put one attempt on the wire.  Returns True
    when the attempt was delivered, False when the fault layer is known
    to have dropped it (the driver then skips the real-clock wait), and
    raises :class:`TransportClosed` when the destination is gone.
``collect_reply(message, timeout_s)``
    Block up to ``timeout_s`` for the attempt's reply; None on timeout.
``reply_received(count)``
    Accounting hook: one reply arrived (``count=False`` for harness
    pings that stay off the wire totals).
``retry_attempt(message, backoff_s)``
    Build the re-sent attempt (fresh copy, later virtual arrival).
``next_backoff(retry_index)``
    Draw the next backoff from the policy (the transport owns the seeded
    RNG so instrumenting one transport never perturbs another).
``note_retry(backoff_s)`` / ``note_exhausted(count)``
    Counter hooks.

The drivers below reproduce the in-process loop *exactly* — attempt
ordering, one backoff draw per retry wave, shared per-wave gather
deadline — so hoisting them is counter-invisible (a regression test
pins the retry/exhausted totals under a seeded fault plan).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Tuple

from repro.faults.retry import RetryPolicy


class TransportClosed(Exception):
    """Raised when sending to a deregistered or unreachable node."""


@dataclass
class GatherResult:
    """Outcome of one multicast: what answered, what did not.

    A missing destination is *not* an error: callers degrade (fall back to
    a wider broadcast, proceed with partial coverage) instead of aborting.

    Attributes
    ----------
    replies:
        ``{dest: reply}`` for every destination that answered.
    missing:
        Destinations that never replied within the retry budget.
    unreachable:
        Destinations whose endpoint is gone (crashed / deregistered
        nodes in-process, connection-refused peers over TCP).
    """

    replies: Dict[int, object] = field(default_factory=dict)
    missing: Tuple[int, ...] = ()
    unreachable: Tuple[int, ...] = ()

    @property
    def complete(self) -> bool:
        return not self.missing and not self.unreachable

    def __len__(self) -> int:
        return len(self.replies)


def reliable_request(
    wire,
    policy: RetryPolicy,
    dest: int,
    message,
    timeout_s: float,
    count: bool = True,
):
    """Send one request with bounded retry; return the reply.

    Raises :class:`TimeoutError` once the attempt budget is exhausted and
    propagates :class:`TransportClosed` from the wire (a vanished
    destination is a different failure than a silent one).
    """
    attempt = message
    for index in range(policy.max_attempts):
        delivered = wire.dispatch_attempt(dest, attempt, count)
        reply = None
        if delivered:
            reply = wire.collect_reply(attempt, timeout_s)
        if reply is not None:
            wire.reply_received(count)
            return reply
        if index + 1 >= policy.max_attempts:
            break
        backoff = wire.next_backoff(index)
        wire.note_retry(backoff)
        attempt = wire.retry_attempt(attempt, backoff)
    wire.note_exhausted(1)
    raise TimeoutError(
        f"no reply from node {dest} for {message.kind.value} "
        f"(request {message.request_id}) after "
        f"{policy.max_attempts} attempt(s)"
    )


def reliable_gather(
    wire,
    policy: RetryPolicy,
    dests: Iterable[int],
    build_message: Callable[[int], object],
    timeout_s: float,
) -> GatherResult:
    """Multicast with per-wave shared deadline and bounded retry.

    All destinations of one attempt wave share a single deadline — the
    total real wait is bounded by ``timeout_s`` per wave, not
    ``len(dests) x timeout_s`` — and destinations that stay silent are
    retried with backoff.  Unreachable destinations (wire raised
    :class:`TransportClosed`) are reported, never raised.
    """
    replies: Dict[int, object] = {}
    unreachable: List[int] = []
    # dest -> (in-flight message, delivered?)
    pending: Dict[int, Tuple[object, bool]] = {}

    def dispatch(dest: int, message) -> None:
        try:
            delivered = wire.dispatch_attempt(dest, message, True)
        except TransportClosed:
            unreachable.append(dest)
            return
        pending[dest] = (message, delivered)

    for dest in dests:
        dispatch(dest, build_message(dest))

    for index in range(policy.max_attempts):
        # Collect this wave against one shared deadline.  Replies land
        # concurrently in per-dest reply paths, so draining them one by
        # one against the common deadline still bounds the total wait.
        deadline = time.monotonic() + timeout_s
        for dest in list(pending):
            message, delivered = pending[dest]
            if not delivered:
                continue  # known-dropped: no reply will ever come
            remaining = deadline - time.monotonic()
            reply = wire.collect_reply(message, max(0.0, remaining))
            if reply is None:
                continue
            replies[dest] = reply
            del pending[dest]
            wire.reply_received(True)
        if not pending or index + 1 >= policy.max_attempts:
            break
        backoff = wire.next_backoff(index)
        for dest in sorted(pending):
            message, _ = pending.pop(dest)
            wire.note_retry(backoff)
            dispatch(dest, wire.retry_attempt(message, backoff))

    if pending:
        wire.note_exhausted(len(pending))
    return GatherResult(
        replies=replies,
        missing=tuple(sorted(pending)),
        unreachable=tuple(sorted(unreachable)),
    )
