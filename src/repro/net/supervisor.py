"""Process supervisor: each MDS as a real OS process.

The supervisor owns the static :class:`~repro.net.tcp.PortMap`, launches
``python -m repro.net serve`` children wired to it, health-checks them
with PING over the real wire, and tears the fleet down (graceful STOP
first, SIGTERM/SIGKILL as the backstop).  Crash/restart testing reuses
the faults checkpoint machinery: a child started with ``--checkpoint``
resumes from a :func:`~repro.core.checkpoint.snapshot_server` document
instead of an empty store.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import repro
from repro.core.checkpoint import _CONFIG_FIELDS
from repro.core.config import GHBAConfig
from repro.net.reliability import TransportClosed
from repro.net.tcp import PortMap, TcpTransport
from repro.prototype.messages import Message, MessageKind

__all__ = ["ProcessSupervisor", "config_to_dict", "config_from_dict"]


def config_to_dict(config: GHBAConfig) -> Dict[str, object]:
    """The checkpoint module's config field set, as a JSON-able dict."""
    return {field: getattr(config, field) for field in _CONFIG_FIELDS}


def config_from_dict(data: Dict[str, object]) -> GHBAConfig:
    return GHBAConfig(**{field: data[field] for field in _CONFIG_FIELDS if field in data})


class ProcessSupervisor:
    """Launches and manages one MDS process per node id.

    Parameters
    ----------
    portmap:
        Endpoints for every node the fleet will contain.
    config:
        Shared G-HBA configuration, serialized to each child.
    workdir:
        Where child config/checkpoint files and logs are written.
    """

    def __init__(
        self,
        portmap: PortMap,
        config: GHBAConfig,
        workdir: os.PathLike,
    ) -> None:
        self.portmap = portmap
        self.config = config
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self._procs: Dict[int, subprocess.Popen] = {}
        self._logs: Dict[int, object] = {}
        config_path = self.workdir / "config.json"
        config_path.write_text(
            json.dumps(config_to_dict(config), indent=2, sort_keys=True)
        )
        self._config_path = config_path
        portmap_path = self.workdir / "portmap.json"
        portmap_path.write_text(portmap.to_json())
        self._portmap_path = portmap_path

    # ------------------------------------------------------------------
    # Environment for children
    # ------------------------------------------------------------------
    def _child_env(self) -> Dict[str, str]:
        env = dict(os.environ)
        src_root = str(Path(repro.__file__).resolve().parent.parent)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing else src_root + os.pathsep + existing
        )
        return env

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def launch_mds(
        self, node_id: int, checkpoint: Optional[dict] = None
    ) -> subprocess.Popen:
        """Start one ``repro.net serve`` process for ``node_id``."""
        if node_id in self._procs and self._procs[node_id].poll() is None:
            raise RuntimeError(f"node {node_id} is already running")
        argv = [
            sys.executable,
            "-m",
            "repro.net",
            "serve",
            "--node-id",
            str(node_id),
            "--portmap-file",
            str(self._portmap_path),
            "--config-file",
            str(self._config_path),
        ]
        if checkpoint is not None:
            checkpoint_path = self.workdir / f"checkpoint-{node_id}.json"
            checkpoint_path.write_text(json.dumps(checkpoint))
            argv += ["--checkpoint", str(checkpoint_path)]
        log = open(self.workdir / f"mds-{node_id}.log", "ab")
        self._logs[node_id] = log
        proc = subprocess.Popen(
            argv, env=self._child_env(), stdout=log, stderr=log
        )
        self._procs[node_id] = proc
        return proc

    def spawn_worker(self, argv: List[str], log_name: str) -> subprocess.Popen:
        """Start an auxiliary child (bench gateway worker) with stdout
        captured for the caller to parse."""
        log = open(self.workdir / log_name, "ab")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.net"] + argv,
            env=self._child_env(),
            stdout=subprocess.PIPE,
            stderr=log,
        )
        return proc

    def wait_ready(
        self,
        transport: TcpTransport,
        node_ids: List[int],
        timeout_s: float = 20.0,
    ) -> None:
        """Block until every node answers PING over the real wire."""
        deadline = time.monotonic() + timeout_s
        for node_id in node_ids:
            while True:
                proc = self._procs.get(node_id)
                if proc is not None and proc.poll() is not None:
                    raise RuntimeError(
                        f"mds {node_id} exited with {proc.returncode} "
                        f"before becoming ready (see mds-{node_id}.log)"
                    )
                try:
                    transport.request(
                        node_id,
                        Message(
                            kind=MessageKind.PING, sender=-1, payload={}
                        ),
                        timeout_s=0.5,
                        count=False,
                    )
                    break
                except (TimeoutError, TransportClosed):
                    if time.monotonic() > deadline:
                        raise RuntimeError(
                            f"mds {node_id} not ready within {timeout_s}s"
                        ) from None
                    time.sleep(0.05)

    def stop_mds(
        self,
        node_id: int,
        transport: Optional[TcpTransport] = None,
        timeout_s: float = 5.0,
    ) -> Optional[int]:
        """Graceful STOP over the wire, then terminate/kill."""
        proc = self._procs.get(node_id)
        if proc is None:
            return None
        if proc.poll() is None and transport is not None:
            try:
                transport.request(
                    node_id,
                    Message(kind=MessageKind.STOP, sender=-1, payload={}),
                    timeout_s=timeout_s,
                    count=False,
                )
            except Exception:
                pass
        try:
            proc.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:
            proc.terminate()
            try:
                proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        log = self._logs.pop(node_id, None)
        if log is not None:
            log.close()
        return proc.returncode

    def kill_mds(self, node_id: int) -> None:
        """Crash a node hard (SIGKILL) — the crash/restart harness."""
        proc = self._procs.get(node_id)
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait()

    def stop_all(self, transport: Optional[TcpTransport] = None) -> None:
        for node_id in list(self._procs):
            self.stop_mds(node_id, transport)
        for log in self._logs.values():
            log.close()
        self._logs.clear()

    def __enter__(self) -> "ProcessSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop_all()
