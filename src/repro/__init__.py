"""repro — a reproduction of G-HBA (ICDCS 2008).

Group-based Hierarchical Bloom filter Arrays for scalable and adaptive
metadata management in ultra large-scale file systems, after:

    Yu Hua, Yifeng Zhu, Hong Jiang, Dan Feng, Lei Tian.
    "Scalable and Adaptive Metadata Management in Ultra Large-scale File
    Systems."  ICDCS 2008 (UNL TR-UNL-CSE-2007-0025).

Quickstart::

    from repro import GHBACluster, GHBAConfig

    cluster = GHBACluster(num_servers=30, config=GHBAConfig(max_group_size=6))
    cluster.populate(f"/data/file{i}" for i in range(10_000))
    cluster.synchronize_replicas(force=True)
    result = cluster.query("/data/file42")
    print(result.home_id, result.level, result.latency_ms)

Packages
--------
- ``repro.bloom`` — Bloom filter substrate (filters, counting filters,
  algebra, arrays).
- ``repro.metadata`` — file metadata, namespace tree, tiered stores.
- ``repro.sim`` — discrete-event engine, network/memory models, metrics.
- ``repro.traces`` — synthetic HP/INS/RES-shaped workloads and TIF scaling.
- ``repro.core`` — the G-HBA scheme itself.
- ``repro.baselines`` — HBA, pure BFA, hash placement, static subtrees.
- ``repro.prototype`` — threaded message-passing prototype.
- ``repro.experiments`` — one module per paper table/figure.
"""

from repro.core import GHBAConfig, GHBACluster, QueryLevel, QueryResult

__version__ = "1.0.0"

__all__ = [
    "GHBAConfig",
    "GHBACluster",
    "QueryLevel",
    "QueryResult",
    "__version__",
]
