"""Unit tests for singleflight coalescing and home batching."""

import pytest

from repro.gateway.coalesce import CoalescedBatch, HomeBatcher, coalesce


class TestCoalesce:
    def test_distinct_keys_all_lead(self):
        flight = coalesce(["/a", "/b", "/c"])
        assert flight.leaders == ("/a", "/b", "/c")
        assert flight.coalesced == 0

    def test_duplicates_collapse_onto_leader(self):
        flight = coalesce(["/a", "/b", "/a", "/a", "/b"])
        assert flight.leaders == ("/a", "/b")
        assert flight.waiters["/a"] == [0, 2, 3]
        assert flight.waiters["/b"] == [1, 4]
        assert flight.coalesced == 3

    def test_leader_order_is_first_seen(self):
        flight = coalesce(["/z", "/a", "/z"])
        assert flight.leaders == ("/z", "/a")

    def test_empty_tick(self):
        flight = coalesce([])
        assert flight.leaders == ()
        assert flight.coalesced == 0


class TestHomeBatcher:
    def test_groups_by_home_in_first_seen_order(self):
        batcher = HomeBatcher(max_batch=16)
        batches, unroutable = batcher.plan(
            [("/a", 2), ("/b", 1), ("/c", 2), ("/d", 1)]
        )
        assert batches == [
            CoalescedBatch(home_id=2, paths=("/a", "/c")),
            CoalescedBatch(home_id=1, paths=("/b", "/d")),
        ]
        assert unroutable == []

    def test_unpredicted_paths_are_unroutable(self):
        batcher = HomeBatcher()
        batches, unroutable = batcher.plan([("/a", None), ("/b", 3)])
        assert unroutable == ["/a"]
        assert batches == [CoalescedBatch(home_id=3, paths=("/b",))]

    def test_oversized_groups_split(self):
        batcher = HomeBatcher(max_batch=2)
        batches, _ = batcher.plan([(f"/f{i}", 7) for i in range(5)])
        assert [b.paths for b in batches] == [
            ("/f0", "/f1"), ("/f2", "/f3"), ("/f4",)
        ]
        assert all(b.home_id == 7 for b in batches)

    def test_rejects_bad_max_batch(self):
        with pytest.raises(ValueError):
            HomeBatcher(max_batch=0)
