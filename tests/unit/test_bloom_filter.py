"""Unit tests for the standard Bloom filter."""

import pytest

from repro.bloom.bloom_filter import BloomFilter


class TestBasics:
    def test_no_false_negatives(self):
        bloom = BloomFilter(1024, 6)
        items = [f"/a/b/file{i}" for i in range(100)]
        bloom.update(items)
        assert all(item in bloom for item in items)

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(1024, 6)
        assert "/x" not in bloom

    def test_num_items_counts_adds(self):
        bloom = BloomFilter(256, 4)
        bloom.add("a")
        bloom.add("a")
        assert bloom.num_items == 2

    def test_clear(self):
        bloom = BloomFilter(256, 4)
        bloom.add("a")
        bloom.clear()
        assert "a" not in bloom
        assert bloom.num_items == 0
        assert bloom.fill_ratio() == 0.0

    def test_low_false_positive_rate_at_design_point(self):
        """At 16 bits/item the measured FPR must be well under 1%."""
        bloom = BloomFilter.with_capacity(500, bits_per_item=16.0)
        for i in range(500):
            bloom.add(f"member-{i}")
        false_hits = sum(
            1 for i in range(5_000) if bloom.query(f"nonmember-{i}")
        )
        assert false_hits / 5_000 < 0.01

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(BloomFilter(64, 2))


class TestConstructors:
    def test_with_capacity_uses_optimal_k(self):
        bloom = BloomFilter.with_capacity(100, bits_per_item=8.0)
        assert bloom.num_bits == 800
        assert bloom.num_hashes == 6  # round(8 ln 2)

    def test_with_capacity_rejects_bad_args(self):
        with pytest.raises(ValueError):
            BloomFilter.with_capacity(0)
        with pytest.raises(ValueError):
            BloomFilter.with_capacity(10, bits_per_item=0)

    def test_from_items(self):
        bloom = BloomFilter.from_items(["a", "b"], 256, 4)
        assert "a" in bloom and "b" in bloom
        assert bloom.num_items == 2


class TestCompatibilityAndEquality:
    def test_compatible_same_geometry(self):
        assert BloomFilter(256, 4, 1).is_compatible(BloomFilter(256, 4, 1))
        assert not BloomFilter(256, 4, 1).is_compatible(BloomFilter(256, 4, 2))
        assert not BloomFilter(256, 4).is_compatible(BloomFilter(128, 4))

    def test_equality_is_bitwise(self):
        a = BloomFilter(256, 4)
        b = BloomFilter(256, 4)
        a.add("x")
        assert a != b
        b.add("x")
        assert a == b

    def test_replica_answers_identically(self):
        """A copy must answer every query exactly like the original."""
        original = BloomFilter(512, 5, seed=3)
        original.update(f"item{i}" for i in range(50))
        replica = original.copy()
        for i in range(200):
            probe = f"probe{i}"
            assert original.query(probe) == replica.query(probe)

    def test_copy_is_independent(self):
        original = BloomFilter(256, 4)
        replica = original.copy()
        replica.add("later")
        assert "later" not in original


class TestEstimates:
    def test_estimated_fpr_grows_with_items(self):
        bloom = BloomFilter(512, 4)
        empty_estimate = bloom.estimated_fpr()
        bloom.update(str(i) for i in range(100))
        assert bloom.estimated_fpr() > empty_estimate

    def test_fill_ratio_close_to_expectation(self):
        bloom = BloomFilter(2048, 6)
        bloom.update(str(i) for i in range(200))
        import math

        expected = 1 - math.exp(-6 * 200 / 2048)
        assert bloom.fill_ratio() == pytest.approx(expected, rel=0.15)

    def test_size_bytes(self):
        assert BloomFilter(1024, 4).size_bytes() == 128
        assert BloomFilter(1000, 4).size_bytes() == 125


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        bloom = BloomFilter(777, 5, seed=-3)
        bloom.update(f"f{i}" for i in range(30))
        restored = BloomFilter.from_bytes(bloom.to_bytes())
        assert restored == bloom
        assert restored.num_items == 30
        assert restored.seed == -3
        assert all(restored.query(f"f{i}") for i in range(30))

    def test_truncated_payload_raises(self):
        with pytest.raises(ValueError):
            BloomFilter.from_bytes(b"short")
