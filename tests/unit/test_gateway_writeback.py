"""Unit tests for the write-back mutation buffer (ISSUE 5 tentpole).

Covers the buffer data structure in isolation (versioning, same-path
absorption, the cumulative-ack floor, boundary-aware prefix probes,
drain/requeue ordering) and the client's write-back semantics over a real
:class:`GHBACluster`: read-your-writes overlays, flush triggers, lease
version arbitration (conflicts never clobber), rename partial barriers
(including the ``/a/b`` vs ``/a/bc`` prefix trap), and explicit loss.
"""

import pytest

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.faults import FaultPlan, PlanFaultInjector
from repro.gateway import (
    GatewayConfig,
    MetadataClient,
    MutationBuffer,
    Outcome,
)
from repro.metadata.attributes import FileMetadata


def _config(seed=17):
    return GHBAConfig(
        max_group_size=4,
        expected_files_per_mds=200,
        lru_capacity=128,
        lru_filter_bits=1 << 10,
        seed=seed,
    )


def _cluster(num=6, seed=17, paths=(), faults=None):
    cluster = GHBACluster(num, _config(seed), seed=seed, faults=faults)
    if paths:
        cluster.populate(paths)
        cluster.synchronize_replicas(force=True)
    return cluster


def _client(cluster, **overrides):
    overrides.setdefault("rate_per_s", 1e6)
    overrides.setdefault("burst", 1e4)
    overrides.setdefault("lease_ttl_s", 30.0)
    overrides.setdefault("writeback", True)
    return MetadataClient(cluster, GatewayConfig(**overrides))


def _fleet_paths(cluster):
    return {
        meta.path
        for server in cluster.servers.values()
        for meta in server.store.records()
    }


class TestMutationBuffer:
    def test_versions_are_monotone_and_global(self):
        buffer = MutationBuffer()
        a = buffer.enqueue("create", "/a", 0, 0.0, record=None)
        b = buffer.enqueue("create", "/b", 1, 0.0, record=None)
        c = buffer.enqueue("delete", "/c", 0, 0.0)
        assert [a.version, b.version, c.version] == [1, 2, 3]

    def test_same_path_absorbs_keeping_earliest_base(self):
        buffer = MutationBuffer()
        first = buffer.enqueue(
            "create", "/a", 2, 1.0, record=None, base_version=7
        )
        second = buffer.enqueue("delete", "/a", 4, 9.0)
        assert len(buffer) == 1
        assert buffer.absorbed == 1
        # The replacement takes a fresh version but inherits the original
        # base, enqueue time and home (the backend never saw the
        # intermediate intent).
        assert second.version > first.version
        assert second.base_version == 7
        assert second.enqueued_at == 1.0
        assert second.home_id == 2
        # The absorbed version is settled: it will never be flushed.
        assert buffer.ack_floor == first.version

    def test_ack_floor_advances_through_dense_prefix_only(self):
        buffer = MutationBuffer()
        for path in ("/a", "/b", "/c"):
            buffer.enqueue("create", path, 0, 0.0, record=None)
        buffer.settle(3)
        assert buffer.ack_floor == 0  # hole at 1
        buffer.settle(1)
        assert buffer.ack_floor == 1  # hole at 2
        buffer.settle(2)
        assert buffer.ack_floor == 3

    def test_paths_under_is_boundary_aware(self):
        buffer = MutationBuffer()
        for path in ("/a/b", "/a/b/c", "/a/bc"):
            buffer.enqueue("create", path, 0, 0.0, record=None)
        assert sorted(buffer.paths_under("/a/b")) == ["/a/b", "/a/b/c"]

    def test_drain_home_returns_version_order(self):
        buffer = MutationBuffer()
        buffer.enqueue("create", "/x", 3, 0.0, record=None)
        buffer.enqueue("create", "/y", 3, 0.0, record=None)
        buffer.enqueue("create", "/x", 3, 0.0, record=None)  # absorbs v1
        drained = buffer.drain_home(3)
        assert [m.version for m in drained] == sorted(
            m.version for m in drained
        )
        assert not buffer
        assert buffer.pending_for(3) == 0

    def test_requeue_skips_superseded_paths(self):
        buffer = MutationBuffer()
        buffer.enqueue("create", "/x", 1, 0.0, record=None)
        drained = buffer.drain_home(1)
        # While the flush was in flight a newer intent arrived.
        newer = buffer.enqueue("delete", "/x", 1, 1.0)
        buffer.requeue(drained)
        assert buffer.get("/x") is newer

    def test_delete_of_pending_create_stays_at_create_home(self):
        buffer = MutationBuffer()
        buffer.enqueue("create", "/x", 5, 0.0, record=None)
        merged = buffer.enqueue("delete", "/x", 2, 1.0)
        assert merged.home_id == 5


class TestReadYourWrites:
    def test_buffered_create_answers_from_overlay(self):
        cluster = _cluster()
        client = _client(cluster)
        created = client.create("/wb/new", now=0.0)
        assert created.outcome is Outcome.BUFFERED
        assert created.from_overlay
        read = client.lookup("/wb/new", now=0.0)
        assert read.outcome is Outcome.OVERLAY
        assert read.from_overlay
        assert read.record is not None and read.record.path == "/wb/new"
        # Nothing reached the fleet yet.
        assert "/wb/new" not in _fleet_paths(cluster)

    def test_buffered_delete_answers_negative_from_overlay(self):
        paths = [f"/wb/f{i}" for i in range(40)]
        cluster = _cluster(paths=paths)
        client = _client(cluster)
        client.lookup(paths[0], now=0.0)  # lease carries home + version
        gone = client.delete(paths[0], now=0.0)
        assert gone.outcome is Outcome.BUFFERED
        read = client.lookup(paths[0], now=0.0)
        assert read.outcome is Outcome.OVERLAY
        assert read.record is None
        # The backend still has it until the flush.
        assert paths[0] in _fleet_paths(cluster)

    def test_rename_boundary_does_not_flush_sibling(self):
        """A pending ``/a/bc`` must survive a rename of ``/a/b``."""
        cluster = _cluster()
        client = _client(cluster)
        client.create("/a/b/child", now=0.0, home_id=0)
        client.create("/a/bc", now=0.0, home_id=1)
        client.rename("/a/b", "/a/moved", now=0.0)
        buffer = client.writeback
        # The subtree mutation flushed; the sibling is still pending.
        assert buffer.get("/a/b/child") is None
        assert buffer.get("/a/bc") is not None
        fleet = _fleet_paths(cluster)
        assert "/a/moved/child" in fleet
        assert "/a/bc" not in fleet  # still buffered
        client.flush_barrier(now=1.0)
        assert "/a/bc" in _fleet_paths(cluster)

    def test_rename_boundary_lookup_after_barrier(self):
        paths = ["/a/b", "/a/bc"]
        cluster = _cluster(paths=paths)
        client = _client(cluster)
        client.rename("/a/b", "/a/z", now=0.0)
        hit = client.lookup("/a/bc", now=0.0)
        assert hit.home_id == cluster.home_of("/a/bc")
        miss = client.lookup("/a/b", now=0.0)
        assert miss.home_id is None


class TestFlushEngine:
    def test_size_trigger_flushes_bucket(self):
        cluster = _cluster()
        client = _client(cluster, flush_max_pending=2, flush_age_s=1e9)
        client.create("/wb/a", now=0.0, home_id=0)
        assert "/wb/a" not in _fleet_paths(cluster)
        client.create("/wb/b", now=0.0, home_id=0)
        # Second enqueue tripped the size trigger: both applied in one
        # MUTATE_BATCH round trip.
        fleet = _fleet_paths(cluster)
        assert {"/wb/a", "/wb/b"} <= fleet
        assert client.backend_mutations == 1

    def test_age_trigger_flushes_on_later_traffic(self):
        cluster = _cluster()
        client = _client(cluster, flush_max_pending=100, flush_age_s=0.5)
        client.create("/wb/a", now=0.0, home_id=0)
        client.lookup("/elsewhere", now=0.1)
        assert "/wb/a" not in _fleet_paths(cluster)
        client.lookup("/elsewhere", now=0.9)  # pump past the age
        assert "/wb/a" in _fleet_paths(cluster)

    def test_barrier_flushes_everything_and_advances_floor(self):
        cluster = _cluster()
        client = _client(cluster, flush_max_pending=100, flush_age_s=1e9)
        for i in range(5):
            client.create(f"/wb/f{i}", now=0.0, home_id=i % 3)
        report = client.flush_barrier(now=0.0)
        assert len(report.acked) == 5
        assert not report.lost and not report.deferred
        assert client.writeback.ack_floor == 5
        assert {f"/wb/f{i}" for i in range(5)} <= _fleet_paths(cluster)

    def test_flush_installs_leases(self):
        cluster = _cluster()
        client = _client(cluster, flush_max_pending=100, flush_age_s=1e9)
        client.create("/wb/leased", now=0.0, home_id=2)
        client.flush_barrier(now=0.0)
        backend_before = client.backend_queries
        read = client.lookup("/wb/leased", now=0.1)
        assert read.from_cache
        assert client.backend_queries == backend_before


class TestVersionArbitration:
    def test_conflicting_flush_never_clobbers(self):
        """A buffered delete whose base version went stale loses the race
        and must leave the winner's state untouched."""
        paths = [f"/wb/f{i}" for i in range(40)]
        cluster = _cluster(paths=paths)
        client = _client(cluster, flush_max_pending=100, flush_age_s=1e9)
        victim = paths[0]
        client.lookup(victim, now=0.0)  # lease pins the base version
        client.delete(victim, now=0.0)  # parks with that base
        # A direct mutation wins the race while the delete is parked:
        # delete + recreate bumps the backend path version.
        home = cluster.delete_file(victim)
        cluster.insert_file(
            FileMetadata(path=victim, inode=999_999), home_id=home
        )
        winner_version = cluster.path_version(victim)
        report = client.flush_barrier(now=0.5)
        assert len(report.conflicts) == 1
        assert not report.acked
        # No clobber: the winner's record and version survived.
        assert victim in _fleet_paths(cluster)
        assert cluster.path_version(victim) == winner_version
        assert client._wb["conflicts"].value == 1.0

    def test_conflict_triggers_reread(self):
        paths = [f"/wb/f{i}" for i in range(40)]
        cluster = _cluster(paths=paths)
        client = _client(cluster, flush_max_pending=100, flush_age_s=1e9)
        victim = paths[3]
        client.lookup(victim, now=0.0)
        client.delete(victim, now=0.0)
        home = cluster.delete_file(victim)
        cluster.insert_file(
            FileMetadata(path=victim, inode=123_456), home_id=home
        )
        client.flush_barrier(now=0.5)
        # The losing gateway re-read and re-leased the winner's state.
        read = client.lookup(victim, now=0.6)
        assert read.from_cache
        assert read.record is not None and read.record.inode == 123_456


class TestExplicitLoss:
    def test_barrier_reports_unreachable_mutations_as_lost(self):
        injector = PlanFaultInjector(FaultPlan(seed=5))
        cluster = _cluster(faults=injector)
        client = _client(
            cluster,
            flush_max_pending=100,
            flush_age_s=1e9,
            flush_retry_limit=2,
        )
        client.create("/wb/doomed", now=0.0, home_id=1)
        injector.silence(1)
        report = client.flush_barrier(now=0.0)
        assert len(report.lost) == 1
        assert report.lost[0].path == "/wb/doomed"
        assert [m.path for m in client.lost_mutations] == ["/wb/doomed"]
        assert "/wb/doomed" not in _fleet_paths(cluster)

    def test_non_final_flush_defers_instead_of_losing(self):
        injector = PlanFaultInjector(FaultPlan(seed=5))
        cluster = _cluster(faults=injector)
        client = _client(
            cluster,
            flush_max_pending=2,
            flush_age_s=1e9,
            flush_retry_limit=1,
            flush_retry_backoff_s=0.2,
        )
        injector.silence(1)
        client.create("/wb/parked", now=0.0, home_id=1)
        client.create("/wb/parked2", now=0.0, home_id=1)  # size trigger
        assert client.writeback.get("/wb/parked") is not None
        assert not client.lost_mutations
        # Home recovers: the next trigger retries to ack.
        injector.restore(1)
        report = client.flush_barrier(now=1.0)
        assert len(report.acked) == 2
        assert {"/wb/parked", "/wb/parked2"} <= _fleet_paths(cluster)

    def test_backoff_throttles_flushes_to_silenced_home(self):
        injector = PlanFaultInjector(FaultPlan(seed=5))
        cluster = _cluster(faults=injector)
        client = _client(
            cluster,
            flush_max_pending=1,
            flush_age_s=1e9,
            flush_retry_limit=1,
            flush_retry_backoff_s=10.0,
        )
        injector.silence(1)
        client.create("/wb/slow", now=0.0, home_id=1)
        attempts = client.backend_mutations
        # Within the backoff window further traffic must not re-flush.
        client.lookup("/other", now=0.1)
        client.create("/wb/slow2", now=0.2, home_id=1)
        assert client.backend_mutations == attempts


class TestZeroOverheadDisabled:
    def test_write_through_client_has_no_buffer(self):
        cluster = _cluster()
        client = MetadataClient(
            cluster,
            GatewayConfig(rate_per_s=1e6, burst=1e4, writeback=False),
        )
        assert client.writeback is None
        created = client.create("/wt/direct", now=0.0)
        assert created.outcome is Outcome.SERVED
        assert "/wt/direct" in _fleet_paths(cluster)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GatewayConfig(writeback=True, flush_max_pending=0)
        with pytest.raises(ValueError):
            GatewayConfig(writeback=True, flush_age_s=0.0)
        with pytest.raises(ValueError):
            GatewayConfig(writeback=True, flush_retry_backoff_s=-1.0)
