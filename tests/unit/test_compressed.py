"""Unit tests for compressed Bloom filter transfer."""

import pytest

from repro.bloom.bloom_filter import BloomFilter
from repro.bloom.compressed import (
    binary_entropy,
    compress_filter,
    decompress_filter,
    entropy_bound_bytes,
    transfer_cost_report,
)


def sparse_filter(items=200, bits_per_item=16.0):
    bloom = BloomFilter.with_capacity(2_000, bits_per_item=bits_per_item)
    bloom.update(f"/c/f{i}" for i in range(items))
    return bloom


class TestRoundTrip:
    def test_lossless(self):
        bloom = sparse_filter()
        restored = decompress_filter(compress_filter(bloom))
        assert restored == bloom
        assert all(restored.query(f"/c/f{i}") for i in range(200))

    def test_empty_filter(self):
        bloom = BloomFilter(1024, 4)
        assert decompress_filter(compress_filter(bloom)) == bloom


class TestCompressionGains:
    def test_sparse_filter_compresses_well(self):
        """A lightly loaded 16-bit/file filter is mostly zeros."""
        report = transfer_cost_report(sparse_filter(items=200))
        assert report.fill_ratio < 0.1
        assert report.ratio < 0.5
        assert report.saved_bytes > 0

    def test_dense_filter_compresses_poorly(self):
        """Near half-full filters approach incompressibility."""
        bloom = BloomFilter(2_048, 6)
        bloom.update(f"/d/f{i}" for i in range(400))  # drives fill toward 0.5
        report = transfer_cost_report(bloom)
        assert report.fill_ratio > 0.4
        assert report.ratio > 0.7

    def test_compression_between_entropy_bound_and_raw(self):
        report = transfer_cost_report(sparse_filter(items=100))
        assert report.entropy_bound_bytes <= report.compressed_bytes
        assert report.compressed_bytes <= report.raw_bytes + 64

    def test_emptier_filters_compress_better(self):
        light = transfer_cost_report(sparse_filter(items=50))
        heavy = transfer_cost_report(sparse_filter(items=1_500))
        assert light.ratio < heavy.ratio


class TestEntropy:
    def test_binary_entropy_extremes(self):
        assert binary_entropy(0.0) == 0.0
        assert binary_entropy(1.0) == 0.0
        assert binary_entropy(0.5) == pytest.approx(1.0)

    def test_binary_entropy_symmetric(self):
        assert binary_entropy(0.2) == pytest.approx(binary_entropy(0.8))

    def test_entropy_bound_positive_for_nonempty(self):
        assert entropy_bound_bytes(sparse_filter(items=10)) > 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            binary_entropy(1.5)
