"""Unit tests for MetadataServer."""

import pytest

from repro.core.config import GHBAConfig
from repro.core.server import (
    CONSUMER_METADATA,
    CONSUMER_REPLICAS,
    MetadataServer,
)
from repro.metadata.attributes import FileMetadata


@pytest.fixture
def config():
    return GHBAConfig(
        expected_files_per_mds=256,
        lru_capacity=32,
        lru_filter_bits=256,
        seed=5,
    )


@pytest.fixture
def server(config):
    return MetadataServer(0, config)


def meta(path, inode=1):
    return FileMetadata(path=path, inode=inode)


class TestHomeMetadata:
    def test_insert_reflects_in_store_and_filter(self, server):
        server.insert_metadata(meta("/f"))
        assert server.has_metadata("/f")
        assert server.local_filter.query("/f")
        assert server.file_count == 1

    def test_verify_and_fetch_found(self, server):
        record = meta("/f")
        server.insert_metadata(record)
        assert server.verify_and_fetch("/f") == record

    def test_verify_and_fetch_filter_negative_short_circuits(self, server):
        """A negative filter answer must not touch the store."""
        before = server.store.stats.total_lookups
        assert server.verify_and_fetch("/absent") is None
        assert server.store.stats.total_lookups == before

    def test_remove_keeps_filter_bit_until_rebuild(self, server):
        server.insert_metadata(meta("/f"))
        assert server.remove_metadata("/f") is True
        assert not server.has_metadata("/f")
        # Plain Bloom filters cannot delete: the stale bit remains...
        assert server.local_filter.query("/f")
        # ...until the filter is rebuilt from the store.
        server.rebuild_local_filter()
        assert not server.local_filter.query("/f")

    def test_remove_missing_returns_false(self, server):
        assert server.remove_metadata("/ghost") is False

    def test_insert_many_counts_once(self, server):
        server.insert_many([meta(f"/f{i}", i) for i in range(10)])
        assert server.file_count == 10

    def test_reinsert_does_not_double_count_memory(self, server):
        server.insert_metadata(meta("/f"))
        bytes_before = server.memory.consumer_bytes(CONSUMER_METADATA)
        server.insert_metadata(meta("/f"))
        assert server.memory.consumer_bytes(CONSUMER_METADATA) == bytes_before


class TestReplicaHosting:
    def test_host_and_drop(self, server, config):
        other = MetadataServer(1, config)
        other.insert_metadata(meta("/on-other"))
        server.host_replica(1, other.publish_filter())
        assert server.theta == 1
        assert server.probe_segment("/on-other").unique_hit == 1
        server.drop_replica(1)
        assert server.theta == 0

    def test_probe_segment_includes_own_filter(self, server):
        server.insert_metadata(meta("/local"))
        lookup = server.probe_segment("/local")
        assert lookup.unique_hit == 0  # the server's own ID

    def test_replace_replica_changes_answers(self, server, config):
        other = MetadataServer(1, config)
        server.host_replica(1, other.publish_filter())
        other.insert_metadata(meta("/new-file"))
        assert not server.probe_segment("/new-file").hits
        server.replace_replica(1, other.publish_filter())
        assert server.probe_segment("/new-file").unique_hit == 1

    def test_memory_accounting_tracks_replicas(self, server, config):
        before = server.memory.consumer_bytes(CONSUMER_REPLICAS)
        server.host_replica(1, MetadataServer(1, config).publish_filter())
        assert server.memory.consumer_bytes(CONSUMER_REPLICAS) > before


class TestLRU:
    def test_record_and_probe(self, server):
        server.record_lru("/hot", 7)
        assert server.probe_lru("/hot").unique_hit == 7

    def test_probe_miss_for_cold(self, server):
        assert server.probe_lru("/cold").is_miss


class TestPublication:
    def test_publish_snapshots(self, server):
        server.insert_metadata(meta("/f"))
        replica = server.publish_filter()
        assert replica.query("/f")
        assert server.staleness_bits() == 0

    def test_staleness_grows_with_unpublished_inserts(self, server):
        server.publish_filter()
        server.insert_metadata(meta("/new1"))
        server.insert_metadata(meta("/new2"))
        assert server.staleness_bits() > 0

    def test_published_replica_is_independent(self, server):
        replica = server.publish_filter()
        server.insert_metadata(meta("/after"))
        assert not replica.query("/after")

    def test_rejects_negative_id(self, config):
        with pytest.raises(ValueError):
            MetadataServer(-1, config)
