"""Unit tests for gateway admission control (repro.gateway.admission)."""

import random

import pytest

from repro.gateway.adaptive import AdaptiveController, ControllerConfig
from repro.gateway.admission import (
    DEFAULT_TENANT,
    SHED_DEADLINE,
    AdmissionController,
    FairAdmissionController,
    TokenBucket,
)


class TestTokenBucket:
    def test_starts_full_and_refills(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=5.0)
        assert bucket.tokens(0.0) == 5.0
        for _ in range(5):
            assert bucket.take(0.0)
        assert not bucket.take(0.0)
        assert bucket.take(0.1)  # one token refilled

    def test_burst_caps_refill(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=5.0)
        for _ in range(5):
            bucket.take(0.0)
        assert bucket.tokens(100.0) == 5.0

    def test_clock_never_runs_backwards(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=2.0)
        bucket.take(1.0)
        before = bucket.tokens(1.0)
        assert bucket.tokens(0.5) == before  # stale timestamp is a no-op

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=0.0, burst=5.0)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=1.0, burst=0.5)


class TestAdmissionController:
    def _controller(self, **kwargs):
        defaults = dict(
            rate_per_s=10.0, burst=2.0, queue_capacity=3, queue_deadline_s=1.0
        )
        defaults.update(kwargs)
        return AdmissionController(**defaults)

    def test_admits_within_burst(self):
        ctl = self._controller()
        admitted, shed = ctl.submit_many(["a", "b"], 0.0)
        assert admitted == ["a", "b"] and shed == []

    def test_overflow_queues_then_sheds_explicitly(self):
        ctl = self._controller()
        admitted, shed = ctl.submit_many(list("abcdefg"), 0.0)
        assert admitted == ["a", "b"]          # burst
        assert ctl.queued_items() == ["c", "d", "e"]  # queue capacity 3
        assert shed == ["f", "g"]              # explicit, never silent
        assert ctl.stats.shed_full == 2

    def test_pump_drains_queue_as_tokens_refill(self):
        ctl = self._controller()
        ctl.submit_many(list("abcde"), 0.0)
        admitted, shed = ctl.pump(0.2)  # 2 tokens refilled
        assert admitted == ["c", "d"] and shed == []
        assert ctl.queue_depth == 1

    def test_deadline_sheds_stale_queue_entries(self):
        ctl = self._controller()
        ctl.submit_many(list("abcde"), 0.0)
        admitted, shed = ctl.pump(1.5)  # deadline 1.0 passed for c,d,e
        assert shed == ["c", "d", "e"]
        assert admitted == []
        assert ctl.stats.shed_deadline == 3

    def test_fifo_fairness_queue_before_fresh(self):
        ctl = self._controller()
        ctl.submit_many(list("abcd"), 0.0)  # a,b admitted; c,d queued
        admitted, _ = ctl.submit_many(["e"], 0.2)  # 2 tokens refilled
        # The queued c (older) wins both refilled tokens' first slot;
        # the fresh e falls behind d in the queue.
        assert admitted[:2] == ["c", "d"]
        assert ctl.queued_items() == ["e"]

    def test_reconciliation_invariant(self):
        ctl = self._controller()
        for tick in range(20):
            ctl.submit_many([f"p{tick}.{i}" for i in range(4)], tick * 0.05)
        ctl.pump(10.0)
        stats = ctl.stats
        assert stats.admitted + stats.shed + ctl.queue_depth == stats.submitted
        assert ctl.queue_depth == 0  # everything drained or dead by now

    def test_zero_capacity_queue_sheds_immediately(self):
        ctl = self._controller(queue_capacity=0)
        _, shed = ctl.submit_many(list("abc"), 0.0)
        assert shed == ["c"]
        assert ctl.stats.queued == 0


class TestFairAdmissionController:
    def _controller(self, **kwargs):
        defaults = dict(
            rate_per_s=10.0, burst=2.0, queue_capacity=3, queue_deadline_s=1.0
        )
        defaults.update(kwargs)
        return FairAdmissionController(**defaults)

    def test_unknown_tenant_gets_default_weight(self):
        ctl = self._controller(
            weights={"vip": 4.0}, default_weight=1.5
        )
        # A tenant first seen mid-run is a first-class citizen.
        result = ctl.submit_tick([("nobody", "p")], 0.0)
        assert result.admitted == [("nobody", "p")]
        assert ctl.weight_of("nobody") == 1.5
        assert ctl.weight_of("vip") == 4.0
        assert ctl.weight_of("never-seen") == 1.5

    def test_zero_weight_rejected(self):
        ctl = self._controller()
        with pytest.raises(ValueError):
            ctl.set_weight("t", 0.0)
        with pytest.raises(ValueError):
            ctl.set_weight("t", -1.0)
        with pytest.raises(ValueError):
            FairAdmissionController(
                rate_per_s=10.0, burst=2.0, weights={"t": 0.0}
            )
        with pytest.raises(ValueError):
            FairAdmissionController(
                rate_per_s=10.0, burst=2.0, default_weight=0.0
            )

    def test_deadline_queue_ordering_across_tenants(self):
        """Queued entries drain in global enqueue order across tenants,
        and deadline sheds carry the explicit cause per tenant."""
        ctl = self._controller(queue_capacity=4)
        # Burst 2: a1, b1 admitted; the rest queue interleaved.
        result = ctl.submit_tick(
            [("a", "a1"), ("b", "b1"), ("a", "a2"), ("b", "b2"),
             ("a", "a3"), ("b", "b3")],
            0.0,
        )
        assert result.admitted == [("a", "a1"), ("b", "b1")]
        assert ctl.queued_items() == ["a2", "b2", "a3", "b3"]
        # Two refilled tokens drain the two globally-oldest entries —
        # one per tenant, not two from whichever tenant sorts first.
        drained = ctl.pump(0.2)
        assert drained.admitted == [("a", "a2"), ("b", "b2")]
        # Past the deadline, the stragglers shed with the explicit cause.
        expired = ctl.pump(1.5)
        assert sorted(expired.shed) == [
            ("a", "a3", SHED_DEADLINE),
            ("b", "b3", SHED_DEADLINE),
        ]
        assert ctl.tenant_stats("a").shed_deadline == 1
        assert ctl.tenant_stats("b").shed_deadline == 1
        assert ctl.queue_depth == 0

    def test_single_tenant_matches_legacy_controller(self):
        """With one tenant the fair controller is bit-identical to the
        legacy global bucket — the golden-counter compatibility bar."""
        legacy = AdmissionController(
            rate_per_s=10.0, burst=2.0, queue_capacity=3,
            queue_deadline_s=1.0,
        )
        fair = self._controller()
        rng = random.Random(11)
        now = 0.0
        for tick in range(200):
            now += rng.random() * 0.2
            items = [f"p{tick}.{i}" for i in range(rng.randrange(0, 5))]
            admitted, shed = legacy.submit_many(list(items), now)
            result = fair.submit_tick(
                [(DEFAULT_TENANT, item) for item in items], now
            )
            assert [item for _, item in result.admitted] == admitted
            assert sorted(item for _, item, _ in result.shed) == sorted(
                shed
            )
        assert (
            legacy.stats.submitted,
            legacy.stats.admitted,
            legacy.stats.queued,
            legacy.stats.shed_full,
            legacy.stats.shed_deadline,
        ) == (
            fair.stats.submitted,
            fair.stats.admitted,
            fair.stats.queued,
            fair.stats.shed_full,
            fair.stats.shed_deadline,
        )
        assert legacy.queued_items() == fair.queued_items()

    def test_backlogged_tenant_cannot_crowd_out_another(self):
        """Per-tenant queues: one tenant's backlog fills its own queue
        only; a late-arriving quiet tenant still queues and drains."""
        ctl = self._controller(queue_capacity=2)
        result = ctl.submit_tick(
            [("noisy", f"n{i}") for i in range(8)], 0.0
        )
        assert len(result.admitted) == 2  # burst
        assert ctl.queue_depth_of("noisy") == 2
        assert len(result.shed) == 4  # noisy's own overflow
        late = ctl.submit_tick([("quiet", "q1")], 0.001)
        assert not late.shed  # the quiet tenant queues despite the flood
        assert ctl.queue_depth_of("quiet") == 1


class TestAdaptiveHysteresis:
    def _controller(self, initial=100.0, **kwargs):
        defaults = dict(
            minimum=10.0,
            maximum=1000.0,
            max_step_frac=0.25,
            deadband_frac=0.2,
            cooldown_s=1.0,
        )
        defaults.update(kwargs)
        return AdaptiveController(
            initial=initial, config=ControllerConfig(**defaults)
        )

    def test_constant_load_never_oscillates(self):
        """On constant input the controller converges monotonically and
        then stops: no step ever reverses direction, and once inside the
        deadband the value is frozen — thresholds cannot flap."""
        ctl = self._controller(initial=50.0)
        target = 400.0
        values = [ctl.value]
        for step in range(1, 60):
            values.append(ctl.update(target, float(step) * 2.0))
        deltas = [b - a for a, b in zip(values, values[1:]) if b != a]
        assert deltas, "controller never moved toward the target"
        assert all(d > 0 for d in deltas)  # monotone: no direction flip
        # Converged: the tail is constant and inside the deadband.
        tail = values[-10:]
        assert len(set(tail)) == 1
        assert abs(target - tail[-1]) <= 0.2 * tail[-1]
        # And stays frozen under continued constant load.
        settled = tail[-1]
        for step in range(60, 80):
            assert ctl.update(target, float(step) * 2.0) == settled

    def test_deadband_ignores_small_wobble(self):
        """Input wobbling inside the deadband never moves the value."""
        ctl = self._controller(initial=100.0)
        rng = random.Random(3)
        for step in range(1, 40):
            wobble = 100.0 * (1.0 + (rng.random() - 0.5) * 0.3)
            ctl.update(wobble, float(step) * 2.0)
            assert ctl.value == 100.0

    def test_step_size_is_bounded(self):
        """A huge target error moves at most max_step_frac per update."""
        ctl = self._controller(initial=100.0)
        ctl.update(1000.0, 2.0)
        assert ctl.value == 125.0  # 100 * (1 + 0.25)

    def test_cooldown_rate_limits_steps(self):
        ctl = self._controller(initial=100.0, cooldown_s=5.0)
        assert ctl.update(1000.0, 1.0) == 125.0
        assert ctl.update(1000.0, 2.0) == 125.0  # inside cooldown
        assert ctl.update(1000.0, 6.5) > 125.0

    def test_clamped_to_bounds(self):
        """Targets beyond the bounds are clamped before chasing: the
        value settles inside the deadband of the bound, never past it."""
        ctl = self._controller(initial=20.0, minimum=10.0, maximum=30.0)
        for step in range(1, 30):
            ctl.update(1e9, float(step) * 2.0)
        assert ctl.value <= 30.0
        assert abs(30.0 - ctl.value) <= 0.2 * ctl.value  # deadband rest
        for step in range(30, 80):
            ctl.update(0.0, float(step) * 2.0)
        assert ctl.value >= 10.0
        assert abs(ctl.value - 10.0) <= 0.2 * ctl.value
