"""Unit tests for gateway admission control (repro.gateway.admission)."""

import pytest

from repro.gateway.admission import AdmissionController, TokenBucket


class TestTokenBucket:
    def test_starts_full_and_refills(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=5.0)
        assert bucket.tokens(0.0) == 5.0
        for _ in range(5):
            assert bucket.take(0.0)
        assert not bucket.take(0.0)
        assert bucket.take(0.1)  # one token refilled

    def test_burst_caps_refill(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=5.0)
        for _ in range(5):
            bucket.take(0.0)
        assert bucket.tokens(100.0) == 5.0

    def test_clock_never_runs_backwards(self):
        bucket = TokenBucket(rate_per_s=10.0, burst=2.0)
        bucket.take(1.0)
        before = bucket.tokens(1.0)
        assert bucket.tokens(0.5) == before  # stale timestamp is a no-op

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=0.0, burst=5.0)
        with pytest.raises(ValueError):
            TokenBucket(rate_per_s=1.0, burst=0.5)


class TestAdmissionController:
    def _controller(self, **kwargs):
        defaults = dict(
            rate_per_s=10.0, burst=2.0, queue_capacity=3, queue_deadline_s=1.0
        )
        defaults.update(kwargs)
        return AdmissionController(**defaults)

    def test_admits_within_burst(self):
        ctl = self._controller()
        admitted, shed = ctl.submit_many(["a", "b"], 0.0)
        assert admitted == ["a", "b"] and shed == []

    def test_overflow_queues_then_sheds_explicitly(self):
        ctl = self._controller()
        admitted, shed = ctl.submit_many(list("abcdefg"), 0.0)
        assert admitted == ["a", "b"]          # burst
        assert ctl.queued_items() == ["c", "d", "e"]  # queue capacity 3
        assert shed == ["f", "g"]              # explicit, never silent
        assert ctl.stats.shed_full == 2

    def test_pump_drains_queue_as_tokens_refill(self):
        ctl = self._controller()
        ctl.submit_many(list("abcde"), 0.0)
        admitted, shed = ctl.pump(0.2)  # 2 tokens refilled
        assert admitted == ["c", "d"] and shed == []
        assert ctl.queue_depth == 1

    def test_deadline_sheds_stale_queue_entries(self):
        ctl = self._controller()
        ctl.submit_many(list("abcde"), 0.0)
        admitted, shed = ctl.pump(1.5)  # deadline 1.0 passed for c,d,e
        assert shed == ["c", "d", "e"]
        assert admitted == []
        assert ctl.stats.shed_deadline == 3

    def test_fifo_fairness_queue_before_fresh(self):
        ctl = self._controller()
        ctl.submit_many(list("abcd"), 0.0)  # a,b admitted; c,d queued
        admitted, _ = ctl.submit_many(["e"], 0.2)  # 2 tokens refilled
        # The queued c (older) wins both refilled tokens' first slot;
        # the fresh e falls behind d in the queue.
        assert admitted[:2] == ["c", "d"]
        assert ctl.queued_items() == ["e"]

    def test_reconciliation_invariant(self):
        ctl = self._controller()
        for tick in range(20):
            ctl.submit_many([f"p{tick}.{i}" for i in range(4)], tick * 0.05)
        ctl.pump(10.0)
        stats = ctl.stats
        assert stats.admitted + stats.shed + ctl.queue_depth == stats.submitted
        assert ctl.queue_depth == 0  # everything drained or dead by now

    def test_zero_capacity_queue_sheds_immediately(self):
        ctl = self._controller(queue_capacity=0)
        _, shed = ctl.submit_many(list("abc"), 0.0)
        assert shed == ["c"]
        assert ctl.stats.queued == 0
