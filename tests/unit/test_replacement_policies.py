"""Unit tests for the L1 replacement-policy extension (paper §7)."""

import pytest

from repro.bloom.arrays import LRUBloomFilterArray, REPLACEMENT_POLICIES
from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig


def make(policy, capacity=3):
    return LRUBloomFilterArray(
        capacity, filter_bits=1024, num_hashes=4, policy=policy
    )


class TestPolicyValidation:
    def test_known_policies(self):
        assert set(REPLACEMENT_POLICIES) == {"lru", "fifo", "lfu"}
        for policy in REPLACEMENT_POLICIES:
            assert make(policy).policy == policy

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make("mru")

    def test_config_plumbs_policy(self):
        config = GHBAConfig(lru_policy="lfu", lru_capacity=8)
        cluster = GHBACluster(2, config)
        assert cluster.servers[0].lru.policy == "lfu"

    def test_config_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            GHBAConfig(lru_policy="random")


class TestLRUSemantics:
    def test_reuse_protects_entry(self):
        lru = make("lru")
        lru.record("/a", 1)
        lru.record("/b", 1)
        lru.record("/c", 1)
        lru.record("/a", 1)  # refresh
        lru.record("/d", 1)  # evicts /b (oldest unrefreshed)
        assert lru.peek("/a") == 1
        assert lru.peek("/b") is None


class TestFIFOSemantics:
    def test_reuse_does_not_protect_entry(self):
        fifo = make("fifo")
        fifo.record("/a", 1)
        fifo.record("/b", 1)
        fifo.record("/c", 1)
        fifo.record("/a", 1)  # no refresh under FIFO
        fifo.record("/d", 1)  # evicts /a (first in)
        assert fifo.peek("/a") is None
        assert fifo.peek("/b") == 1

    def test_home_change_updates_mapping(self):
        fifo = make("fifo")
        fifo.record("/a", 1)
        fifo.record("/a", 2)
        assert fifo.peek("/a") == 2
        assert fifo.query("/a").hits == (2,)

    def test_touch_is_noop(self):
        fifo = make("fifo", capacity=2)
        fifo.record("/a", 1)
        fifo.record("/b", 1)
        fifo.touch("/a")
        fifo.record("/c", 1)  # still evicts /a
        assert fifo.peek("/a") is None


class TestLFUSemantics:
    def test_frequent_entry_survives(self):
        lfu = make("lfu")
        for _ in range(5):
            lfu.record("/hot", 1)
        lfu.record("/cold1", 1)
        lfu.record("/cold2", 1)
        lfu.record("/new", 1)  # first sighting: rejected (tie with colds)
        assert lfu.peek("/hot") == 1
        assert lfu.peek("/new") is None
        lfu.record("/new", 1)  # second sighting: displaces a cold entry
        assert lfu.peek("/new") == 1
        assert lfu.peek("/hot") == 1

    def test_touch_counts_as_use(self):
        lfu = make("lfu", capacity=2)
        lfu.record("/a", 1)
        lfu.record("/b", 1)
        lfu.touch("/a")          # /a: 2 uses, /b: 1
        lfu.record("/c", 1)      # tie with /b -> newest (/c) rejected
        assert lfu.peek("/c") is None
        lfu.record("/c", 1)      # ghost count makes /c: 2 > /b: 1
        assert lfu.peek("/a") == 1
        assert lfu.peek("/c") == 1
        assert lfu.peek("/b") is None

    def test_one_hit_wonder_not_admitted(self):
        """An LFU cache full of used entries rejects a single-use newcomer."""
        lfu = make("lfu", capacity=2)
        lfu.record("/a", 1)
        lfu.record("/b", 1)
        lfu.touch("/a")
        lfu.touch("/b")
        lfu.record("/scan", 1)
        assert lfu.peek("/scan") is None
        assert lfu.peek("/a") == 1 and lfu.peek("/b") == 1

    def test_eviction_clears_filter_bits(self):
        lfu = make("lfu", capacity=1)
        lfu.record("/a", 1)
        lfu.record("/b", 1)      # rejected (tie, newest)
        lfu.record("/b", 1)      # admitted (ghost count 2 beats /a's 1)
        assert not lfu.query("/a").hits
        assert lfu.query("/b").hits == (1,)


class TestPoliciesUnderSkew:
    def test_lfu_beats_fifo_on_skewed_stream(self):
        """With a hot set plus a scan, frequency-aware eviction wins."""
        hit_rates = {}
        for policy in ("fifo", "lfu"):
            cache = make(policy, capacity=10)
            hits = total = 0
            for round_index in range(40):
                # Hot items, repeatedly.
                for h in range(8):
                    item = f"/hot{h}"
                    if cache.peek(item) is not None:
                        hits += 1
                    total += 1
                    cache.record(item, 1)
                # A cold scan that pollutes the cache.
                for c in range(4):
                    cache.record(f"/scan{round_index}_{c}", 1)
            hit_rates[policy] = hits / total
        assert hit_rates["lfu"] > hit_rates["fifo"]
