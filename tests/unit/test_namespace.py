"""Unit tests for the hierarchical namespace."""

import pytest

from repro.metadata.namespace import (
    AlreadyExists,
    DirectoryNotEmpty,
    Namespace,
    NamespaceError,
    NotADirectory,
    PathNotFound,
    ancestor_paths,
    normalize_path,
    path_components,
)


class TestPathHelpers:
    def test_normalize(self):
        assert normalize_path("/a//b/") == "/a/b"
        assert normalize_path("/") == "/"

    def test_normalize_rejects_relative_and_dots(self):
        with pytest.raises(ValueError):
            normalize_path("a/b")
        with pytest.raises(ValueError):
            normalize_path("/a/../b")
        with pytest.raises(ValueError):
            normalize_path("/a/./b")

    def test_components(self):
        assert path_components("/a/b/c") == ["a", "b", "c"]
        assert path_components("/") == []

    def test_ancestors(self):
        assert ancestor_paths("/a/b/c") == ["/", "/a", "/a/b"]
        assert ancestor_paths("/top") == ["/"]


class TestCreation:
    def test_create_file_under_root(self):
        ns = Namespace()
        meta = ns.create_file("/hello.txt", size=10)
        assert ns.stat("/hello.txt") == meta
        assert len(ns) == 2  # root + file

    def test_create_requires_parent(self):
        ns = Namespace()
        with pytest.raises(PathNotFound):
            ns.create_file("/missing/file")

    def test_create_rejects_duplicates(self):
        ns = Namespace()
        ns.create_file("/f")
        with pytest.raises(AlreadyExists):
            ns.create_file("/f")

    def test_create_under_file_rejected(self):
        ns = Namespace()
        ns.create_file("/f")
        with pytest.raises(NotADirectory):
            ns.create_file("/f/child")

    def test_makedirs(self):
        ns = Namespace()
        ns.makedirs("/a/b/c")
        assert ns.stat("/a/b/c").is_directory
        assert ns.stat("/a").is_directory

    def test_makedirs_idempotent(self):
        ns = Namespace()
        ns.makedirs("/a/b")
        ns.makedirs("/a/b")
        assert len(ns) == 3

    def test_makedirs_through_file_rejected(self):
        ns = Namespace()
        ns.create_file("/f")
        with pytest.raises(NotADirectory):
            ns.makedirs("/f/sub")

    def test_ensure_file_creates_ancestors(self):
        ns = Namespace()
        meta = ns.ensure_file("/deep/tree/file.c")
        assert meta.path == "/deep/tree/file.c"
        assert ns.stat("/deep/tree").is_directory

    def test_inodes_unique_and_increasing(self):
        ns = Namespace()
        a = ns.create_file("/a")
        b = ns.create_file("/b")
        assert a.inode != b.inode


class TestListingAndWalk:
    def test_list_directory_sorted(self):
        ns = Namespace()
        ns.makedirs("/d")
        ns.create_file("/d/zeta")
        ns.create_file("/d/alpha")
        assert ns.list_directory("/d") == ["alpha", "zeta"]

    def test_list_file_raises(self):
        ns = Namespace()
        ns.create_file("/f")
        with pytest.raises(NotADirectory):
            ns.list_directory("/f")

    def test_walk_yields_whole_subtree(self):
        ns = Namespace()
        ns.ensure_file("/a/b/f1")
        ns.ensure_file("/a/c/f2")
        paths = {meta.path for meta in ns.walk("/a")}
        assert paths == {"/a", "/a/b", "/a/b/f1", "/a/c", "/a/c/f2"}

    def test_files_yields_only_regular(self):
        ns = Namespace()
        ns.ensure_file("/a/f")
        assert {m.path for m in ns.files()} == {"/a/f"}


class TestRemoval:
    def test_remove_file(self):
        ns = Namespace()
        ns.create_file("/f")
        assert ns.remove("/f") == 1
        assert not ns.exists("/f")

    def test_remove_nonempty_dir_needs_recursive(self):
        ns = Namespace()
        ns.ensure_file("/d/f")
        with pytest.raises(DirectoryNotEmpty):
            ns.remove("/d")
        assert ns.remove("/d", recursive=True) == 2
        assert not ns.exists("/d")

    def test_remove_root_rejected(self):
        with pytest.raises(NamespaceError):
            Namespace().remove("/")

    def test_remove_missing_raises(self):
        with pytest.raises(PathNotFound):
            Namespace().remove("/ghost")

    def test_count_tracks_removal(self):
        ns = Namespace()
        ns.ensure_file("/a/b/c")
        before = len(ns)
        ns.remove("/a", recursive=True)
        assert len(ns) == before - 3


class TestRename:
    def test_rename_file(self):
        ns = Namespace()
        ns.create_file("/old")
        assert ns.rename("/old", "/new") == 1
        assert ns.exists("/new") and not ns.exists("/old")

    def test_rename_updates_descendant_paths(self):
        """The operation that makes pathname hashing expensive."""
        ns = Namespace()
        ns.ensure_file("/proj/src/a.c")
        ns.ensure_file("/proj/src/b.c")
        moved = ns.rename("/proj", "/archive")
        assert moved == 4  # /proj, /proj/src, a.c, b.c
        assert ns.stat("/archive/src/a.c").path == "/archive/src/a.c"
        assert not ns.exists("/proj")

    def test_rename_into_own_subtree_rejected(self):
        ns = Namespace()
        ns.makedirs("/a/b")
        with pytest.raises(NamespaceError):
            ns.rename("/a", "/a/b/c")

    def test_rename_over_existing_rejected(self):
        ns = Namespace()
        ns.create_file("/a")
        ns.create_file("/b")
        with pytest.raises(AlreadyExists):
            ns.rename("/a", "/b")

    def test_rename_preserves_inode(self):
        ns = Namespace()
        original = ns.create_file("/a")
        ns.rename("/a", "/b")
        assert ns.stat("/b").inode == original.inode

    def test_rename_to_same_path_is_noop(self):
        ns = Namespace()
        ns.create_file("/a")
        assert ns.rename("/a", "/a") == 0

    def test_rename_root_rejected(self):
        with pytest.raises(NamespaceError):
            Namespace().rename("/", "/x")


class TestSymlinks:
    def test_create_and_readlink(self):
        ns = Namespace()
        ns.create_file("/target")
        ns.create_symlink("/link", "/target")
        assert ns.readlink("/link") == "/target"
        assert ns.stat("/link").is_symlink

    def test_resolve_follows_link(self):
        ns = Namespace()
        meta = ns.create_file("/real")
        ns.create_symlink("/alias", "/real")
        assert ns.resolve("/alias") == meta

    def test_resolve_follows_chain(self):
        ns = Namespace()
        meta = ns.create_file("/end")
        ns.create_symlink("/hop1", "/end")
        ns.create_symlink("/hop2", "/hop1")
        assert ns.resolve("/hop2") == meta

    def test_resolve_plain_file_is_identity(self):
        ns = Namespace()
        meta = ns.create_file("/plain")
        assert ns.resolve("/plain") == meta

    def test_dangling_link_raises_not_found(self):
        from repro.metadata.namespace import PathNotFound

        ns = Namespace()
        ns.create_symlink("/dangling", "/nowhere")
        with pytest.raises(PathNotFound):
            ns.resolve("/dangling")

    def test_symlink_loop_detected(self):
        from repro.metadata.namespace import SymlinkLoop

        ns = Namespace()
        ns.create_symlink("/a-loop", "/b-loop")
        ns.create_symlink("/b-loop", "/a-loop")
        with pytest.raises(SymlinkLoop):
            ns.resolve("/a-loop")

    def test_readlink_on_file_rejected(self):
        ns = Namespace()
        ns.create_file("/f")
        with pytest.raises(NamespaceError):
            ns.readlink("/f")

    def test_symlink_metadata_validation(self):
        from repro.metadata.attributes import FileKind, FileMetadata

        with pytest.raises(ValueError):
            FileMetadata(path="/s", inode=1, kind=FileKind.SYMLINK)
        with pytest.raises(ValueError):
            FileMetadata(path="/f", inode=1, symlink_target="/x")


class TestUpdate:
    def test_update_replaces_record(self):
        ns = Namespace()
        meta = ns.create_file("/f")
        ns.update("/f", meta.resized(42, now=1.0))
        assert ns.stat("/f").size == 42

    def test_update_path_mismatch_rejected(self):
        ns = Namespace()
        meta = ns.create_file("/f")
        with pytest.raises(ValueError):
            ns.update("/f", meta.renamed("/other"))

    def test_total_size_bytes_positive(self):
        ns = Namespace()
        ns.ensure_file("/a/f")
        assert ns.total_size_bytes() > 0
