"""Unit tests for FileMetadata records."""

import pytest

from repro.metadata.attributes import FileKind, FileMetadata


class TestValidation:
    def test_requires_absolute_path(self):
        with pytest.raises(ValueError):
            FileMetadata(path="relative/path", inode=1)

    def test_rejects_negative_fields(self):
        with pytest.raises(ValueError):
            FileMetadata(path="/x", inode=-1)
        with pytest.raises(ValueError):
            FileMetadata(path="/x", inode=1, size=-1)
        with pytest.raises(ValueError):
            FileMetadata(path="/x", inode=1, nlink=-1)


class TestPathHelpers:
    def test_name(self):
        assert FileMetadata(path="/a/b/c.txt", inode=1).name == "c.txt"

    def test_root_name(self):
        assert FileMetadata(
            path="/", inode=0, kind=FileKind.DIRECTORY
        ).name == "/"

    def test_parent_path(self):
        assert FileMetadata(path="/a/b/c", inode=1).parent_path == "/a/b"
        assert FileMetadata(path="/top", inode=1).parent_path == "/"

    def test_is_directory(self):
        assert FileMetadata(
            path="/d", inode=1, kind=FileKind.DIRECTORY
        ).is_directory
        assert not FileMetadata(path="/f", inode=1).is_directory


class TestFunctionalUpdates:
    def test_touched_read_updates_atime_only(self):
        meta = FileMetadata(path="/f", inode=1, atime=1.0, mtime=1.0, ctime=1.0)
        touched = meta.touched(5.0)
        assert touched.atime == 5.0
        assert touched.mtime == 1.0
        assert meta.atime == 1.0  # original unchanged

    def test_touched_write_updates_all(self):
        meta = FileMetadata(path="/f", inode=1)
        touched = meta.touched(5.0, write=True)
        assert (touched.atime, touched.mtime, touched.ctime) == (5.0, 5.0, 5.0)

    def test_resized(self):
        meta = FileMetadata(path="/f", inode=1, size=10)
        resized = meta.resized(99, now=2.0)
        assert resized.size == 99 and resized.mtime == 2.0

    def test_renamed(self):
        meta = FileMetadata(path="/old/f", inode=1)
        assert meta.renamed("/new/f").path == "/new/f"
        assert meta.renamed("/new/f").inode == 1

    def test_chowned(self):
        meta = FileMetadata(path="/f", inode=1)
        owned = meta.chowned(uid=10, gid=20, now=3.0)
        assert (owned.uid, owned.gid, owned.ctime) == (10, 20, 3.0)

    def test_size_bytes_grows_with_path_length(self):
        short = FileMetadata(path="/f", inode=1)
        long = FileMetadata(path="/very/long/path/to/some/file", inode=1)
        assert long.size_bytes() > short.size_bytes()
