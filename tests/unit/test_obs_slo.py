"""Unit tests for the SLO engine (`repro.obs.slo`)."""

import pytest

from repro.obs.export import SnapshotSeries
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_BURN_WINDOWS,
    CounterSelector,
    Objective,
    SLOEngine,
    default_objectives,
    render_slo_report,
    select,
)


def _registry_with_traffic(requests=200, shed=2):
    registry = MetricsRegistry()
    reqs = registry.counter(
        "gateway_requests_total", labels=("op", "tenant")
    )
    reqs.labels("lookup", "t0").inc(requests - 40)
    reqs.labels("lookup", "t1").inc(40)
    registry.counter("gateway_shed_total", labels=("cause",)).labels(
        "queue_full"
    ).inc(shed)
    return registry


class TestCounterSelector:
    def test_unfiltered_sum(self):
        registry = _registry_with_traffic()
        assert select("gateway_requests_total").family_sum(registry) == 200

    def test_filtered_sum(self):
        registry = _registry_with_traffic()
        selector = select("gateway_requests_total", tenant="t1")
        assert selector.family_sum(registry) == 40

    def test_absent_family_sums_to_zero(self):
        assert select("nope_total").family_sum(MetricsRegistry()) == 0.0

    def test_unknown_label_matches_nothing(self):
        registry = _registry_with_traffic()
        selector = select("gateway_requests_total", region="mars")
        assert selector.family_sum(registry) == 0.0

    def test_snapshot_sum_splits_joined_keys(self):
        registry = _registry_with_traffic()
        snapshot = registry.snapshot()
        selector = select("gateway_requests_total", op="lookup")
        assert selector.snapshot_sum(snapshot, ("op", "tenant")) == 200
        narrow = select("gateway_requests_total", tenant="t0")
        assert narrow.snapshot_sum(snapshot, ("op", "tenant")) == 160

    def test_snapshot_sum_absent_metric(self):
        assert select("nope_total").snapshot_sum({}, ()) == 0.0


class TestObjectiveValidation:
    def test_target_must_be_fractional(self):
        with pytest.raises(ValueError):
            Objective(
                "o", "d", target=1.0,
                bad=select("a"), total=select("b"),
            )

    def test_exactly_one_shape(self):
        with pytest.raises(ValueError):
            Objective("o", "d", target=0.9)  # neither shape
        with pytest.raises(ValueError):
            Objective(
                "o", "d", target=0.9,
                bad=select("a"), total=select("b"),
                latency_metric="h", threshold_ms=1.0,
            )

    def test_kind_and_budget(self):
        ratio = Objective(
            "r", "d", target=0.99, bad=select("a"), total=select("b")
        )
        assert ratio.kind == "ratio"
        assert ratio.budget == pytest.approx(0.01)
        latency = Objective(
            "l", "d", target=0.9, latency_metric="h", threshold_ms=1.0
        )
        assert latency.kind == "latency"


class TestRatioEvaluation:
    def test_lifetime_compliance(self):
        registry = _registry_with_traffic(requests=200, shed=2)
        engine = SLOEngine(
            registry,
            objectives=[
                Objective(
                    "avail", "d", target=0.999,
                    bad=select("gateway_shed_total"),
                    total=select("gateway_requests_total"),
                )
            ],
        )
        (result,) = engine.evaluate()
        assert result.total == 200 and result.bad == 2
        assert result.compliance == pytest.approx(0.99)
        assert not result.ok  # 99% < 99.9%
        assert result.budget_burned == pytest.approx(10.0)
        assert result.windows == []  # no series given
        assert not result.alerting

    def test_zero_traffic_is_vacuously_ok(self):
        engine = SLOEngine(MetricsRegistry())
        results = engine.evaluate()
        assert len(results) == len(default_objectives())
        assert all(r.ok for r in results)
        assert all(r.compliance == 1.0 for r in results)


class TestLatencyEvaluation:
    def _registry(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "gateway_lookup_latency_ms",
            labels=("tenant",),
            buckets=(1.0, 10.0),
        )
        for value in (0.1, 0.2, 0.5, 5.0):
            hist.labels("t0").observe(value)
        return registry

    def test_compliance_from_cumulative_buckets(self):
        engine = SLOEngine(
            self._registry(),
            objectives=[
                Objective(
                    "lat", "d", target=0.5,
                    latency_metric="gateway_lookup_latency_ms",
                    threshold_ms=1.0,
                )
            ],
        )
        (result,) = engine.evaluate()
        assert result.total == 4 and result.good == 3
        assert result.compliance == pytest.approx(0.75)
        assert result.ok

    def test_non_bucket_threshold_raises(self):
        engine = SLOEngine(
            self._registry(),
            objectives=[
                Objective(
                    "lat", "d", target=0.5,
                    latency_metric="gateway_lookup_latency_ms",
                    threshold_ms=2.5,
                )
            ],
        )
        with pytest.raises(ValueError, match="not a bucket bound"):
            engine.evaluate()


class TestBurnWindows:
    def test_multi_window_alert_from_snapshot_deltas(self):
        # budget 0.1; second interval runs at 50% errors -> burn 5x.
        registry = MetricsRegistry()
        total = registry.counter("req_total")
        bad = registry.counter("bad_total")
        series = SnapshotSeries()
        total.inc(100)
        series.append(0.0, registry.snapshot())
        total.inc(100)
        bad.inc(50)
        series.append(100.0, registry.snapshot())
        objective = Objective(
            "o", "d", target=0.9,
            bad=select("bad_total"), total=select("req_total"),
        )
        engine = SLOEngine(registry, objectives=[objective])
        (result,) = engine.evaluate(series=series, now=100.0)
        fast, slow = result.windows
        # Fast window (60s) baseline is the t=0 snapshot (the only one
        # at or before t=40): delta bad=50/total=100 -> burn 5x, below
        # the 14x factor.  The slow window has no baseline snapshot so
        # its delta is the whole run: bad=50/total=200 -> burn 2.5x.
        assert fast.window is DEFAULT_BURN_WINDOWS[0]
        assert fast.bad == 50 and fast.total == 100
        assert fast.burn_rate == pytest.approx(5.0)
        assert not fast.firing
        assert slow.burn_rate == pytest.approx(50 / 200 / 0.1)
        assert not result.alerting

    def test_alerting_requires_every_window_firing(self):
        registry = MetricsRegistry()
        total = registry.counter("req_total")
        bad = registry.counter("bad_total")
        series = SnapshotSeries()
        series.append(0.0, registry.snapshot())
        total.inc(100)
        bad.inc(100)  # 100% error rate, budget 0.05 -> burn 20x
        series.append(10.0, registry.snapshot())
        objective = Objective(
            "o", "d", target=0.95,
            bad=select("bad_total"), total=select("req_total"),
        )
        engine = SLOEngine(registry, objectives=[objective])
        (result,) = engine.evaluate(series=series)
        assert all(w.firing for w in result.windows)
        assert result.alerting
        assert "firing" in str(result.as_dict())

    def test_empty_window_delta_burns_nothing(self):
        registry = MetricsRegistry()
        registry.counter("req_total").inc(10)
        registry.counter("bad_total")
        series = SnapshotSeries()
        series.append(0.0, registry.snapshot())
        series.append(1000.0, registry.snapshot())
        objective = Objective(
            "o", "d", target=0.9,
            bad=select("bad_total"), total=select("req_total"),
        )
        engine = SLOEngine(registry, objectives=[objective])
        (result,) = engine.evaluate(series=series, now=1000.0)
        fast = result.windows[0]
        assert fast.total == 0 and fast.burn_rate == 0.0
        assert not fast.firing


class TestReport:
    def test_render_contains_every_objective(self):
        registry = _registry_with_traffic()
        engine = SLOEngine(registry)
        report = render_slo_report(engine.evaluate())
        assert report.startswith("SLO report")
        for objective in default_objectives():
            assert objective.name in report
        assert "VIOLATED" in report  # availability at 99% misses 99.9%
        assert report.endswith("\n")

    def test_as_dict_round_trips_names(self):
        engine = SLOEngine(_registry_with_traffic())
        dumps = [r.as_dict() for r in engine.evaluate()]
        assert [d["name"] for d in dumps] == [
            o.name for o in default_objectives()
        ]
        assert all("compliance" in d and "windows" in d for d in dumps)


class TestSelectorSugar:
    def test_select_sorts_match_pairs(self):
        a = select("m", b="2", a="1")
        b = CounterSelector("m", (("a", "1"), ("b", "2")))
        assert a == b
