"""Unit tests for Bloom filter algebra (paper Section 3.4, Properties 1-3)."""

import pytest

from repro.bloom.algebra import (
    bit_difference,
    bloom_intersection,
    bloom_union,
    bloom_xor,
    merge_into,
    needs_update,
)
from repro.bloom.bloom_filter import BloomFilter


def build(items, seed=0):
    bloom = BloomFilter(1024, 5, seed)
    bloom.update(items)
    return bloom


class TestProperty1Union:
    def test_union_equals_filter_of_union(self):
        """Property 1: BF(A) | BF(B) is bit-identical to BF(A ∪ B)."""
        a_items = [f"a{i}" for i in range(30)]
        b_items = [f"b{i}" for i in range(30)]
        union = bloom_union(build(a_items), build(b_items))
        direct = build(a_items + b_items)
        assert union == direct

    def test_union_contains_both_sides(self):
        union = bloom_union(build(["x"]), build(["y"]))
        assert "x" in union and "y" in union

    def test_union_item_count(self):
        assert bloom_union(build(["x"]), build(["y", "z"])).num_items == 3


class TestProperty2Intersection:
    def test_intersection_contains_common_members(self):
        """No false negatives for A ∩ B."""
        common = [f"c{i}" for i in range(20)]
        a = build(common + ["only-a"])
        b = build(common + ["only-b"])
        inter = bloom_intersection(a, b)
        assert all(item in inter for item in common)

    def test_intersection_is_superset_of_direct_filter_bits(self):
        """AND of filters has at least the bits of BF(A ∩ B)."""
        common = [f"c{i}" for i in range(20)]
        a = build(common + [f"a{i}" for i in range(20)])
        b = build(common + [f"b{i}" for i in range(20)])
        inter = bloom_intersection(a, b)
        direct = build(common)
        assert direct.bits.is_subset_of(inter.bits)


class TestProperty3Xor:
    def test_xor_marks_differing_positions(self):
        a = build(["x"])
        b = build(["x", "y"])
        xor = bloom_xor(a, b)
        assert xor.bits == (a.bits ^ b.bits)

    def test_xor_of_identical_filters_is_empty(self):
        a = build(["p", "q"])
        b = build(["p", "q"])
        assert bloom_xor(a, b).bits.popcount() == 0


class TestBitDifference:
    def test_zero_for_identical(self):
        assert bit_difference(build(["x"]), build(["x"])) == 0

    def test_counts_hamming_distance(self):
        a = build([])
        b = build(["new"])
        assert bit_difference(a, b) == b.bits.popcount()

    def test_grows_with_divergence(self):
        base = build([f"f{i}" for i in range(10)])
        drift_small = build([f"f{i}" for i in range(11)])
        drift_large = build([f"f{i}" for i in range(40)])
        assert bit_difference(base, drift_small) <= bit_difference(
            base, drift_large
        )


class TestUpdateRule:
    def test_needs_update_threshold(self):
        local = build([f"f{i}" for i in range(20)])
        replica = build([f"f{i}" for i in range(10)])
        difference = bit_difference(local, replica)
        assert needs_update(local, replica, difference - 1)
        assert not needs_update(local, replica, difference)

    def test_fresh_replica_never_needs_update(self):
        local = build(["a"])
        assert not needs_update(local, local.copy(), 0)

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            needs_update(build([]), build([]), -1)


class TestMergeInto:
    def test_merge_into_unions_in_place(self):
        target = build(["x"])
        merge_into(target, build(["y"]))
        assert "x" in target and "y" in target
        assert target.num_items == 2


class TestIntersectionAnalysis:
    """Section 3.4's quantitative claim about BF(A∩B) vs. BF(A) & BF(B)."""

    def test_excess_probability_vanishes_without_exclusive_items(self):
        from repro.bloom.algebra import intersection_excess_probability

        assert intersection_excess_probability(1024, 5, 0, 50) == 0.0
        assert intersection_excess_probability(1024, 5, 50, 0) == 0.0

    def test_excess_probability_grows_with_exclusive_items(self):
        from repro.bloom.algebra import intersection_excess_probability

        small = intersection_excess_probability(1024, 5, 5, 5)
        large = intersection_excess_probability(1024, 5, 100, 100)
        assert 0.0 < small < large < 1.0

    def test_excess_probability_validation(self):
        from repro.bloom.algebra import intersection_excess_probability

        with pytest.raises(ValueError):
            intersection_excess_probability(0, 5, 1, 1)
        with pytest.raises(ValueError):
            intersection_excess_probability(10, 5, -1, 1)

    def test_and_filter_fpr_at_least_direct(self):
        """Empirically: the AND approximation never beats the direct
        intersection filter on false positives."""
        from repro.bloom.algebra import measured_false_positive_rate

        common = [f"c{i}" for i in range(40)]
        a = build(common + [f"a{i}" for i in range(120)])
        b = build(common + [f"b{i}" for i in range(120)])
        and_filter = bloom_intersection(a, b)
        direct = build(common)
        assert measured_false_positive_rate(
            and_filter, probes=3_000
        ) >= measured_false_positive_rate(direct, probes=3_000)

    def test_no_exclusive_items_means_equal_filters(self):
        """A ⊆ B: the AND equals BF(A) exactly — zero excess, as the
        formula predicts."""
        a_items = [f"s{i}" for i in range(30)]
        b_items = a_items + [f"extra{i}" for i in range(0)]
        a = build(a_items)
        b = build(b_items)
        assert bloom_intersection(a, b) == a


class TestIncompatibility:
    @pytest.mark.parametrize(
        "op", [bloom_union, bloom_intersection, bloom_xor, bit_difference]
    )
    def test_incompatible_filters_rejected(self, op):
        with pytest.raises(ValueError):
            op(build([], seed=0), build([], seed=1))
