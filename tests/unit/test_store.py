"""Unit tests for the tiered metadata store."""

import pytest

from repro.metadata.attributes import FileMetadata
from repro.metadata.store import MetadataStore, StoreAccess


def record(path: str) -> FileMetadata:
    return FileMetadata(path=path, inode=abs(hash(path)) % 10_000)


class TestUnbounded:
    def test_put_get(self):
        store = MetadataStore()
        meta = record("/f")
        store.put(meta)
        assert store.get("/f") == meta
        assert store.stats.memory_hits == 1

    def test_miss(self):
        store = MetadataStore()
        assert store.get("/ghost") is None
        assert store.stats.misses == 1

    def test_overwrite_replaces(self):
        store = MetadataStore()
        store.put(record("/f"))
        newer = FileMetadata(path="/f", inode=1, size=99)
        store.put(newer)
        assert store.get("/f").size == 99
        assert len(store) == 1

    def test_remove(self):
        store = MetadataStore()
        store.put(record("/f"))
        assert store.remove("/f") is True
        assert "/f" not in store

    def test_remove_missing(self):
        store = MetadataStore()
        with pytest.raises(KeyError):
            store.remove("/ghost")
        assert store.remove("/ghost", missing_ok=True) is False

    def test_everything_stays_in_memory(self):
        store = MetadataStore()
        for i in range(100):
            store.put(record(f"/f{i}"))
        assert store.disk_count == 0
        assert store.memory_count == 100


class TestTiering:
    def test_spills_when_over_budget(self):
        meta = record("/probe")
        budget = meta.size_bytes() * 3
        store = MetadataStore(memory_budget_bytes=budget)
        for i in range(10):
            store.put(record(f"/same/len/{i}"))
        assert store.disk_count > 0
        assert store.memory_bytes <= budget

    def test_lru_order_spills_coldest(self):
        meta = record("/x0")
        store = MetadataStore(memory_budget_bytes=meta.size_bytes() * 2)
        store.put(record("/x0"))
        store.put(record("/x1"))
        store.put(record("/x2"))  # /x0 is coldest -> disk
        assert store.access_tier("/x0") is StoreAccess.DISK
        assert store.access_tier("/x2") is StoreAccess.MEMORY

    def test_disk_hit_promotes(self):
        meta = record("/x0")
        store = MetadataStore(memory_budget_bytes=meta.size_bytes() * 2)
        for i in range(3):
            store.put(record(f"/x{i}"))
        assert store.get("/x0") is not None
        assert store.stats.disk_hits == 1
        assert store.access_tier("/x0") is StoreAccess.MEMORY

    def test_access_tier_does_not_promote(self):
        meta = record("/x0")
        store = MetadataStore(memory_budget_bytes=meta.size_bytes() * 2)
        for i in range(3):
            store.put(record(f"/x{i}"))
        store.access_tier("/x0")
        assert store.access_tier("/x0") is StoreAccess.DISK

    def test_shrinking_budget_spills_immediately(self):
        store = MetadataStore()
        for i in range(5):
            store.put(record(f"/y{i}"))
        store.memory_budget_bytes = record("/y0").size_bytes()
        assert store.memory_count <= 1
        assert store.disk_count >= 4

    def test_zero_budget_spills_everything(self):
        store = MetadataStore(memory_budget_bytes=0)
        store.put(record("/f"))
        assert store.memory_count == 0
        assert store.get("/f") is not None  # still readable, from disk

    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError):
            MetadataStore(memory_budget_bytes=-1)


class TestIterationAndStats:
    def test_paths_and_records_cover_both_tiers(self):
        meta = record("/z0")
        store = MetadataStore(memory_budget_bytes=meta.size_bytes())
        store.put(record("/z0"))
        store.put(record("/z1"))
        assert sorted(store.paths()) == ["/z0", "/z1"]
        assert len(list(store.records())) == 2

    def test_clear(self):
        store = MetadataStore()
        store.put(record("/f"))
        store.clear()
        assert len(store) == 0
        assert store.memory_bytes == 0

    def test_total_lookups(self):
        store = MetadataStore()
        store.put(record("/f"))
        store.get("/f")
        store.get("/ghost")
        assert store.stats.total_lookups == 2
