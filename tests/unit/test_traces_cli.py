"""Unit tests for the trace CLI (generate / intensify / stats)."""

import pytest

from repro.traces.__main__ import main
from repro.traces.io import read_trace
from repro.traces.workloads import compute_stats


class TestGenerate:
    def test_generates_requested_ops(self, tmp_path, capsys):
        out = tmp_path / "hp.trace"
        code = main(
            [
                "generate", "--profile", "HP", "--files", "200",
                "--ops", "500", "--out", str(out),
            ]
        )
        assert code == 0
        records = read_trace(out)
        assert len(records) == 500
        assert "wrote 500" in capsys.readouterr().out

    def test_seed_reproducible(self, tmp_path):
        a, b = tmp_path / "a.trace", tmp_path / "b.trace"
        for out in (a, b):
            main(
                [
                    "generate", "--profile", "RES", "--files", "100",
                    "--ops", "200", "--seed", "7", "--out", str(out),
                ]
            )
        assert a.read_text() == b.read_text()

    def test_rejects_unknown_profile(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "generate", "--profile", "NOPE",
                    "--out", str(tmp_path / "x"),
                ]
            )


class TestIntensify:
    def test_tif_multiplies_ops(self, tmp_path, capsys):
        base = tmp_path / "base.trace"
        scaled = tmp_path / "scaled.trace"
        main(
            [
                "generate", "--files", "100", "--ops", "300",
                "--out", str(base),
            ]
        )
        code = main(
            ["intensify", "--tif", "3", "--in", str(base), "--out", str(scaled)]
        )
        assert code == 0
        records = read_trace(scaled)
        assert len(records) == 900
        stats = compute_stats(records)
        assert stats.num_subtraces == 3


class TestStats:
    def test_stats_reports_counts(self, tmp_path, capsys):
        trace = tmp_path / "t.trace"
        main(
            [
                "generate", "--files", "100", "--ops", "400",
                "--out", str(trace),
            ]
        )
        capsys.readouterr()
        code = main(["stats", "--in", str(trace)])
        assert code == 0
        out = capsys.readouterr().out
        assert "total ops:    400" in out
        assert "active files:" in out
        assert "stat" in out
