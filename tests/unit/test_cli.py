"""Unit tests for the experiment CLI dispatcher."""

import pytest

from repro.experiments.__main__ import REGISTRY, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in REGISTRY:
            assert name in out

    def test_run_table01(self, capsys):
        assert main(["table01"]) == 0
        out = capsys.readouterr().out
        assert "g_hba" in out

    def test_unknown_experiment(self, capsys):
        assert main(["frobnicate"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_registry_modules_importable(self):
        import importlib

        for name in REGISTRY:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert hasattr(module, "run")
            assert hasattr(module, "main")
