"""Unit tests for the network latency and memory models."""

import pytest

from repro.sim.memory import MemoryModel, megabytes
from repro.sim.network import NetworkModel


class TestNetworkModel:
    def test_ordering_memory_lan_disk(self):
        net = NetworkModel()
        assert net.memory_probe_ms < net.unicast_ms < net.disk_access_ms

    def test_probe_cost_all_in_memory(self):
        net = NetworkModel()
        assert net.probe_cost_ms(10, 1.0) == pytest.approx(
            10 * net.memory_probe_ms
        )

    def test_probe_cost_all_spilled(self):
        net = NetworkModel()
        assert net.probe_cost_ms(10, 0.0) == pytest.approx(
            10 * net.disk_access_ms
        )

    def test_probe_cost_mixed(self):
        net = NetworkModel()
        cost = net.probe_cost_ms(10, 0.5)
        assert cost == pytest.approx(
            5 * net.memory_probe_ms + 5 * net.disk_access_ms
        )

    def test_probe_cost_validation(self):
        net = NetworkModel()
        with pytest.raises(ValueError):
            net.probe_cost_ms(-1)
        with pytest.raises(ValueError):
            net.probe_cost_ms(1, 1.5)

    def test_multicast_grows_with_fanout(self):
        net = NetworkModel()
        assert net.multicast_ms(10) > net.multicast_ms(2)
        assert net.multicast_ms(0) == 0.0

    def test_group_and_global_multicast(self):
        net = NetworkModel()
        assert net.group_multicast_ms(6) == net.multicast_ms(5)
        assert net.global_multicast_ms(100) == net.multicast_ms(99)
        assert net.group_multicast_ms(1) == 0.0

    def test_round_trip_is_two_unicasts(self):
        net = NetworkModel(unicast_ms=0.3)
        assert net.round_trip_ms() == pytest.approx(0.6)

    def test_queueing_linear(self):
        net = NetworkModel(queueing_ms_per_outstanding=0.01)
        assert net.queueing_ms(100) == pytest.approx(1.0)
        assert net.queueing_ms(0) == 0.0

    def test_rejects_negative_constants(self):
        with pytest.raises(ValueError):
            NetworkModel(disk_access_ms=-1)


class TestMemoryModelPriority:
    def test_unbounded_everything_resident(self):
        model = MemoryModel()
        model.set_consumer("a", 1000, 0)
        assert model.resident_fraction("a") == 1.0

    def test_priority_spill_order(self):
        model = MemoryModel(budget_bytes=150, mode="priority")
        model.set_consumer("pinned", 100, 0)
        model.set_consumer("bulk", 100, 2)
        assert model.resident_fraction("pinned") == 1.0
        assert model.resident_fraction("bulk") == pytest.approx(0.5)

    def test_fully_spilled_tail(self):
        model = MemoryModel(budget_bytes=100, mode="priority")
        model.set_consumer("first", 100, 0)
        model.set_consumer("second", 50, 1)
        assert model.resident_fraction("second") == 0.0

    def test_zero_byte_consumer_fully_resident(self):
        model = MemoryModel(budget_bytes=0, mode="priority")
        model.set_consumer("empty", 0, 0)
        assert model.resident_fraction("empty") == 1.0

    def test_unknown_consumer_raises(self):
        with pytest.raises(KeyError):
            MemoryModel().resident_fraction("ghost")

    def test_overcommitted_flag(self):
        model = MemoryModel(budget_bytes=10)
        model.set_consumer("a", 5, 0)
        assert not model.overcommitted
        model.set_consumer("b", 6, 1)
        assert model.overcommitted


class TestMemoryModelProportional:
    def test_fits_budget_fully_resident(self):
        model = MemoryModel(budget_bytes=200, mode="proportional")
        model.set_consumer("a", 100, 0)
        model.set_consumer("b", 100, 1)
        assert model.resident_fraction("a") == 1.0

    def test_overcommit_shares_fraction(self):
        model = MemoryModel(budget_bytes=100, mode="proportional")
        model.set_consumer("a", 100, 0)
        model.set_consumer("b", 100, 1)
        assert model.resident_fraction("a") == pytest.approx(0.5)
        assert model.resident_fraction("b") == pytest.approx(0.5)

    def test_budget_update_changes_fractions(self):
        model = MemoryModel(budget_bytes=100, mode="proportional")
        model.set_consumer("a", 200, 0)
        assert model.resident_fraction("a") == pytest.approx(0.5)
        model.budget_bytes = 50
        assert model.resident_fraction("a") == pytest.approx(0.25)

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            MemoryModel(mode="magic")


class TestHelpers:
    def test_snapshot_ordering(self):
        model = MemoryModel(budget_bytes=100)
        model.set_consumer("z_pinned", 10, 0)
        model.set_consumer("a_bulk", 10, 2)
        names = [name for name, _, _ in model.snapshot()]
        assert names == ["z_pinned", "a_bulk"]

    def test_remove_consumer(self):
        model = MemoryModel()
        model.set_consumer("a", 10, 0)
        model.remove_consumer("a")
        assert model.total_bytes == 0

    def test_megabytes(self):
        assert megabytes(1) == 1024 * 1024
        with pytest.raises(ValueError):
            megabytes(-1)
