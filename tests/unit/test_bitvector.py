"""Unit tests for the BitVector substrate."""

import pytest

from repro.bloom.bitvector import BitVector


class TestConstruction:
    def test_starts_all_zero(self):
        vector = BitVector(100)
        assert vector.popcount() == 0
        assert not any(vector)

    def test_length(self):
        assert len(BitVector(17)) == 17

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            BitVector(0)
        with pytest.raises(ValueError):
            BitVector(-5)

    def test_non_byte_aligned_size(self):
        vector = BitVector(13)
        for i in range(13):
            vector.set(i)
        assert vector.popcount() == 13


class TestBitAccess:
    def test_set_get_clear(self):
        vector = BitVector(64)
        vector.set(5)
        assert vector.get(5)
        vector.clear(5)
        assert not vector.get(5)

    def test_setitem_getitem(self):
        vector = BitVector(16)
        vector[3] = True
        assert vector[3]
        vector[3] = False
        assert not vector[3]

    def test_negative_index_wraps(self):
        vector = BitVector(10)
        vector.set(-1)
        assert vector.get(9)

    def test_out_of_range_raises(self):
        vector = BitVector(10)
        with pytest.raises(IndexError):
            vector.get(10)
        with pytest.raises(IndexError):
            vector.set(100)

    def test_set_is_idempotent(self):
        vector = BitVector(8)
        vector.set(2)
        vector.set(2)
        assert vector.popcount() == 1


class TestWholeVector:
    def test_reset(self):
        vector = BitVector(32)
        for i in range(0, 32, 3):
            vector.set(i)
        vector.reset()
        assert vector.popcount() == 0

    def test_fill_ratio(self):
        vector = BitVector(10)
        for i in range(5):
            vector.set(i)
        assert vector.fill_ratio() == pytest.approx(0.5)

    def test_copy_is_independent(self):
        vector = BitVector(16)
        vector.set(1)
        clone = vector.copy()
        clone.set(2)
        assert not vector.get(2)
        assert clone.get(1)

    def test_equality(self):
        a = BitVector(16)
        b = BitVector(16)
        assert a == b
        a.set(3)
        assert a != b
        b.set(3)
        assert a == b

    def test_different_lengths_not_equal(self):
        assert BitVector(8) != BitVector(9)


class TestBitwiseAlgebra:
    def _pair(self):
        a = BitVector(16)
        b = BitVector(16)
        for i in (1, 2, 3):
            a.set(i)
        for i in (3, 4, 5):
            b.set(i)
        return a, b

    def test_or(self):
        a, b = self._pair()
        result = a | b
        assert {i for i in range(16) if result.get(i)} == {1, 2, 3, 4, 5}

    def test_and(self):
        a, b = self._pair()
        result = a & b
        assert {i for i in range(16) if result.get(i)} == {3}

    def test_xor(self):
        a, b = self._pair()
        result = a ^ b
        assert {i for i in range(16) if result.get(i)} == {1, 2, 4, 5}

    def test_inplace_or(self):
        a, b = self._pair()
        a |= b
        assert a.popcount() == 5

    def test_inplace_and(self):
        a, b = self._pair()
        a &= b
        assert a.popcount() == 1

    def test_inplace_xor(self):
        a, b = self._pair()
        a ^= b
        assert a.popcount() == 4

    def test_operands_unchanged_by_binary_ops(self):
        a, b = self._pair()
        _ = a | b
        assert a.popcount() == 3
        assert b.popcount() == 3

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            BitVector(8) | BitVector(16)

    def test_type_mismatch_raises(self):
        with pytest.raises(TypeError):
            BitVector(8) | "nope"  # type: ignore[operator]


class TestDistanceAndSubset:
    def test_hamming_distance(self):
        a, b = BitVector(16), BitVector(16)
        a.set(1)
        b.set(2)
        assert a.hamming_distance(b) == 2
        assert a.hamming_distance(a) == 0

    def test_is_subset_of(self):
        a, b = BitVector(16), BitVector(16)
        a.set(1)
        b.set(1)
        b.set(2)
        assert a.is_subset_of(b)
        assert not b.is_subset_of(a)

    def test_empty_is_subset_of_everything(self):
        a, b = BitVector(8), BitVector(8)
        b.set(0)
        assert a.is_subset_of(b)


class TestSerialization:
    def test_round_trip(self):
        vector = BitVector(29)
        for i in (0, 7, 13, 28):
            vector.set(i)
        restored = BitVector.from_bytes(29, vector.to_bytes())
        assert restored == vector

    def test_wrong_payload_length_raises(self):
        with pytest.raises(ValueError):
            BitVector.from_bytes(29, b"\x00")
