"""Unit tests for the BitVector substrate."""

import pytest

from repro.bloom.bitvector import BitVector


class TestConstruction:
    def test_starts_all_zero(self):
        vector = BitVector(100)
        assert vector.popcount() == 0
        assert not any(vector)

    def test_length(self):
        assert len(BitVector(17)) == 17

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            BitVector(0)
        with pytest.raises(ValueError):
            BitVector(-5)

    def test_non_byte_aligned_size(self):
        vector = BitVector(13)
        for i in range(13):
            vector.set(i)
        assert vector.popcount() == 13


class TestBitAccess:
    def test_set_get_clear(self):
        vector = BitVector(64)
        vector.set(5)
        assert vector.get(5)
        vector.clear(5)
        assert not vector.get(5)

    def test_setitem_getitem(self):
        vector = BitVector(16)
        vector[3] = True
        assert vector[3]
        vector[3] = False
        assert not vector[3]

    def test_negative_index_wraps(self):
        vector = BitVector(10)
        vector.set(-1)
        assert vector.get(9)

    def test_out_of_range_raises(self):
        vector = BitVector(10)
        with pytest.raises(IndexError):
            vector.get(10)
        with pytest.raises(IndexError):
            vector.set(100)

    def test_set_is_idempotent(self):
        vector = BitVector(8)
        vector.set(2)
        vector.set(2)
        assert vector.popcount() == 1


class TestWholeVector:
    def test_reset(self):
        vector = BitVector(32)
        for i in range(0, 32, 3):
            vector.set(i)
        vector.reset()
        assert vector.popcount() == 0

    def test_fill_ratio(self):
        vector = BitVector(10)
        for i in range(5):
            vector.set(i)
        assert vector.fill_ratio() == pytest.approx(0.5)

    def test_copy_is_independent(self):
        vector = BitVector(16)
        vector.set(1)
        clone = vector.copy()
        clone.set(2)
        assert not vector.get(2)
        assert clone.get(1)

    def test_equality(self):
        a = BitVector(16)
        b = BitVector(16)
        assert a == b
        a.set(3)
        assert a != b
        b.set(3)
        assert a == b

    def test_different_lengths_not_equal(self):
        assert BitVector(8) != BitVector(9)


class TestBitwiseAlgebra:
    def _pair(self):
        a = BitVector(16)
        b = BitVector(16)
        for i in (1, 2, 3):
            a.set(i)
        for i in (3, 4, 5):
            b.set(i)
        return a, b

    def test_or(self):
        a, b = self._pair()
        result = a | b
        assert {i for i in range(16) if result.get(i)} == {1, 2, 3, 4, 5}

    def test_and(self):
        a, b = self._pair()
        result = a & b
        assert {i for i in range(16) if result.get(i)} == {3}

    def test_xor(self):
        a, b = self._pair()
        result = a ^ b
        assert {i for i in range(16) if result.get(i)} == {1, 2, 4, 5}

    def test_inplace_or(self):
        a, b = self._pair()
        a |= b
        assert a.popcount() == 5

    def test_inplace_and(self):
        a, b = self._pair()
        a &= b
        assert a.popcount() == 1

    def test_inplace_xor(self):
        a, b = self._pair()
        a ^= b
        assert a.popcount() == 4

    def test_operands_unchanged_by_binary_ops(self):
        a, b = self._pair()
        _ = a | b
        assert a.popcount() == 3
        assert b.popcount() == 3

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            BitVector(8) | BitVector(16)

    def test_type_mismatch_raises(self):
        with pytest.raises(TypeError):
            BitVector(8) | "nope"  # type: ignore[operator]


class TestDistanceAndSubset:
    def test_hamming_distance(self):
        a, b = BitVector(16), BitVector(16)
        a.set(1)
        b.set(2)
        assert a.hamming_distance(b) == 2
        assert a.hamming_distance(a) == 0

    def test_is_subset_of(self):
        a, b = BitVector(16), BitVector(16)
        a.set(1)
        b.set(1)
        b.set(2)
        assert a.is_subset_of(b)
        assert not b.is_subset_of(a)

    def test_empty_is_subset_of_everything(self):
        a, b = BitVector(8), BitVector(8)
        b.set(0)
        assert a.is_subset_of(b)


class TestSerialization:
    def test_round_trip(self):
        vector = BitVector(29)
        for i in (0, 7, 13, 28):
            vector.set(i)
        restored = BitVector.from_bytes(29, vector.to_bytes())
        assert restored == vector

    def test_wrong_payload_length_raises(self):
        with pytest.raises(ValueError):
            BitVector.from_bytes(29, b"\x00")


class TestWordBoundaries:
    """63/64/65-bit vectors straddle one machine word.

    The packed representation is a single big int, but CPython stores it
    in 30-bit (or 15-bit) digits and ``to_bytes`` walks 8-bit groups, so
    sizes one either side of 64 are where packing bugs would live.
    """

    @pytest.mark.parametrize("num_bits", [63, 64, 65])
    def test_every_bit_individually_addressable(self, num_bits):
        vector = BitVector(num_bits)
        for i in range(num_bits):
            assert not vector.get(i)
            vector.set(i)
            assert vector.get(i)
            assert vector.popcount() == i + 1
        for i in range(num_bits):
            vector.clear(i)
            assert not vector.get(i)
        assert vector.popcount() == 0

    @pytest.mark.parametrize("num_bits", [63, 64, 65])
    def test_top_bit_round_trips_through_bytes(self, num_bits):
        vector = BitVector(num_bits)
        vector.set(num_bits - 1)
        payload = vector.to_bytes()
        assert len(payload) == (num_bits + 7) // 8
        # Bit i lives at byte[i >> 3], position i & 7 — the frozen layout.
        top = num_bits - 1
        assert payload[top >> 3] & (1 << (top & 7))
        restored = BitVector.from_bytes(num_bits, payload)
        assert restored == vector
        assert restored.get(-1)

    @pytest.mark.parametrize("num_bits", [63, 64, 65])
    def test_boundary_indices_via_negative_addressing(self, num_bits):
        vector = BitVector(num_bits)
        vector.set(-num_bits)  # lowest bit
        assert vector.get(0)
        vector.set(-1)  # highest bit
        assert vector.get(num_bits - 1)
        vector.clear(-1)
        assert not vector.get(num_bits - 1)
        assert vector.popcount() == 1

    @pytest.mark.parametrize("num_bits", [63, 64, 65])
    def test_negative_index_below_range_raises(self, num_bits):
        vector = BitVector(num_bits)
        with pytest.raises(IndexError):
            vector.get(-num_bits - 1)
        with pytest.raises(IndexError):
            vector.set(-num_bits - 1)
        with pytest.raises(IndexError):
            vector.clear(-(10 * num_bits))
        # In-range state is untouched by the rejected accesses.
        assert vector.popcount() == 0

    def test_all_ones_at_65_bits_has_no_phantom_bit(self):
        vector = BitVector(65)
        for i in range(65):
            vector.set(i)
        assert vector.popcount() == 65
        assert vector.value == (1 << 65) - 1
        payload = vector.to_bytes()
        assert len(payload) == 9
        assert payload == b"\xff" * 8 + b"\x01"

    def test_mask_primitives_across_the_word_boundary(self):
        vector = BitVector(65)
        mask = (1 << 64) | (1 << 63) | 1
        vector.set_mask(mask)
        assert vector.contains_mask(mask)
        assert not vector.contains_mask(mask | (1 << 10))
        assert vector.popcount() == 3
