"""Unit tests for prototype messages, transport and single nodes."""

import queue
import threading

import pytest

from repro.core.config import GHBAConfig
from repro.metadata.attributes import FileMetadata
from repro.prototype.messages import Message, MessageKind
from repro.prototype.node import MDSNode
from repro.prototype.transport import InProcessTransport, TransportClosed


@pytest.fixture
def config():
    return GHBAConfig(
        max_group_size=3,
        expected_files_per_mds=128,
        lru_capacity=16,
        lru_filter_bits=128,
        seed=1,
    )


@pytest.fixture
def transport():
    return InProcessTransport(default_timeout_s=5.0)


@pytest.fixture
def node(config, transport):
    node = MDSNode(0, config, transport)
    node.start()
    yield node
    node.stop()


class TestMessages:
    def test_request_ids_unique(self):
        a = Message(kind=MessageKind.PING, sender=-1)
        b = Message(kind=MessageKind.PING, sender=-1)
        assert a.request_id != b.request_id

    def test_reply_carries_request_id(self):
        request = Message(kind=MessageKind.PING, sender=-1)
        reply = request.reply(alive=True)
        assert reply.request_id == request.request_id
        assert reply.kind is MessageKind.REPLY
        assert reply.payload["alive"] is True


class TestTransport:
    def test_register_and_send(self, transport):
        mailbox = transport.register(5)
        transport.send(5, Message(kind=MessageKind.PING, sender=-1))
        assert transport.messages_sent == 1
        assert mailbox.get_nowait().kind is MessageKind.PING

    def test_duplicate_registration_rejected(self, transport):
        transport.register(5)
        with pytest.raises(ValueError):
            transport.register(5)

    def test_send_to_unknown_raises(self, transport):
        with pytest.raises(TransportClosed):
            transport.send(99, Message(kind=MessageKind.PING, sender=-1))

    def test_request_counts_both_directions(self, transport):
        mailbox = transport.register(1)

        def responder():
            message = mailbox.get(timeout=5)
            message.reply_to.put(message.reply(ok=True))

        thread = threading.Thread(target=responder, daemon=True)
        thread.start()
        reply = transport.request(1, Message(kind=MessageKind.PING, sender=-1))
        thread.join(timeout=5)
        assert reply.payload["ok"] is True
        assert transport.messages_sent == 2  # request + reply

    def test_request_timeout(self, transport):
        transport.register(1)  # nobody serving
        with pytest.raises(TimeoutError):
            transport.request(
                1, Message(kind=MessageKind.PING, sender=-1), timeout_s=0.05
            )

    def test_deregister(self, transport):
        transport.register(1)
        transport.deregister(1)
        assert 1 not in transport

    def test_reset_counters(self, transport):
        transport.register(1)
        transport.send(1, Message(kind=MessageKind.PING, sender=-1))
        transport.reset_counters()
        assert transport.messages_sent == 0


class TestNode:
    def request(self, transport, node_id, kind, arrival=0.0, **payload):
        return transport.request(
            node_id,
            Message(kind=kind, sender=-1, payload=payload, arrival_vtime=arrival),
        )

    def test_ping(self, node, transport):
        reply = self.request(transport, 0, MessageKind.PING)
        assert reply.payload["alive"] is True

    def test_insert_then_verify(self, node, transport):
        meta = FileMetadata(path="/proto/f", inode=1)
        self.request(transport, 0, MessageKind.INSERT, meta=meta)
        reply = self.request(transport, 0, MessageKind.VERIFY, path="/proto/f")
        assert reply.payload["found"] is True
        assert reply.payload["home_id"] == 0

    def test_verify_absent(self, node, transport):
        reply = self.request(transport, 0, MessageKind.VERIFY, path="/ghost")
        assert reply.payload["found"] is False

    def test_probe_local_reports_l2_on_l1_miss(self, node, transport):
        meta = FileMetadata(path="/proto/g", inode=2)
        self.request(transport, 0, MessageKind.INSERT, meta=meta)
        reply = self.request(
            transport, 0, MessageKind.PROBE_LOCAL, path="/proto/g"
        )
        assert reply.payload["l1_hits"] == []
        assert reply.payload["l2_hits"] == [0]

    def test_record_lru_enables_l1(self, node, transport):
        self.request(
            transport, 0, MessageKind.RECORD_LRU, path="/hot", home_id=4
        )
        reply = self.request(transport, 0, MessageKind.PROBE_LRU, path="/hot")
        assert reply.payload["hits"] == [4]

    def test_virtual_clock_queues_requests(self, node, transport):
        """Two requests arriving at the same vtime serialize on the node."""
        first = self.request(
            transport, 0, MessageKind.VERIFY, arrival=1.0, path="/a"
        )
        second = self.request(
            transport, 0, MessageKind.VERIFY, arrival=1.0, path="/b"
        )
        assert second.payload["finish_vtime"] > first.payload["finish_vtime"]

    def test_replace_replica_on_non_host_is_dropped(self, node, transport, config):
        other = MDSNode(99, config, InProcessTransport())
        replica = other.server.publish_filter()
        reply = self.request(
            transport, 0, MessageKind.REPLACE_REPLICA, home_id=99, replica=replica
        )
        assert reply.payload["ok"] is False  # false candidate drops update

    def test_host_then_replace_replica(self, node, transport, config):
        other_transport = InProcessTransport()
        other = MDSNode(99, config, other_transport)
        self.request(
            transport, 0, MessageKind.HOST_REPLICA,
            home_id=99, replica=other.server.publish_filter(),
        )
        other.server.insert_metadata(FileMetadata(path="/fresh", inode=1))
        reply = self.request(
            transport, 0, MessageKind.REPLACE_REPLICA,
            home_id=99, replica=other.server.publish_filter(),
        )
        assert reply.payload["ok"] is True
        probe = self.request(
            transport, 0, MessageKind.PROBE_SEGMENT, path="/fresh"
        )
        assert probe.payload["hits"] == [99]

    def test_unknown_kind_gets_error_reply(self, node, transport):
        reply = transport.request(
            0, Message(kind=MessageKind.REPLY, sender=-1)
        )
        assert "error" in reply.payload
