"""Wire codec: bit-identical round trips and a strict error taxonomy.

Every malformed input must surface as the typed ``CodecError`` — never a
hang, an ``IndexError``/``struct.error``, or an over-read — and every
``MessageKind`` (with and without trace context) must round-trip with a
bit-identical re-encode, which is what lets the TCP transport claim the
same determinism story as the in-process one.
"""

import struct

import pytest

from repro.bloom.bloom_filter import BloomFilter
from repro.metadata.attributes import FileKind, FileMetadata
from repro.net.codec import (
    KIND_TO_WIRE,
    MAX_FRAME_BYTES,
    WIRE_MAGIC,
    WIRE_VERSION,
    CodecError,
    decode_body,
    decode_frame,
    encode_body,
    encode_frame,
)
from repro.prototype.messages import Message, MessageKind


def _roundtrip(message, expects_reply=False):
    frame = encode_frame(message, expects_reply)
    decoded, decoded_expects = decode_frame(frame)
    # Bit-identical re-encode is the determinism contract.
    assert encode_frame(decoded, decoded_expects) == frame
    assert decoded_expects is expects_reply
    return decoded


def _sample_payload(kind):
    """A representative payload per kind, covering every value type."""
    meta = FileMetadata(path="/data/a.txt", inode=42, size=1024, mtime=3.5)
    bloom = BloomFilter(num_bits=256, num_hashes=3, seed=7)
    bloom.add("/data/a.txt")
    samples = {
        MessageKind.PROBE_LRU: {"path": "/data/a.txt"},
        MessageKind.PROBE_LOCAL: {"path": "/data/a.txt"},
        MessageKind.PROBE_SEGMENT: {"path": "/data/a.txt"},
        MessageKind.VERIFY: {"path": "/data/a.txt"},
        MessageKind.VERIFY_BATCH: {"paths": ["/a", "/b", "/c"]},
        MessageKind.MUTATE_BATCH: {
            "origin": 3,
            "acked": 17,
            "mutations": [
                {"version": 18, "op": "create", "path": "/a", "record": meta},
                {"version": 19, "op": "delete", "path": "/b", "record": None},
            ],
        },
        MessageKind.INSERT: {"meta": meta},
        MessageKind.HOST_REPLICA: {"home_id": 2, "replica": bloom},
        MessageKind.DROP_REPLICA: {"home_id": 2},
        MessageKind.REPLACE_REPLICA: {"home_id": 2, "replica": bloom},
        MessageKind.PUBLISH: {},
        MessageKind.COPY_REPLICA_TO: {"home_id": 1, "dest": 4},
        MessageKind.SEND_LOCAL_TO: {"dest": 4},
        MessageKind.EXCHANGE_REPLICA: {"home_id": 0, "replica": bloom},
        MessageKind.RECORD_LRU: {"path": "/a", "home_id": 5},
        MessageKind.PING: {},
        MessageKind.STOP: {},
        MessageKind.REPLY: {
            "found": {"/a": True, "/b": False},
            "finish_vtime": 12.25,
            "home_id": None,
        },
        MessageKind.INVALIDATE: {
            "records": [["/a", 3, 1, 0.5, "delete"]],
        },
        MessageKind.COHORT_HEARTBEAT: {"seq": 9, "acks": {"0": 4, "2": 7}},
        MessageKind.COHORT_SYNC: {"since": 4},
        MessageKind.COHORT_SYNC_REPLY: {"records": [], "base": 4},
        MessageKind.REPL_SHIP: {
            "home": 1,
            "epoch": 2,
            "acked": 6,
            "entries": [
                {"seq": 7, "op": "create", "path": "/a", "new_path": "",
                 "record": meta, "vtime": 0.5},
                {"seq": 8, "op": "rename", "path": "/a", "new_path": "/b",
                 "record": None, "vtime": 0.75},
            ],
        },
        MessageKind.REPL_ACK: {},
        MessageKind.REPL_SYNC: {
            "epoch": 1,
            "checkpoint": '{"format": 1}',
            "base_seqs": {"0": 3, "2": 9},
        },
        MessageKind.REPL_PROMOTE: {},
    }
    return samples[kind]


@pytest.mark.parametrize("kind", list(MessageKind), ids=lambda k: k.value)
def test_every_kind_roundtrips_bit_identically(kind):
    message = Message(
        kind=kind,
        sender=-3,
        payload=_sample_payload(kind),
        request_id=991,
        arrival_vtime=1.875,
    )
    decoded = _roundtrip(message, expects_reply=True)
    assert decoded.kind is kind
    assert decoded.sender == -3
    assert decoded.request_id == 991
    assert decoded.arrival_vtime == 1.875
    assert decoded.trace is None
    assert decoded.reply_to is None


@pytest.mark.parametrize("kind", list(MessageKind), ids=lambda k: k.value)
def test_trace_context_survives_every_kind(kind):
    trace = (0x1234_5678_9ABC, 0x42, 7)
    message = Message(
        kind=kind,
        sender=0,
        payload=_sample_payload(kind),
        request_id=5,
        trace=trace,
    )
    decoded = _roundtrip(message)
    assert decoded.trace == trace


def test_wire_ids_are_frozen():
    # The wire table is protocol, not implementation: renumbering any
    # entry breaks mixed-version topologies.  Pin all 26.
    assert {k.value: v for k, v in KIND_TO_WIRE.items()} == {
        "probe_lru": 1, "probe_local": 2, "probe_segment": 3, "verify": 4,
        "verify_batch": 5, "mutate_batch": 6, "insert": 7, "host_replica": 8,
        "drop_replica": 9, "replace_replica": 10, "publish": 11,
        "copy_replica_to": 12, "send_local_to": 13, "exchange_replica": 14,
        "record_lru": 15, "ping": 16, "stop": 17, "reply": 18,
        "invalidate": 19, "cohort_heartbeat": 20, "cohort_sync": 21,
        "cohort_sync_reply": 22, "repl_ship": 23, "repl_ack": 24,
        "repl_sync": 25, "repl_promote": 26,
    }
    assert len(KIND_TO_WIRE) == len(MessageKind)


def test_payload_value_types_roundtrip():
    message = Message(
        kind=MessageKind.PING,
        sender=1,
        payload={
            "none": None,
            "bools": [True, False],
            "ints": [0, 1, -1, 2 ** 63, -(2 ** 63), 127, 128],
            "floats": [0.0, -2.5, 1e300],
            "str": "héllo/жизнь",
            "bytes": b"\x00\xff\x80",
            "nested": {"deep": [{"x": (1, 2)}]},
        },
        request_id=1,
    )
    decoded = _roundtrip(message)
    payload = decoded.payload
    assert payload["none"] is None
    assert payload["bools"] == [True, False]
    assert payload["ints"] == [0, 1, -1, 2 ** 63, -(2 ** 63), 127, 128]
    assert payload["floats"] == [0.0, -2.5, 1e300]
    assert payload["str"] == "héllo/жизнь"
    assert payload["bytes"] == b"\x00\xff\x80"
    # Tuples are wire-normalized to lists.
    assert payload["nested"] == {"deep": [{"x": [1, 2]}]}


def test_symlink_metadata_roundtrips():
    meta = FileMetadata(
        path="/links/l",
        inode=9,
        kind=FileKind.SYMLINK,
        symlink_target="/data/a.txt",
        uid=-1,
    )
    message = Message(
        kind=MessageKind.INSERT, sender=0, payload={"meta": meta}, request_id=2
    )
    assert _roundtrip(message).payload["meta"] == meta


def test_dict_keys_are_canonicalized():
    a = Message(
        kind=MessageKind.PING, sender=0,
        payload={"b": 1, "a": 2}, request_id=3,
    )
    b = Message(
        kind=MessageKind.PING, sender=0,
        payload={"a": 2, "b": 1}, request_id=3,
    )
    assert encode_frame(a) == encode_frame(b)


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------
def _valid_frame():
    return encode_frame(
        Message(
            kind=MessageKind.VERIFY,
            sender=2,
            payload={"path": "/x"},
            request_id=10,
            trace=(1, 2, 3),
        ),
        expects_reply=True,
    )


def test_every_truncation_is_a_codec_error():
    frame = _valid_frame()
    for cut in range(len(frame)):
        with pytest.raises(CodecError):
            decode_frame(frame[:cut])


def test_trailing_bytes_rejected():
    frame = _valid_frame()
    with pytest.raises(CodecError):
        decode_frame(frame + b"\x00")
    with pytest.raises(CodecError):
        decode_body(frame[4:] + b"\x00")


def test_bad_magic_version_kind_flags_tag():
    body = bytearray(_valid_frame()[4:])
    with pytest.raises(CodecError, match="magic"):
        decode_body(b"XX" + bytes(body[2:]))
    bad_version = bytearray(body)
    bad_version[2] = 99
    with pytest.raises(CodecError, match="version"):
        decode_body(bytes(bad_version))
    bad_kind = bytearray(body)
    bad_kind[3] = 200
    with pytest.raises(CodecError, match="wire id"):
        decode_body(bytes(bad_kind))
    bad_flags = bytearray(body)
    bad_flags[4] = 0xF0
    with pytest.raises(CodecError, match="flag"):
        decode_body(bytes(bad_flags))


def test_oversized_length_prefix_rejected_before_allocation():
    prefix = struct.pack(">I", MAX_FRAME_BYTES + 1)
    with pytest.raises(CodecError, match="MAX_FRAME_BYTES"):
        decode_frame(prefix + b"x")


def test_oversized_body_rejected_at_encode_time():
    message = Message(
        kind=MessageKind.PING,
        sender=0,
        payload={"blob": b"\x00" * (MAX_FRAME_BYTES + 1)},
        request_id=4,
    )
    with pytest.raises(CodecError, match="MAX_FRAME_BYTES"):
        encode_frame(message)


def test_unencodable_payload_fails_on_the_sender():
    message = Message(
        kind=MessageKind.PING, sender=0,
        payload={"obj": object()}, request_id=5,
    )
    with pytest.raises(CodecError, match="cannot encode"):
        encode_frame(message)
    with pytest.raises(CodecError, match="keys must be str"):
        encode_frame(
            Message(
                kind=MessageKind.PING, sender=0,
                payload={"d": {1: "x"}}, request_id=6,
            )
        )


def test_unbounded_varint_rejected():
    header = WIRE_MAGIC + bytes([WIRE_VERSION, 16, 0])
    body = header + b"\xff" * 11  # sender varint never terminates
    with pytest.raises(CodecError, match="varint"):
        decode_body(body)


def test_huge_collection_counts_rejected():
    # A list/dict claiming more elements than bytes remaining must fail
    # fast instead of looping into truncation errors per element.
    good = encode_body(
        Message(kind=MessageKind.PING, sender=0, payload={}, request_id=7),
        expects_reply=False,
    )
    # The final bytes are the payload: dict tag + count 0.  Replace the
    # count with a huge varint.
    assert good.endswith(bytes([0x08, 0x00]))
    evil = good[:-1] + b"\xff\xff\xff\x7f"
    with pytest.raises(CodecError, match="claims"):
        decode_body(evil)


def test_int_beyond_varint_range_rejected_symmetrically():
    message = Message(
        kind=MessageKind.PING, sender=0,
        payload={"n": 1 << 80}, request_id=8,
    )
    with pytest.raises(CodecError, match="varint"):
        encode_frame(message)


# ----------------------------------------------------------------------
# Bloom serialization parity + corruption sweeps (ISSUE 9)
# ----------------------------------------------------------------------
# The packed-bitset rebuild must not move a single wire byte: a filter
# serialized by the new substrate has to be byte-identical to one built
# by the frozen per-bit reference over the same items, both directly
# (``to_bytes``) and inside a codec frame (tag 0x0A).  And a corrupted
# bloom-carrying frame must surface as the typed ``CodecError`` — never
# an ``IndexError`` / ``struct.error`` / ``OverflowError`` leak.
import random

from tests._reference_bloom import RefBloomFilter

_BLOOM_GEOMETRIES = [(61, 3, 0), (64, 4, -2), (509, 5, 7), (1024, 2, 12345)]


def _paired_filters(seed, num_bits, num_hashes, hash_seed):
    rng = random.Random(seed)
    live = BloomFilter(num_bits, num_hashes, hash_seed)
    ref = RefBloomFilter(num_bits, num_hashes, hash_seed)
    for serial in range(rng.randrange(0, 60)):
        item = f"/fuzz/d{rng.randrange(5)}/f{serial}"
        live.add(item)
        ref.add(item)
    return live, ref


@pytest.mark.parametrize("seed", range(12))
def test_bloom_wire_form_matches_reference(seed):
    geometry = _BLOOM_GEOMETRIES[seed % len(_BLOOM_GEOMETRIES)]
    live, ref = _paired_filters(seed, *geometry)
    raw = live.to_bytes()
    assert raw == ref.to_bytes()
    # The same parity must hold through the codec's 0x0A tag: frames
    # carrying either side's bytes are bit-identical.
    message = Message(
        kind=MessageKind.HOST_REPLICA,
        sender=1,
        payload={"home_id": 3, "replica": live},
        request_id=seed,
    )
    frame = encode_frame(message)
    assert raw in frame
    decoded, _ = decode_frame(frame)
    restored = decoded.payload["replica"]
    assert restored == live
    assert restored.num_items == live.num_items
    assert encode_frame(decoded) == frame


def _bloom_frame(seed=3):
    live, _ = _paired_filters(seed, 509, 5, 7)
    return encode_frame(
        Message(
            kind=MessageKind.REPLACE_REPLICA,
            sender=-1,
            payload={"home_id": 2, "replica": live},
            request_id=77,
            trace=(5, 6, 7),
        ),
        expects_reply=True,
    )


def test_bloom_frame_truncation_sweep():
    """Every prefix of a bloom-carrying frame is a typed CodecError."""
    frame = _bloom_frame()
    for cut in range(len(frame)):
        with pytest.raises(CodecError):
            decode_frame(frame[:cut])


def test_bloom_frame_bitflip_sweep():
    """Single bit flips never escape the typed error contract.

    A flip may land in the filter payload and decode as a (different)
    valid filter, or scramble a dict key into a non-canonical order —
    both decode fine.  What must never happen is an untyped exception,
    or a decoded message whose canonical re-encode is not a fixpoint
    (that would break the bit-identical determinism story downstream).
    """
    frame = _bloom_frame()
    body = frame[4:]
    for position in range(len(body)):
        for bit in range(8):
            corrupt = bytearray(body)
            corrupt[position] ^= 1 << bit
            try:
                message, expects_reply = decode_body(bytes(corrupt))
            except CodecError:
                continue
            canonical = encode_body(message, expects_reply)
            reread, reread_expects = decode_body(canonical)
            assert encode_body(reread, reread_expects) == canonical


def test_bloom_length_prefix_vs_header_mismatch():
    """A bloom blob whose varint length disagrees with its claimed
    geometry is rejected before the big-int allocation."""
    live, _ = _paired_filters(1, 64, 4, -2)
    raw = bytearray(live.to_bytes())
    # Claim 2**60 bits in the header while shipping the original bytes.
    raw[0:8] = (1 << 60).to_bytes(8, "big")
    message = Message(
        kind=MessageKind.PING, sender=0, payload={}, request_id=1
    )
    body = bytearray(encode_body(message, expects_reply=False))
    # Replace the empty dict payload with {"r": <corrupt bloom>}.
    assert body.endswith(bytes([0x08, 0x00]))
    del body[-2:]
    body += bytes([0x08, 0x01])          # dict, 1 entry
    body += bytes([0x01]) + b"r"         # key "r"
    body += bytes([0x0A])                # bloom tag
    encoded_len = bytearray()
    length = len(raw)
    while True:
        septet = length & 0x7F
        length >>= 7
        encoded_len.append(septet | (0x80 if length else 0))
        if not length:
            break
    body += bytes(encoded_len) + bytes(raw)
    with pytest.raises(CodecError, match="inconsistent"):
        decode_body(bytes(body))
