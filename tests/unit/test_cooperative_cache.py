"""Unit tests for the cooperative L1 caching extension."""

import dataclasses

import pytest

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.core.query import QueryLevel


@pytest.fixture
def coop_config(small_config):
    return dataclasses.replace(
        small_config, cooperative_lru=True, cooperative_fanout=2
    )


class TestHintSharing:
    def test_peers_learn_from_origin_resolution(self, coop_config):
        cluster = GHBACluster(8, coop_config, seed=4)
        placement = cluster.populate(f"/coop/f{i}" for i in range(100))
        cluster.synchronize_replicas(force=True)
        path, home = next(iter(placement.items()))
        origin = cluster.server_ids()[0]
        cluster.query(path, origin_id=origin)
        group = cluster.group_of(origin)
        warmed = sum(
            1
            for member in group.members()
            if member.lru.peek(path) == home
        )
        # Origin plus cooperative_fanout peers.
        assert warmed == 1 + 2

    def test_hints_counted_as_messages(self, coop_config, small_config):
        plain = GHBACluster(8, small_config, seed=4)
        coop = GHBACluster(8, coop_config, seed=4)
        for cluster in (plain, coop):
            cluster.populate(f"/coop/f{i}" for i in range(50))
            cluster.synchronize_replicas(force=True)
        path = "/coop/f1"
        origin = 0
        plain_result = plain.query(path, origin_id=origin)
        coop_result = coop.query(path, origin_id=origin)
        assert coop_result.messages == plain_result.messages + 2

    def test_fanout_capped_by_group_size(self, small_config):
        config = dataclasses.replace(
            small_config, cooperative_lru=True, cooperative_fanout=50
        )
        cluster = GHBACluster(4, config, seed=1)
        cluster.populate(["/coop/only"])
        cluster.synchronize_replicas(force=True)
        result = cluster.query("/coop/only", origin_id=0)
        group_size = cluster.group_of(0).size
        assert result.found
        # Hints go to at most the other group members.
        for member in cluster.group_of(0).members():
            assert member.lru.peek("/coop/only") is not None or (
                member.server_id != 0 and group_size == 1
            )

    def test_peer_resolves_at_l1_after_hint(self, coop_config):
        cluster = GHBACluster(8, coop_config, seed=4)
        placement = cluster.populate(f"/coop/f{i}" for i in range(100))
        cluster.synchronize_replicas(force=True)
        path, home = next(iter(placement.items()))
        origin = cluster.server_ids()[0]
        cluster.query(path, origin_id=origin)
        group = cluster.group_of(origin)
        hinted_peer = next(
            (
                member.server_id
                for member in group.members()
                if member.server_id != origin and member.lru.peek(path) == home
            ),
            None,
        )
        if hinted_peer is None:
            pytest.skip("rng chose other peers")
        result = cluster.query(path, origin_id=hinted_peer)
        assert result.level is QueryLevel.L1

    def test_disabled_by_default(self, small_config):
        cluster = GHBACluster(8, small_config, seed=4)
        placement = cluster.populate(f"/coop/f{i}" for i in range(50))
        cluster.synchronize_replicas(force=True)
        path = next(iter(placement))
        origin = 0
        cluster.query(path, origin_id=origin)
        group = cluster.group_of(origin)
        for member in group.members():
            if member.server_id != origin:
                assert member.lru.peek(path) is None

    def test_negative_fanout_rejected(self):
        with pytest.raises(ValueError):
            GHBAConfig(cooperative_fanout=-1)
