"""Unit tests for the cohort invalidation protocol (ISSUE 4 tentpole).

Covers the protocol pieces in isolation, without a trace replay:
record versioning and dedupe, gap detection → anti-entropy recovery,
subtree-rename invalidation across members (including the ``/a/b`` vs
``/a/bc`` prefix trap), suspicion → TTL clamp engagement/release, and
the exactly-once ``peer_missing`` accounting that must hold even when
duplication faults multiply protocol traffic (ISSUE 4 satellite 2).
"""

import pytest

from repro.core.config import GHBAConfig
from repro.core.cluster import GHBACluster
from repro.faults import FaultPlan, Partition, PlanFaultInjector
from repro.gateway import CohortConfig, GatewayConfig, GatewayCohort
from repro.gateway.cohort import InvalidationRecord


def _config(seed=33):
    return GHBAConfig(
        max_group_size=4,
        expected_files_per_mds=200,
        lru_capacity=128,
        lru_filter_bits=1 << 10,
        seed=seed,
    )


def _cluster(paths, seed=33):
    cluster = GHBACluster(8, _config(seed), seed=seed)
    cluster.populate(paths)
    cluster.synchronize_replicas(force=True)
    return cluster


def _cohort(paths, size=2, seed=33, **cfg_overrides):
    cfg_overrides.setdefault("gateway", GatewayConfig(lease_ttl_s=60.0))
    cohort = GatewayCohort(
        _cluster(paths, seed), size, CohortConfig(**cfg_overrides)
    )
    return cohort


def _counter(cohort, name, *labels):
    return cohort.counter_snapshot()[f"gateway_cohort_{name}_total"].get(
        labels, 0.0
    )


class TestInvalidationRecord:
    def test_payload_roundtrip(self):
        record = InvalidationRecord(
            origin=3, seq=17, op="rename", path="/a", new_path="/b", epoch=1.25
        )
        assert InvalidationRecord.from_payload(record.as_payload()) == record

    def test_to_event_carries_subtree_prefixes(self):
        record = InvalidationRecord(
            origin=0, seq=1, op="rename", path="/old", new_path="/new"
        )
        event = record.to_event()
        assert (event.op, event.path, event.new_path) == (
            "rename", "/old", "/new",
        )


class TestCohortConfig:
    def test_staleness_bound_covers_degraded_path(self):
        cfg = CohortConfig(
            heartbeat_interval_s=0.05,
            suspect_after_s=0.15,
            ttl_clamp_s=0.10,
            scheduling_slack_s=0.10,
        )
        # One heartbeat to notice the gap, the suspicion grace period,
        # then no lease survives past the clamp — plus tick slack.
        assert cfg.staleness_bound_s == pytest.approx(0.40)

    def test_heartbeat_slower_than_suspicion_rejected(self):
        with pytest.raises(ValueError):
            CohortConfig(heartbeat_interval_s=0.5, suspect_after_s=0.1)


class TestInvalidationPropagation:
    def test_delete_through_one_member_invalidates_the_other(self):
        cohort = _cohort(["/fs/a", "/fs/b"])
        left, right = cohort.members
        assert right.lookup("/fs/a", 0.0).found
        assert "/fs/a" in right.client.cache

        left.delete("/fs/a", 0.1)
        cohort.step(0.1)

        assert "/fs/a" not in right.client.cache
        assert _counter(cohort, "applied", "1", "delete") == 1
        assert not right.lookup("/fs/a", 0.2).found

    def test_rename_subtree_spares_sibling_prefix(self):
        # The /a/b vs /a/bc trap: renaming /fs/a/b must drop the peer's
        # /fs/a/b/f lease but leave /fs/a/bc/f untouched.
        cohort = _cohort(["/fs/a/b/f", "/fs/a/bc/f"])
        left, right = cohort.members
        right.lookup("/fs/a/b/f", 0.0)
        right.lookup("/fs/a/bc/f", 0.0)
        version_before = right.client.cache.peek("/fs/a/bc/f").version

        left.rename("/fs/a/b", "/fs/a/moved", 0.1)
        cohort.step(0.1)

        assert "/fs/a/b/f" not in right.client.cache
        assert right.client.cache.peek("/fs/a/bc/f").version == version_before

    def test_create_through_one_member_kills_peer_negative(self):
        cohort = _cohort(["/fs/a"])
        left, right = cohort.members
        assert not right.lookup("/fs/new", 0.0).found  # negative now cached
        assert right.client.cache.peek("/fs/new").negative

        left.create("/fs/new", 0.1)
        cohort.step(0.1)
        assert right.lookup("/fs/new", 0.2).found


class TestSequencing:
    def test_duplicate_records_discarded_once_applied(self):
        cohort = _cohort(["/fs/a"])
        left, right = cohort.members
        left.delete("/fs/a", 0.1)
        cohort.step(0.1)
        record = left.log[0]

        assert right._ingest(record, 0.2) is False
        assert _counter(cohort, "duplicates", "1") == 1
        assert right.applied_seq[0] == 1

    def test_gap_buffers_then_sync_recovers_in_order(self):
        cohort = _cohort(["/fs/a", "/fs/b", "/fs/c"])
        left, right = cohort.members
        for path in ("/fs/a", "/fs/b", "/fs/c"):
            right.lookup(path, 0.0)

        # Publish three deletes but feed the peer only seq 3: a gap.
        for index, path in enumerate(("/fs/a", "/fs/b", "/fs/c")):
            left.client.delete(path, 0.1)
            left.log.append(
                InvalidationRecord(
                    origin=0, seq=index + 1, op="delete", path=path, epoch=0.1
                )
            )
        right._ingest(left.log[2], 0.2)
        assert right.applied_seq[0] == 0  # buffered, nothing applied
        assert right.gap_since[0] == 0.2
        assert _counter(cohort, "gaps", "1") == 1
        assert _counter(cohort, "sync_requests", "1") == 1

        # The sync request is in member 0's mailbox; one round trip heals.
        left.drain(0.3)
        right.drain(0.3)
        assert right.applied_seq[0] == 3
        assert right.gap_since[0] is None
        assert all(
            path not in right.client.cache
            for path in ("/fs/a", "/fs/b", "/fs/c")
        )
        assert _counter(cohort, "sync_records", "1") == 2  # seq 1 and 2


class TestSuspicionAndClamp:
    def test_silent_peer_engages_clamp_then_release(self):
        cohort = _cohort(
            ["/fs/a"],
            heartbeat_interval_s=0.05,
            suspect_after_s=0.15,
            ttl_clamp_s=0.10,
        )
        left, right = cohort.members
        left.lookup("/fs/a", 0.0)
        lease = left.client.cache.peek("/fs/a")
        assert lease.expires_at > 1.0  # long lease while healthy

        # Only member 0 ticks: member 1 goes silent past suspect_after.
        left.tick(0.2)
        assert right.member_id in left.suspected
        assert left.clamped
        assert _counter(cohort, "peer_missing", "0", "1") == 1
        assert _counter(cohort, "clamp_engaged", "0") == 1
        # The surviving lease was shortened to the clamp.
        assert lease.expires_at <= 0.2 + 0.10

        # Peer heartbeats again: suspicion clears, clamp releases.
        right.tick(0.25)
        left.tick(0.3)
        assert not left.suspected
        assert not left.clamped
        assert _counter(cohort, "peer_recovered", "0", "1") == 1
        assert _counter(cohort, "clamp_released", "0") == 1

    def test_publish_reports_suspected_peer_missing_once(self):
        cohort = _cohort(["/fs/a", "/fs/b"], suspect_after_s=0.1)
        left, right = cohort.members
        left.tick(0.2)  # right never ticked: suspected
        assert right.member_id in left.suspected

        first = left._publish("delete", "/fs/a", "", 0.3)
        second = left._publish("delete", "/fs/b", "", 0.3)
        # Deduplicated tuple, stable across repeated publishes.
        assert first.missing == (right.member_id,)
        assert second.missing == (right.member_id,)
        assert not first.complete


class TestMissingExactlyOnceUnderDuplication:
    """ISSUE 4 satellite 2: duplication faults must not double-count
    a peer outage — one partition window, one ``peer_missing`` tick."""

    def _run(self, duplicate_rate):
        plan = FaultPlan(
            seed=5,
            duplicate_rate=duplicate_rate,
            partitions=(Partition(start_s=0.5, end_s=1.0, island=(2,)),),
        )
        cluster = _cluster(["/fs/a", "/fs/b"], seed=5)
        cohort = GatewayCohort(
            cluster,
            3,
            CohortConfig(gateway=GatewayConfig(lease_ttl_s=60.0)),
            faults=PlanFaultInjector(plan, metrics=cluster.metrics),
        )
        clock = 0.0
        serial = 0
        while clock < 1.6:
            cohort.step(clock)
            # A steady mutation stream keeps INVALIDATE records on the
            # wire so duplication faults have something to duplicate.
            if serial % 4 == 0:
                publisher = cohort.members[serial % cohort.size]
                publisher.create(f"/fs/n{serial}", clock)
            serial += 1
            clock += 0.025
        cohort.settle(1.6)
        return cohort

    def test_one_outage_counts_once_despite_duplicates(self):
        # Heavy duplication: every heartbeat may arrive many times, and
        # the islanded window makes both sides suspect each other.
        cohort = self._run(duplicate_rate=0.9)
        for gateway, peer in (("0", "2"), ("1", "2"), ("2", "0"), ("2", "1")):
            assert _counter(cohort, "peer_missing", gateway, peer) == 1, (
                gateway, peer,
            )
        # Members on the same side of the partition never suspected
        # each other.
        assert _counter(cohort, "peer_missing", "0", "1") == 0
        assert _counter(cohort, "peer_missing", "1", "0") == 0
        # And everyone recovered exactly once after the heal.
        for gateway, peer in (("0", "2"), ("1", "2"), ("2", "0"), ("2", "1")):
            assert _counter(cohort, "peer_recovered", gateway, peer) == 1

    def test_duplicate_records_do_not_reapply(self):
        cohort = self._run(duplicate_rate=0.9)
        total_dupes = sum(
            cohort.counter_snapshot()[
                "gateway_cohort_duplicates_total"
            ].values()
        )
        assert total_dupes > 0, "duplication faults never fired"
        # Dedupe means applied counts can never exceed published * peers.
        published = sum(
            cohort.counter_snapshot()[
                "gateway_cohort_published_total"
            ].values()
        )
        applied = sum(
            cohort.counter_snapshot()["gateway_cohort_applied_total"].values()
        )
        assert applied <= published * (cohort.size - 1)


class TestWritebackFlushAckMinting:
    """Invalidation records are minted at flush-ack, never at enqueue
    (ISSUE 5): an unflushed mutation has not happened as far as the
    fleet — and every peer — is concerned."""

    def _writeback_cohort(self, paths):
        return _cohort(
            paths,
            gateway=GatewayConfig(
                lease_ttl_s=60.0,
                writeback=True,
                flush_max_pending=100,
                flush_age_s=1e9,
            ),
        )

    def test_buffered_create_publishes_nothing(self):
        cohort = self._writeback_cohort(["/fs/a"])
        left, right = cohort.members
        assert not right.lookup("/fs/new", 0.0).found  # negative cached
        left.create("/fs/new", 0.05)
        cohort.step(0.1)
        assert left.published == 0
        # The peer's negative lease is untouched: nothing happened yet.
        assert right.client.cache.peek("/fs/new").negative

    def test_flush_ack_mints_and_invalidates_peer(self):
        cohort = self._writeback_cohort(["/fs/a"])
        left, right = cohort.members
        assert not right.lookup("/fs/new", 0.0).found
        left.create("/fs/new", 0.05)
        cohort.flush_barrier(0.2)
        assert left.published == 1
        cohort.step(0.25)
        assert right.lookup("/fs/new", 0.3).found

    def test_lost_mutation_mints_nothing(self):
        cohort = self._writeback_cohort(["/fs/a"])
        left, _ = cohort.members
        # Enqueue, then absorb with a delete: the pair annihilates in
        # the buffer, the fleet never hears of it, nothing publishes.
        left.create("/fs/ghost", 0.0)
        left.delete("/fs/ghost", 0.1)
        cohort.flush_barrier(0.2)
        # The delete acked as an applied no-op (changed=False): no mint.
        assert left.published == 0


class TestLogTruncation:
    """Cumulative-ack-driven truncation of the invalidation log (the PR 4
    unbounded-log fix), and the two recovery paths a gap-recovering peer
    can take afterwards."""

    def _settled_cohort(self, publishes=5):
        cohort = _cohort(["/fs/a"])
        left, right = cohort.members
        clock = 0.0
        for i in range(publishes):
            left.create(f"/fs/t{i}", clock)
            clock += 0.06
            cohort.step(clock)
        # Extra heartbeat rounds so acks round-trip and truncation runs.
        clock = cohort.settle(clock + 0.5)
        return cohort, left, right, clock

    def test_acked_records_truncate(self):
        cohort, left, right, _ = self._settled_cohort()
        assert left.published == 5
        assert right.applied_seq[left.member_id] == 5
        # Every record the peer acked is gone from memory; the offset
        # remembers where the log now starts.
        assert left.log_base == 5
        assert left.log == []
        assert _counter(cohort, "log_truncated", "0") == 5

    def test_publishing_continues_after_truncation(self):
        cohort, left, right, clock = self._settled_cohort()
        left.create("/fs/after", clock)
        assert left.log[-1].seq == left.published == 6
        cohort.settle(clock + 0.5)
        assert right.applied_seq[left.member_id] == 6

    def test_sync_serves_offset_suffix_after_truncation(self):
        """A peer whose gap starts at or above the truncation floor
        recovers from the truncated log's suffix — no re-clamp."""
        cohort, left, right, clock = self._settled_cohort()
        # Two fresh records the peer has not heard yet (no step between).
        left.create("/fs/s1", clock)
        left.create("/fs/s2", clock)
        assert left.log_base == 5 and len(left.log) == 2
        right._note_gap(left.member_id, clock + 1.0)
        cohort.settle(clock + 1.5)
        assert _counter(cohort, "sync_requests", "1") == 1
        assert right.applied_seq[left.member_id] == 7
        # Recovery came record-by-record from the truncated suffix (the
        # multicast copies dedupe against it), never via the re-clamp.
        assert _counter(cohort, "reclamp", "1") == 0
        assert _counter(cohort, "applied", "1", "create") == 7

    def test_unrecoverable_gap_falls_back_to_reclamp(self):
        """A peer asking for records below the truncation floor cannot
        be caught up record-by-record: it skips the gap and clamps every
        surviving lease instead."""
        cohort, left, right, clock = self._settled_cohort()
        # Simulate reset state: the peer regressed below the floor.
        right.applied_seq[left.member_id] = 0
        right.gap_since[left.member_id] = None
        right.lookup("/fs/a", clock)  # a live lease the clamp must bound
        right._note_gap(left.member_id, clock + 1.0)
        end = cohort.settle(clock + 1.5)
        assert _counter(cohort, "reclamp", "1") == 1
        # The gap closed by jumping to the floor, not replaying records.
        assert right.applied_seq[left.member_id] >= left.log_base
        assert right.gap_since[left.member_id] is None
        entry = right.client.cache.peek("/fs/a")
        assert entry is not None
        assert entry.expires_at <= end + cohort.config.ttl_clamp_s + 1e-9
