"""Unit tests for the hash-based metadata placement baseline."""

import pytest

from repro.baselines.hash_metadata import HashMetadataCluster
from repro.metadata.attributes import FileMetadata


@pytest.fixture
def cluster():
    cluster = HashMetadataCluster(10, seed=1)
    cluster.populate(f"/vol/dir{d}/f{i}" for d in range(5) for i in range(40))
    return cluster


class TestPlacement:
    def test_lookup_is_deterministic(self, cluster):
        assert cluster.home_of("/vol/dir0/f0") == cluster.home_of("/vol/dir0/f0")

    def test_lookup_finds_inserted(self, cluster):
        meta = cluster.lookup("/vol/dir1/f3")
        assert meta is not None
        assert meta.path == "/vol/dir1/f3"

    def test_lookup_missing_none(self, cluster):
        assert cluster.lookup("/nope") is None

    def test_hashing_balances_load(self, cluster):
        """Table 1: hash-based mapping's load-balance strength."""
        assert cluster.load_imbalance() < 2.0

    def test_insert_goes_to_hash_home(self):
        cluster = HashMetadataCluster(4)
        meta = FileMetadata(path="/x/y", inode=1)
        home = cluster.insert_file(meta)
        assert home == cluster.home_of("/x/y")

    def test_rejects_zero_servers(self):
        with pytest.raises(ValueError):
            HashMetadataCluster(0)


class TestRenameCost:
    def test_rename_migrates_most_records(self, cluster):
        """Section 1.1: renaming an upper directory migrates ~(1 - 1/N)."""
        report = cluster.rename_subtree("/vol/dir0", "/vol/renamed")
        assert report.rehashed == 40
        assert report.migrated >= 40 * 0.7  # expectation 0.9 at N=10
        # Every record remains reachable under its new name.
        for i in range(40):
            assert cluster.lookup(f"/vol/renamed/f{i}") is not None
            assert cluster.lookup(f"/vol/dir0/f{i}") is None

    def test_rename_noop(self, cluster):
        report = cluster.rename_subtree("/vol/dir0", "/vol/dir0")
        assert report.rehashed == 0

    def test_rename_does_not_touch_other_dirs(self, cluster):
        cluster.rename_subtree("/vol/dir0", "/vol/renamed")
        assert cluster.lookup("/vol/dir1/f0") is not None

    def test_exact_prefix_match_only(self):
        """'/a/bc' must not be renamed when '/a/b' is."""
        cluster = HashMetadataCluster(4)
        cluster.populate(["/a/b/f", "/a/bc/f"])
        cluster.rename_subtree("/a/b", "/a/z")
        assert cluster.lookup("/a/z/f") is not None
        assert cluster.lookup("/a/bc/f") is not None


class TestResizeCost:
    def test_add_server_rehashes_everything(self, cluster):
        total = cluster.file_count
        report = cluster.add_server()
        assert report.rehashed == total
        assert report.migrated >= total * 0.7  # ~(1 - 1/(N+1))
        assert cluster.num_servers == 11
        assert cluster.file_count == total

    def test_remove_server_preserves_records(self, cluster):
        total = cluster.file_count
        report = cluster.remove_server()
        assert cluster.num_servers == 9
        assert cluster.file_count == total
        assert report.migrated > 0
        assert cluster.lookup("/vol/dir2/f7") is not None

    def test_cannot_remove_last(self):
        with pytest.raises(ValueError):
            HashMetadataCluster(1).remove_server()

    def test_lookups_correct_after_resize(self, cluster):
        cluster.add_server()
        for d in range(5):
            for i in range(0, 40, 7):
                path = f"/vol/dir{d}/f{i}"
                meta = cluster.lookup(path)
                assert meta is not None and meta.path == path
