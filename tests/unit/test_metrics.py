"""Unit tests for the cluster health summary."""

import pytest

from repro.core.cluster import GHBACluster
from repro.core.metrics import ClusterSummary, format_summary, summarize
from repro.metadata.attributes import FileMetadata


class TestSummarize:
    def test_structure_fields(self, populated_cluster):
        cluster, placement = populated_cluster
        summary = summarize(cluster)
        assert summary.num_servers == cluster.num_servers
        assert summary.num_groups == cluster.num_groups
        assert sum(summary.group_sizes) == cluster.num_servers
        assert summary.total_files == len(placement)

    def test_query_metrics_accumulate(self, populated_cluster):
        cluster, placement = populated_cluster
        for path in list(placement)[:30]:
            cluster.query(path)
        summary = summarize(cluster)
        assert summary.total_queries >= 30
        assert summary.mean_latency_ms > 0
        assert summary.p95_latency_ms >= summary.mean_latency_ms * 0.2
        assert sum(summary.level_fractions.values()) == pytest.approx(1.0)

    def test_staleness_tracks_unpublished_inserts(self, populated_cluster):
        cluster, _ = populated_cluster
        before = summarize(cluster).stale_bits_outstanding
        for i in range(20):
            cluster.insert_file(
                FileMetadata(path=f"/stale/m{i}", inode=i), home_id=0
            )
        after = summarize(cluster).stale_bits_outstanding
        assert after > before
        cluster.synchronize_replicas(force=True)
        assert summarize(cluster).stale_bits_outstanding == 0

    def test_healthy_cluster_reports_healthy(self, populated_cluster):
        cluster, _ = populated_cluster
        assert summarize(cluster).healthy()

    def test_format_renders_every_section(self, populated_cluster):
        cluster, placement = populated_cluster
        cluster.query(next(iter(placement)))
        text = format_summary(summarize(cluster))
        for fragment in ("servers / groups", "files", "theta", "queries",
                         "stale bits", "LRU hit rate"):
            assert fragment in text

    def test_empty_query_history(self, small_cluster):
        summary = summarize(small_cluster)
        assert summary.total_queries == 0
        assert summary.mean_latency_ms == 0.0
        assert summary.level_fractions == {}

    def test_mean_theta_consistent_with_servers(self, small_cluster):
        summary = summarize(small_cluster)
        thetas = [s.theta for s in small_cluster.servers.values()]
        assert summary.mean_theta == pytest.approx(sum(thetas) / len(thetas))
