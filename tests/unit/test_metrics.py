"""Unit tests for the cluster health summary."""

import dataclasses

import pytest

from repro.core.cluster import GHBACluster
from repro.core.metrics import (
    DEFAULT_HEALTH_LIMITS,
    ClusterSummary,
    HealthLimits,
    format_summary,
    summarize,
)
from repro.metadata.attributes import FileMetadata


def _summary(**overrides):
    """A healthy baseline ClusterSummary with targeted overrides."""
    base = dict(
        num_servers=10,
        num_groups=2,
        group_sizes=[5, 5],
        total_files=1_000,
        mean_files_per_server=100.0,
        file_imbalance=1.2,
        mean_theta=2.0,
        replica_imbalance=1,
        bloom_bytes_per_server=1024.0,
        level_fractions={"L1": 1.0},
        mean_latency_ms=0.1,
        p95_latency_ms=0.2,
        total_queries=100,
        total_messages=50,
        false_forwards=0,
        stale_bits_outstanding=0,
        mean_lru_hit_rate=0.5,
    )
    base.update(overrides)
    return ClusterSummary(**base)


class TestSummarize:
    def test_structure_fields(self, populated_cluster):
        cluster, placement = populated_cluster
        summary = summarize(cluster)
        assert summary.num_servers == cluster.num_servers
        assert summary.num_groups == cluster.num_groups
        assert sum(summary.group_sizes) == cluster.num_servers
        assert summary.total_files == len(placement)

    def test_query_metrics_accumulate(self, populated_cluster):
        cluster, placement = populated_cluster
        for path in list(placement)[:30]:
            cluster.query(path)
        summary = summarize(cluster)
        assert summary.total_queries >= 30
        assert summary.mean_latency_ms > 0
        assert summary.p95_latency_ms >= summary.mean_latency_ms * 0.2
        assert sum(summary.level_fractions.values()) == pytest.approx(1.0)

    def test_staleness_tracks_unpublished_inserts(self, populated_cluster):
        cluster, _ = populated_cluster
        before = summarize(cluster).stale_bits_outstanding
        for i in range(20):
            cluster.insert_file(
                FileMetadata(path=f"/stale/m{i}", inode=i), home_id=0
            )
        after = summarize(cluster).stale_bits_outstanding
        assert after > before
        cluster.synchronize_replicas(force=True)
        assert summarize(cluster).stale_bits_outstanding == 0

    def test_healthy_cluster_reports_healthy(self, populated_cluster):
        cluster, _ = populated_cluster
        assert summarize(cluster).healthy()

    def test_format_renders_every_section(self, populated_cluster):
        cluster, placement = populated_cluster
        cluster.query(next(iter(placement)))
        text = format_summary(summarize(cluster))
        for fragment in ("servers / groups", "files", "theta", "queries",
                         "stale bits", "LRU hit rate"):
            assert fragment in text

    def test_empty_query_history(self, small_cluster):
        summary = summarize(small_cluster)
        assert summary.total_queries == 0
        assert summary.mean_latency_ms == 0.0
        assert summary.level_fractions == {}

    def test_mean_theta_consistent_with_servers(self, small_cluster):
        summary = summarize(small_cluster)
        thetas = [s.theta for s in small_cluster.servers.values()]
        assert summary.mean_theta == pytest.approx(sum(thetas) / len(thetas))


class TestHealthLimits:
    def test_defaults_frozen_and_stable(self):
        assert DEFAULT_HEALTH_LIMITS == HealthLimits()
        assert DEFAULT_HEALTH_LIMITS.max_file_imbalance == 2.0
        assert DEFAULT_HEALTH_LIMITS.max_replica_imbalance == 2
        assert DEFAULT_HEALTH_LIMITS.min_files_per_server == 10
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_HEALTH_LIMITS.max_file_imbalance = 3.0

    def test_healthy_baseline(self):
        assert _summary().healthy()

    def test_zero_servers_unhealthy(self):
        assert not _summary(
            num_servers=0, group_sizes=[], total_files=0
        ).healthy()

    def test_file_imbalance_branch(self):
        assert not _summary(file_imbalance=2.5).healthy()
        # A custom limit admits the same summary.
        assert _summary(file_imbalance=2.5).healthy(
            HealthLimits(max_file_imbalance=3.0)
        )

    def test_file_imbalance_forgiven_for_tiny_population(self):
        # 10 servers * 10 min files = 100; below that, lumpiness is fine.
        assert _summary(file_imbalance=5.0, total_files=80).healthy()
        assert not _summary(file_imbalance=5.0, total_files=101).healthy()

    def test_min_files_threshold_configurable(self):
        limits = HealthLimits(min_files_per_server=200)
        assert _summary(file_imbalance=5.0, total_files=1_000).healthy(limits)

    def test_replica_imbalance_branch(self):
        assert not _summary(replica_imbalance=3).healthy()
        assert _summary(replica_imbalance=3).healthy(
            HealthLimits(max_replica_imbalance=3)
        )

    def test_legacy_positional_float_still_works(self):
        # healthy(1.1) predates HealthLimits; it must mean max_imbalance.
        assert not _summary(file_imbalance=1.5).healthy(1.1)
        assert _summary(file_imbalance=1.5).healthy(2)

    def test_max_imbalance_keyword_overrides_limits(self):
        limits = HealthLimits(max_file_imbalance=1.1)
        assert _summary(file_imbalance=1.5).healthy(limits, max_imbalance=2.0)
        assert not _summary(file_imbalance=1.5).healthy(
            limits, max_imbalance=1.2
        )
