"""Unit tests for the gateway lease cache (repro.gateway.cache)."""

import pytest

from repro.gateway.cache import CacheEntry, GatewayCache
from repro.metadata.attributes import FileMetadata
from repro.metadata.namespace import Namespace


def _record(path, inode=1):
    return FileMetadata(path=path, inode=inode)


class TestLeases:
    def test_miss_then_hit(self):
        cache = GatewayCache(lease_ttl_s=5.0)
        assert not cache.get("/a/f", 0.0).hit
        cache.put("/a/f", 3, _record("/a/f"), 0.0)
        lookup = cache.get("/a/f", 1.0)
        assert lookup.hit and not lookup.negative
        assert lookup.home_id == 3
        assert lookup.record.path == "/a/f"

    def test_lease_expires_into_prediction(self):
        cache = GatewayCache(lease_ttl_s=5.0)
        cache.put("/a/f", 3, _record("/a/f"), 0.0)
        lookup = cache.get("/a/f", 5.0)  # TTL boundary: expired
        assert not lookup.hit
        assert lookup.predicted_home == 3
        assert cache.stats.expired == 1

    def test_negative_lease_shorter_ttl(self):
        cache = GatewayCache(lease_ttl_s=5.0, negative_ttl_s=0.5)
        cache.put_negative("/gone", 0.0)
        assert cache.get("/gone", 0.4).negative
        late = cache.get("/gone", 0.6)
        assert not late.hit
        # A negative entry predicts nothing — it has no home.
        assert late.predicted_home is None

    def test_refresh_bumps_version(self):
        cache = GatewayCache()
        first = cache.put("/a/f", 1, _record("/a/f"), 0.0)
        second = cache.put("/a/f", 2, _record("/a/f"), 1.0)
        assert (first.version, second.version) == (0, 1)
        assert cache.get("/a/f", 1.5).home_id == 2

    def test_hit_rate(self):
        cache = GatewayCache()
        cache.put("/a/f", 1, _record("/a/f"), 0.0)
        cache.get("/a/f", 0.1)
        cache.get("/nope", 0.1)
        assert cache.hit_rate() == pytest.approx(0.5)  # one hit, one miss


class TestLRU:
    def test_capacity_evicts_least_recent(self):
        cache = GatewayCache(capacity=2)
        cache.put("/a", 1, _record("/a"), 0.0)
        cache.put("/b", 1, _record("/b"), 0.0)
        cache.get("/a", 0.1)  # refresh /a's recency
        cache.put("/c", 1, _record("/c"), 0.2)
        assert "/a" in cache and "/c" in cache
        assert "/b" not in cache
        assert cache.stats.evictions == 1

    def test_pinned_entries_survive_eviction(self):
        cache = GatewayCache(capacity=2)
        cache.put("/hot", 1, _record("/hot"), 0.0, hot=True)
        cache.put("/b", 1, _record("/b"), 0.1)
        cache.put("/c", 1, _record("/c"), 0.2)
        assert "/hot" in cache  # oldest, but pinned
        assert "/b" not in cache

    def test_all_pinned_degenerate_still_bounded(self):
        cache = GatewayCache(capacity=2)
        for i, path in enumerate(["/a", "/b", "/c"]):
            cache.put(path, 1, _record(path), float(i), hot=True)
        assert len(cache) == 2

    def test_pin_extends_lease(self):
        cache = GatewayCache(lease_ttl_s=1.0, hot_lease_ttl_s=10.0)
        cache.put("/hot", 1, _record("/hot"), 0.0)
        assert cache.pin("/hot", 0.5)
        assert cache.get("/hot", 5.0).hit  # far beyond the plain TTL
        assert cache.pinned_paths() == ["/hot"]

    def test_pin_refuses_negative_and_missing(self):
        cache = GatewayCache()
        cache.put_negative("/gone", 0.0)
        assert not cache.pin("/gone", 0.0)
        assert not cache.pin("/absent", 0.0)

    def test_refresh_preserves_pin(self):
        cache = GatewayCache(capacity=2)
        cache.put("/hot", 1, _record("/hot"), 0.0, hot=True)
        cache.put("/hot", 2, _record("/hot"), 1.0)  # plain refresh
        assert cache.peek("/hot").pinned


class TestInvalidation:
    def test_create_and_delete_invalidate_exact_path(self):
        cache = GatewayCache()
        cache.put_negative("/new", 0.0)
        assert cache.invalidate("/new", cause="create")
        cache.put("/old", 1, _record("/old"), 0.0)
        assert cache.invalidate("/old", cause="delete")
        assert len(cache) == 0
        assert cache.stats.invalidations == {"create": 1, "delete": 1}

    def test_invalidate_subtree_scopes_to_descendants(self):
        cache = GatewayCache()
        for path in ["/a", "/a/f1", "/a/d/f2", "/ab/f3", "/b/f4"]:
            cache.put(path, 1, _record(path), 0.0)
        dropped = cache.invalidate_subtree("/a")
        # /ab/f3 shares the string prefix but is NOT under /a.
        assert dropped == 3
        assert "/ab/f3" in cache and "/b/f4" in cache

    def test_invalidate_home_drops_all_leases_for_server(self):
        cache = GatewayCache()
        cache.put("/a", 1, _record("/a"), 0.0)
        cache.put("/b", 2, _record("/b"), 0.0)
        cache.put("/c", 1, _record("/c"), 0.0)
        assert cache.invalidate_home(1) == 2
        assert list(cache.pinned_paths()) == []
        assert "/b" in cache


class TestRenameCorrectness:
    """The rename-correctness satellite: gateway invalidation mirrors the
    authoritative namespace semantics of :mod:`repro.metadata.namespace`."""

    def _tree(self):
        ns = Namespace()
        ns.makedirs("/proj/src/deep")
        ns.create_file("/proj/src/a.c")
        ns.create_file("/proj/src/deep/b.c")
        ns.makedirs("/projects")
        ns.create_file("/projects/readme")
        return ns

    def test_descendants_resolve_under_new_prefix(self):
        ns = self._tree()
        moved = ns.rename("/proj/src", "/proj/lib")
        assert moved == 4  # src, deep, a.c, b.c
        assert ns.resolve("/proj/lib/deep/b.c").path == "/proj/lib/deep/b.c"
        assert not ns.exists("/proj/src/a.c")

    def test_gateway_cache_tracks_namespace_rename(self):
        ns = self._tree()
        cache = GatewayCache()
        for meta in ns.walk("/proj/src"):
            cache.put(meta.path, 1, meta, 0.0)
        cache.put("/projects/readme", 2, ns.stat("/projects/readme"), 0.0)

        ns.rename("/proj/src", "/proj/lib")
        cache.invalidate_subtree("/proj/src", cause="rename")
        cache.invalidate_subtree("/proj/lib", cause="rename")

        # Every cached descendant of the renamed directory is gone...
        for stale in ["/proj/src", "/proj/src/a.c", "/proj/src/deep/b.c"]:
            assert stale not in cache
        # ...while the sibling that merely shares a string prefix survives
        # and still agrees with the namespace.
        assert "/projects/readme" in cache
        assert ns.resolve("/projects/readme").path == "/projects/readme"

        # Re-resolving through the namespace repopulates correct leases.
        fresh = ns.resolve("/proj/lib/a.c")
        cache.put(fresh.path, 1, fresh, 1.0)
        assert cache.get("/proj/lib/a.c", 1.5).record == fresh


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            GatewayCache(capacity=0)
        with pytest.raises(ValueError):
            GatewayCache(lease_ttl_s=0.0)

    def test_entry_freshness_boundary(self):
        entry = CacheEntry(
            path="/a", home_id=1, record=None, expires_at=2.0
        )
        assert entry.fresh(1.999)
        assert not entry.fresh(2.0)
