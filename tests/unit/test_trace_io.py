"""Unit tests for trace serialization."""

import pytest

from repro.traces.io import iter_trace, read_trace, write_trace
from repro.traces.profiles import HP_PROFILE
from repro.traces.records import MetadataOp, TraceRecord
from repro.traces.synthetic import generate_trace


class TestRoundTrip:
    def test_round_trip_preserves_records(self, tmp_path):
        records = generate_trace(HP_PROFILE, 100, 300, seed=1)
        path = tmp_path / "trace.tsv"
        written = write_trace(records, path)
        assert written == 300
        restored = read_trace(path)
        assert len(restored) == 300
        for original, loaded in zip(records, restored):
            assert loaded.op == original.op
            assert loaded.path == original.path
            assert loaded.uid == original.uid
            assert loaded.host == original.host
            assert loaded.timestamp == pytest.approx(
                original.timestamp, abs=1e-6
            )

    def test_rename_round_trip(self, tmp_path):
        records = [
            TraceRecord(1.5, MetadataOp.RENAME, "/a", new_path="/b", uid=3)
        ]
        path = tmp_path / "t.tsv"
        write_trace(records, path)
        loaded = read_trace(path)[0]
        assert loaded.op is MetadataOp.RENAME
        assert loaded.new_path == "/b"

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.tsv"
        path.write_text(
            "# header\n"
            "\n"
            "1.000000\tstat\t/f\t0\t0\t0\n"
        )
        assert len(read_trace(path)) == 1

    def test_iter_trace_streams(self, tmp_path):
        records = generate_trace(HP_PROFILE, 50, 100, seed=2)
        path = tmp_path / "t.tsv"
        write_trace(records, path)
        count = sum(1 for _ in iter_trace(path))
        assert count == 100


class TestErrors:
    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1.0\tstat\n")
        with pytest.raises(ValueError, match="fields"):
            read_trace(path)

    def test_unknown_op(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("1.0\tfrobnicate\t/f\t0\t0\t0\n")
        with pytest.raises(ValueError, match="unknown op"):
            read_trace(path)
