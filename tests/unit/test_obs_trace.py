"""Unit tests for the span/tracer layer (`repro.obs.trace`)."""

import pytest

from repro.obs.trace import (
    EVENT_KINDS,
    NULL_TRACER,
    CollectingTracer,
    NullTracer,
    Span,
    SpanEvent,
)


class TestSpanLifecycle:
    def test_open_span_accumulates_events(self):
        span = Span(0, "/a/b", origin_id=3)
        span.event("l1_probe", target=3, latency_ms=0.002, messages=0, hits=1)
        span.event("forward", target=7, latency_ms=0.4, messages=2)
        assert len(span) == 2
        assert [e.kind for e in span] == ["l1_probe", "forward"]
        assert span.events[0].detail == {"hits": 1}
        assert not span.finished

    def test_finish_seals_outcome(self):
        span = Span(1, "/a", origin_id=0)
        span.event("l1_probe", latency_ms=0.1, messages=0)
        span.finish("L1", home_id=5, latency_ms=0.1, messages=0)
        assert span.finished
        assert span.level == "L1"
        assert span.home_id == 5
        assert span.latency_ms == 0.1

    def test_event_after_finish_rejected(self):
        span = Span(2, "/a", origin_id=0)
        span.finish("L1", 0, 0.0, 0)
        with pytest.raises(ValueError):
            span.event("l1_probe")
        with pytest.raises(ValueError):
            span.finish("L2", 0, 0.0, 0)

    def test_level_path_collapses_repeats(self):
        span = Span(3, "/a", origin_id=0)
        for kind in ("l1_probe", "l2_probe", "forward", "verify",
                     "false_forward", "l2_probe", "group_multicast",
                     "global_multicast"):
            span.event(kind)
        assert span.level_path() == ["L1", "L2", "L3", "L4"]

    def test_event_totals(self):
        span = Span(4, "/a", origin_id=0)
        span.event("l1_probe", latency_ms=0.25, messages=2)
        span.event("group_multicast", latency_ms=0.5, messages=8)
        assert span.total_event_messages() == 10
        assert span.total_event_latency_ms() == pytest.approx(0.75)

    def test_span_event_level_mapping(self):
        assert SpanEvent(kind="l1_probe").level == "L1"
        assert SpanEvent(kind="group_multicast").level == "L3"
        assert SpanEvent(kind="forward").level is None
        assert SpanEvent(kind="lru_hint").level is None

    def test_every_event_kind_constructible(self):
        for kind in EVENT_KINDS:
            assert SpanEvent(kind=kind).kind == kind


class TestNullTracer:
    def test_disabled_and_shared(self):
        assert NULL_TRACER.enabled is False
        first = NULL_TRACER.start_span("/a", 0)
        second = NULL_TRACER.start_span("/b", 1)
        assert first is second  # one shared state-free span

    def test_null_span_swallows_everything(self):
        span = NullTracer().start_span("/a", 0)
        span.event("l1_probe", target=1, latency_ms=5.0, messages=2)
        span.finish("L1", 1, 5.0, 2)
        span.event("l2_probe")  # even after finish: still a no-op
        assert span.events == ()
        assert span.level_path() == []
        assert span.total_event_messages() == 0
        assert span.total_event_latency_ms() == 0.0
        assert span.finished is False


class TestCollectingTracer:
    def test_collects_and_numbers_spans(self):
        tracer = CollectingTracer()
        assert tracer.enabled is True
        a = tracer.start_span("/a", 0)
        b = tracer.start_span("/b", 1)
        assert (a.trace_id, b.trace_id) == (0, 1)
        assert len(tracer) == 2
        assert tracer.started == 2

    def test_finished_spans_filters_open_ones(self):
        tracer = CollectingTracer()
        open_span = tracer.start_span("/open", 0)
        done = tracer.start_span("/done", 0)
        done.finish("L1", 0, 0.0, 0)
        assert tracer.finished_spans() == [done]
        assert open_span in tracer.spans

    def test_max_spans_drops_oldest(self):
        tracer = CollectingTracer(max_spans=2)
        for i in range(5):
            tracer.start_span(f"/p{i}", 0)
        assert [s.path for s in tracer.spans] == ["/p3", "/p4"]
        assert tracer.started == 5

    def test_max_spans_validated(self):
        with pytest.raises(ValueError):
            CollectingTracer(max_spans=0)

    def test_clear(self):
        tracer = CollectingTracer()
        tracer.start_span("/a", 0)
        tracer.clear()
        assert len(tracer) == 0
