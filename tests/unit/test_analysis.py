"""Unit tests for the false-positive mathematics (paper Equation 1)."""

import math

import pytest

from repro.bloom.analysis import (
    OPTIMAL_BASE,
    expected_fill_ratio,
    false_positive_rate,
    optimal_false_positive_rate,
    optimal_num_hashes,
    required_bits,
    segment_array_false_positive_rate,
    unique_hit_probability,
)


class TestOptimalK:
    def test_known_values(self):
        # k = (m/n) ln 2: 8 bits -> 5.5 -> 6; 16 bits -> 11.09 -> 11
        assert optimal_num_hashes(8) == 6
        assert optimal_num_hashes(16) == 11

    def test_at_least_one(self):
        assert optimal_num_hashes(0.5) == 1

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            optimal_num_hashes(0)


class TestFalsePositiveRate:
    def test_empty_filter_never_false_positive(self):
        assert false_positive_rate(1024, 0, 7) == 0.0

    def test_matches_formula(self):
        m, n, k = 1024, 100, 7
        expected = (1 - math.exp(-k * n / m)) ** k
        assert false_positive_rate(m, n, k) == pytest.approx(expected)

    def test_monotone_in_items(self):
        rates = [false_positive_rate(1024, n, 7) for n in (10, 50, 100, 500)]
        assert rates == sorted(rates)

    def test_optimal_rate_is_0_6185_power(self):
        # The paper: f0 = (0.6185)^(m/n).
        assert OPTIMAL_BASE == pytest.approx(0.6185, abs=1e-4)
        assert optimal_false_positive_rate(8) == pytest.approx(0.6185**8, rel=1e-3)

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            false_positive_rate(0, 1, 1)
        with pytest.raises(ValueError):
            false_positive_rate(10, -1, 1)
        with pytest.raises(ValueError):
            false_positive_rate(10, 1, 0)


class TestEquation1:
    def test_zero_theta_is_zero(self):
        assert segment_array_false_positive_rate(0, 8) == 0.0

    def test_matches_paper_formula(self):
        theta, ratio = 5, 8.0
        f0 = 0.6185**ratio
        expected = theta * f0 * (1 - f0) ** (theta - 1)
        assert segment_array_false_positive_rate(theta, ratio) == pytest.approx(
            expected, rel=1e-3
        )

    def test_higher_bit_ratio_reduces_false_rate(self):
        low = segment_array_false_positive_rate(10, 8)
        high = segment_array_false_positive_rate(10, 16)
        assert high < low

    def test_rejects_negative_theta(self):
        with pytest.raises(ValueError):
            segment_array_false_positive_rate(-1, 8)


class TestSizingHelpers:
    def test_expected_fill_ratio_bounds(self):
        ratio = expected_fill_ratio(1024, 100, 7)
        assert 0.0 < ratio < 1.0

    def test_required_bits_achieves_target(self):
        n, target = 1000, 0.01
        m = required_bits(n, target)
        k = optimal_num_hashes(m / n)
        assert false_positive_rate(m, n, k) <= target * 1.3

    def test_required_bits_rejects_bad_target(self):
        with pytest.raises(ValueError):
            required_bits(10, 0.0)
        with pytest.raises(ValueError):
            required_bits(10, 1.0)


class TestUniqueHitProbability:
    def test_owner_present_all_silent(self):
        assert unique_hit_probability(1, True, 0.5) == 1.0
        assert unique_hit_probability(3, True, 0.0) == 1.0

    def test_owner_absent_zero_filters(self):
        assert unique_hit_probability(0, False, 0.1) == 0.0

    def test_owner_absent_matches_binomial(self):
        n, p = 4, 0.1
        expected = n * p * (1 - p) ** (n - 1)
        assert unique_hit_probability(n, False, p) == pytest.approx(expected)

    def test_rejects_bad_fpr(self):
        with pytest.raises(ValueError):
            unique_hit_probability(3, True, 1.5)
