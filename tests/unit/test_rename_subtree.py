"""Unit tests for GHBACluster.rename_subtree (zero-migration renames)."""

import pytest

from repro.core.query import QueryLevel


class TestRenameSubtree:
    def test_renamed_files_resolve_at_same_home(self, populated_cluster):
        cluster, placement = populated_cluster
        victims = {
            path: home
            for path, home in placement.items()
            if path.startswith("/fs/dir0/")
        }
        renamed = cluster.rename_subtree("/fs/dir0", "/fs/moved")
        assert renamed == len(victims)
        cluster.synchronize_replicas(force=True)
        for old_path, home in list(victims.items())[:15]:
            new_path = "/fs/moved" + old_path[len("/fs/dir0"):]
            result = cluster.query(new_path)
            assert result.found
            assert result.home_id == home  # zero migration

    def test_old_names_become_negative(self, populated_cluster):
        cluster, placement = populated_cluster
        old_path = next(p for p in placement if p.startswith("/fs/dir1/"))
        cluster.rename_subtree("/fs/dir1", "/fs/elsewhere")
        result = cluster.query(old_path)
        assert not result.found

    def test_exact_prefix_only(self, populated_cluster):
        """'/fs/dir2' rename must not touch '/fs/dir20'-style siblings."""
        cluster, _ = populated_cluster
        from repro.metadata.attributes import FileMetadata

        cluster.insert_file(
            FileMetadata(path="/fs/dir2x/keep", inode=90001), home_id=0
        )
        cluster.synchronize_replicas(force=True)
        cluster.rename_subtree("/fs/dir2", "/fs/renamed2")
        assert cluster.home_of("/fs/dir2x/keep") == 0

    def test_noop_rename(self, populated_cluster):
        cluster, _ = populated_cluster
        assert cluster.rename_subtree("/fs/dir3", "/fs/dir3") == 0

    def test_rename_nothing_matches(self, populated_cluster):
        cluster, _ = populated_cluster
        assert cluster.rename_subtree("/no/such/prefix", "/other") == 0

    def test_relative_prefixes_rejected(self, populated_cluster):
        cluster, _ = populated_cluster
        with pytest.raises(ValueError):
            cluster.rename_subtree("fs/dir0", "/x")
        with pytest.raises(ValueError):
            cluster.rename_subtree("/fs/dir0", "x")

    def test_lru_entries_for_old_names_invalidated(self, populated_cluster):
        cluster, placement = populated_cluster
        old_path = next(p for p in placement if p.startswith("/fs/dir4/"))
        origin = cluster.server_ids()[0]
        cluster.query(old_path, origin_id=origin)  # warms the origin's LRU
        cluster.rename_subtree("/fs/dir4", "/fs/newdir4")
        # The stale hot entry must not cause an L1 false forward to a
        # "found" answer for the dead name.
        result = cluster.query(old_path, origin_id=origin)
        assert not result.found

    def test_invariants_hold_after_rename(self, populated_cluster):
        cluster, _ = populated_cluster
        cluster.rename_subtree("/fs/dir5", "/fs/dir5_new")
        cluster.check_invariants()
