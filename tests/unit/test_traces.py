"""Unit tests for trace records, profiles, generation, scaling and I/O."""

import pytest

from repro.traces.profiles import HP_PROFILE, INS_PROFILE, PROFILES, RES_PROFILE
from repro.traces.records import MetadataOp, TraceRecord
from repro.traces.scaling import intensify, intensify_streaming, subtrace
from repro.traces.synthetic import (
    SyntheticTraceGenerator,
    build_file_population,
    generate_trace,
)
from repro.traces.workloads import compute_stats


class TestTraceRecord:
    def test_validation(self):
        with pytest.raises(ValueError):
            TraceRecord(timestamp=-1.0, op=MetadataOp.STAT, path="/f")
        with pytest.raises(ValueError):
            TraceRecord(timestamp=0.0, op=MetadataOp.STAT, path="no-slash")

    def test_rename_requires_new_path(self):
        with pytest.raises(ValueError):
            TraceRecord(timestamp=0.0, op=MetadataOp.RENAME, path="/f")
        with pytest.raises(ValueError):
            TraceRecord(
                timestamp=0.0, op=MetadataOp.STAT, path="/f", new_path="/g"
            )

    def test_op_classification(self):
        assert MetadataOp.STAT.is_lookup
        assert MetadataOp.OPEN.is_lookup
        assert not MetadataOp.CREATE.is_lookup
        assert MetadataOp.RENAME.mutates_namespace
        assert not MetadataOp.STAT.mutates_namespace

    def test_relocated(self):
        record = TraceRecord(timestamp=1.0, op=MetadataOp.STAT, path="/f", uid=3)
        moved = record.relocated(
            subtrace=2, path_prefix="/tif2", uid_offset=100, host_offset=200
        )
        assert moved.path == "/tif2/f"
        assert moved.uid == 103
        assert moved.host == 200
        assert moved.timestamp == 1.0
        assert moved.subtrace == 2


class TestProfiles:
    def test_all_profiles_registered(self):
        assert set(PROFILES) == {"HP", "INS", "RES"}

    def test_res_is_stat_dominated(self):
        """Table 3: RES has ~8x more stats than opens+closes."""
        mix = RES_PROFILE.normalized_mix()
        assert mix[MetadataOp.STAT] > 0.8

    def test_ins_mix_matches_table3_ratios(self):
        mix = INS_PROFILE.normalized_mix()
        # Table 3: stat 4076 / (open 1196 + close 1215 + stat 4076) ~ 0.62
        assert 0.55 < mix[MetadataOp.STAT] < 0.70

    def test_hp_active_fraction_matches_table4(self):
        # Table 4: 0.969M active of 4.0M files.
        assert HP_PROFILE.active_file_fraction == pytest.approx(0.24, abs=0.02)

    def test_paper_tifs(self):
        assert RES_PROFILE.default_tif == 100
        assert INS_PROFILE.default_tif == 30
        assert HP_PROFILE.default_tif == 40

    def test_normalized_mix_sums_to_one(self):
        for profile in PROFILES.values():
            assert sum(profile.normalized_mix().values()) == pytest.approx(1.0)


class TestPopulation:
    def test_population_size(self):
        paths = build_file_population(HP_PROFILE, 500)
        assert len(paths) == 500
        assert len(set(paths)) == 500  # unique

    def test_paths_absolute(self):
        assert all(
            p.startswith("/") for p in build_file_population(INS_PROFILE, 50)
        )

    def test_deterministic(self):
        assert build_file_population(HP_PROFILE, 100, seed=1) == (
            build_file_population(HP_PROFILE, 100, seed=1)
        )


class TestGenerator:
    def test_generates_exactly_n_ops(self):
        records = generate_trace(HP_PROFILE, 200, 1_000, seed=3)
        assert len(records) == 1_000

    def test_timestamps_non_decreasing(self):
        records = generate_trace(INS_PROFILE, 200, 500, seed=4)
        times = [r.timestamp for r in records]
        assert times == sorted(times)

    def test_open_close_pairing(self):
        """Every CLOSE follows an OPEN of the same path."""
        records = generate_trace(HP_PROFILE, 200, 2_000, seed=5)
        open_counts = {}
        for record in records:
            if record.op is MetadataOp.OPEN:
                open_counts[record.path] = open_counts.get(record.path, 0) + 1
            elif record.op is MetadataOp.CLOSE:
                assert open_counts.get(record.path, 0) > 0
                open_counts[record.path] -= 1

    def test_close_count_tracks_open_count(self):
        records = generate_trace(HP_PROFILE, 300, 5_000, seed=6)
        stats = compute_stats(records)
        opens = stats.count(MetadataOp.OPEN)
        closes = stats.count(MetadataOp.CLOSE)
        assert closes <= opens
        assert closes >= opens * 0.7  # most closes land inside the window

    def test_op_mix_roughly_matches_profile(self):
        records = generate_trace(RES_PROFILE, 300, 8_000, seed=7)
        stats = compute_stats(records)
        assert stats.op_fraction(MetadataOp.STAT) > 0.7

    def test_deterministic_given_seed(self):
        a = generate_trace(HP_PROFILE, 100, 300, seed=9)
        b = generate_trace(HP_PROFILE, 100, 300, seed=9)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(HP_PROFILE, 100, ops_per_second=0)
        with pytest.raises(ValueError):
            SyntheticTraceGenerator(HP_PROFILE, 100, close_delay_mean=0)


class TestIntensify:
    def base(self):
        return generate_trace(HP_PROFILE, 100, 400, seed=11)

    def test_multiplies_record_count(self):
        base = self.base()
        assert len(intensify(base, 3)) == 3 * len(base)

    def test_tif_one_is_copy(self):
        base = self.base()
        assert intensify(base, 1) == base

    def test_subtraces_disjoint(self):
        """Paper: subtraces forced onto disjoint users/hosts/directories."""
        base = self.base()
        scaled = intensify(base, 4)
        by_subtrace = {}
        for record in scaled:
            by_subtrace.setdefault(record.subtrace, set()).add(record.path)
        paths = list(by_subtrace.values())
        for i in range(len(paths)):
            for j in range(i + 1, len(paths)):
                assert not (paths[i] & paths[j])

    def test_uid_ranges_disjoint(self):
        scaled = intensify(self.base(), 3)
        uids = {}
        for record in scaled:
            uids.setdefault(record.subtrace, set()).add(record.uid)
        assert not (uids[0] & uids[1])
        assert not (uids[1] & uids[2])

    def test_merged_by_timestamp(self):
        scaled = intensify(self.base(), 5)
        times = [r.timestamp for r in scaled]
        assert times == sorted(times)

    def test_preserves_op_histogram(self):
        """Paper: the combined trace keeps the same call histogram."""
        base = self.base()
        base_stats = compute_stats(base)
        scaled_stats = compute_stats(intensify(base, 4))
        for op in MetadataOp:
            assert scaled_stats.count(op) == 4 * base_stats.count(op)

    def test_timing_within_subtrace_preserved(self):
        base = self.base()
        sub = subtrace(base, 2)
        assert [r.timestamp for r in sub] == [r.timestamp for r in base]

    def test_streaming_matches_materialized(self):
        base = self.base()
        assert list(intensify_streaming(base, 3)) == intensify(base, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            intensify(self.base(), 0)
        with pytest.raises(ValueError):
            subtrace(self.base(), -1)


class TestWorkloadStats:
    def test_counts(self):
        records = [
            TraceRecord(0.0, MetadataOp.OPEN, "/a", uid=1, host=1),
            TraceRecord(1.0, MetadataOp.CLOSE, "/a", uid=1, host=2),
            TraceRecord(2.0, MetadataOp.STAT, "/b", uid=2, host=1),
        ]
        stats = compute_stats(records)
        assert stats.total_ops == 3
        assert stats.num_users == 2
        assert stats.num_hosts == 2
        assert stats.num_active_files == 2
        assert stats.duration == 2.0

    def test_rename_counts_both_paths(self):
        records = [
            TraceRecord(0.0, MetadataOp.RENAME, "/a", new_path="/b"),
        ]
        assert compute_stats(records).num_active_files == 2

    def test_table_row_shape(self):
        row = compute_stats([]).as_table_row()
        assert set(row) == {
            "hosts", "users", "open", "close", "stat", "active_files",
            "total_ops",
        }
