"""The hoisted retry/backoff layer must be counter-invisible.

``repro.net.reliability`` now drives ``InProcessTransport.request`` /
``gather``.  The golden values below were captured from the pre-hoist
transport (the loop living inline in ``transport.py``) under a seeded
fault plan; any drift in attempt ordering, backoff draws, or wave
deadlines shows up here as a counter mismatch.

Timeouts are deliberately generous (0.25 s real-clock per wave) so slow
CI machines cannot turn a reply that *would* have arrived into a missed
wave and perturb the retry counters.
"""

import threading

import pytest

from repro.faults.injector import FaultPlan, PlanFaultInjector
from repro.faults.retry import RetryPolicy
from repro.net.reliability import (
    GatherResult,
    TransportClosed,
    reliable_gather,
    reliable_request,
)
from repro.prototype.messages import Message, MessageKind
from repro.prototype.transport import InProcessTransport

GOLDEN = {
    0: {
        "ok": 39,
        "timeouts": 1,
        "messages_sent": 159,
        "replies_received": 67,
        "retries": 22,
        "exhausted": 3,
        "gather_missing": [[], [], [], [], [], [2], [1], [], [], []],
        "drop_request": 25,
        "duplicate": 5,
    },
    7: {
        "ok": 39,
        "timeouts": 1,
        "messages_sent": 176,
        "replies_received": 67,
        "retries": 39,
        "exhausted": 3,
        "gather_missing": [[2], [], [], [1], [], [], [], [], [], []],
        "drop_request": 42,
        "duplicate": 10,
    },
    42: {
        "ok": 37,
        "timeouts": 3,
        "messages_sent": 167,
        "replies_received": 65,
        "retries": 32,
        "exhausted": 5,
        "gather_missing": [[], [], [], [], [], [], [], [], [1], [0]],
        "drop_request": 37,
        "duplicate": 9,
    },
}


def _run_scenario(seed):
    plan = FaultPlan(seed=seed, drop_rate=0.3, duplicate_rate=0.1)
    injector = PlanFaultInjector(plan)
    transport = InProcessTransport(
        default_timeout_s=0.25,
        injector=injector,
        retry=RetryPolicy(max_attempts=3, timeout_s=0.01),
    )

    def serve(node_id, mailbox):
        while True:
            msg = mailbox.get()
            if msg.kind is MessageKind.STOP:
                if msg.reply_to is not None:
                    msg.reply_to.put(msg.reply(ok=True))
                return
            if msg.reply_to is not None:
                msg.reply_to.put(msg.reply(ok=True, node=node_id))

    for node_id in range(3):
        mailbox = transport.register(node_id)
        threading.Thread(
            target=serve, args=(node_id, mailbox), daemon=True
        ).start()

    ok = timeouts = 0
    for i in range(40):
        msg = Message(kind=MessageKind.PING, sender=99, payload={"i": i})
        try:
            transport.request(i % 3, msg, timeout_s=0.25)
            ok += 1
        except TimeoutError:
            timeouts += 1

    gather_missing = []
    for i in range(10):
        result = transport.gather(
            [0, 1, 2],
            lambda dest: Message(
                kind=MessageKind.PING, sender=99, payload={"g": i}
            ),
            timeout_s=0.25,
        )
        gather_missing.append(sorted(result.missing))

    snapshot = {
        "ok": ok,
        "timeouts": timeouts,
        "messages_sent": transport.messages_sent,
        "replies_received": transport.replies_received,
        "retries": transport.retries,
        "exhausted": transport.exhausted,
        "gather_missing": gather_missing,
        "drop_request": injector.counts["drop_request"],
        "duplicate": injector.counts["duplicate"],
    }

    injector.enabled = False
    for node_id in range(3):
        transport.request(
            node_id,
            Message(kind=MessageKind.STOP, sender=99, payload={}),
            timeout_s=1.0,
            count=False,
        )
    return snapshot


@pytest.mark.parametrize("seed", sorted(GOLDEN))
def test_hoisted_retry_layer_reproduces_pre_hoist_counters(seed):
    assert _run_scenario(seed) == GOLDEN[seed]


# ----------------------------------------------------------------------
# Driver semantics against a scripted fake wire
# ----------------------------------------------------------------------
class _FakeWire:
    """Scripted wire: per-call outcomes, full call log."""

    def __init__(self, outcomes):
        # outcomes: list of "reply" | "silent" | "dropped" | "closed"
        self.outcomes = list(outcomes)
        self.calls = []
        self.retries = 0
        self.exhausted = 0
        self._cursor = 0
        self._outcome_by_message = {}

    def _next_outcome(self):
        outcome = self.outcomes[self._cursor]
        self._cursor += 1
        return outcome

    def dispatch_attempt(self, dest, message, count):
        outcome = self._next_outcome()
        self.calls.append(("dispatch", dest, message.payload.get("n"), outcome))
        if outcome == "closed":
            raise TransportClosed(f"node {dest} is gone")
        self._outcome_by_message[id(message)] = outcome
        return outcome != "dropped"

    def collect_reply(self, message, timeout_s):
        if self._outcome_by_message.get(id(message)) == "reply":
            return message.reply(ok=True)
        return None

    def reply_received(self, count):
        self.calls.append(("reply_received", count))

    def next_backoff(self, retry_index):
        return 0.001 * (retry_index + 1)

    def note_retry(self, backoff_s):
        self.retries += 1

    def note_exhausted(self, count):
        self.exhausted += count

    def retry_attempt(self, message, backoff_s):
        return Message(
            kind=message.kind,
            sender=message.sender,
            payload=dict(message.payload, retried=True),
            request_id=message.request_id,
            arrival_vtime=message.arrival_vtime + backoff_s,
            trace=message.trace,
        )


def _msg(n=0):
    return Message(kind=MessageKind.PING, sender=1, payload={"n": n})


def test_request_skips_wait_for_known_dropped_attempts():
    wire = _FakeWire(["dropped", "reply"])
    reply = reliable_request(wire, RetryPolicy(max_attempts=3), 5, _msg(), 10.0)
    assert reply.kind is MessageKind.REPLY
    assert wire.retries == 1 and wire.exhausted == 0


def test_request_exhausts_budget_with_exact_message():
    wire = _FakeWire(["silent", "silent"])
    policy = RetryPolicy(max_attempts=2)
    with pytest.raises(TimeoutError) as excinfo:
        reliable_request(wire, policy, 7, _msg(3), 0.0)
    assert "no reply from node 7" in str(excinfo.value)
    assert "after 2 attempt(s)" in str(excinfo.value)
    assert wire.retries == 1 and wire.exhausted == 1


def test_request_propagates_transport_closed():
    wire = _FakeWire(["closed"])
    with pytest.raises(TransportClosed):
        reliable_request(wire, RetryPolicy(max_attempts=3), 9, _msg(), 0.0)
    assert wire.exhausted == 0


def test_gather_reports_closed_peers_as_unreachable():
    # dest 0 answers, dest 1 is gone: partial result, no exception.
    wire = _FakeWire(["reply", "closed"])
    result = reliable_gather(
        wire,
        RetryPolicy(max_attempts=2),
        [0, 1],
        lambda dest: _msg(dest),
        0.0,
    )
    assert isinstance(result, GatherResult)
    assert sorted(result.replies) == [0]
    assert result.unreachable == (1,)
    assert result.missing == ()
    assert not result.complete and len(result) == 1


def test_gather_retries_silent_peers_then_reports_missing():
    # dest 0 replies first wave; dest 1 silent both waves.
    wire = _FakeWire(["reply", "silent", "silent"])
    result = reliable_gather(
        wire,
        RetryPolicy(max_attempts=2),
        [0, 1],
        lambda dest: _msg(dest),
        0.0,
    )
    assert sorted(result.replies) == [0]
    assert result.missing == (1,)
    assert wire.retries == 1 and wire.exhausted == 1
    retried = [c for c in wire.calls if c[0] == "dispatch" and c[3] == "silent"]
    assert len(retried) == 2
