"""Unit tests for heartbeat-based failure detection (Section 4.5)."""

import pytest

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.core.failure import HeartbeatMonitor
from repro.sim.engine import Simulator


@pytest.fixture
def config():
    return GHBAConfig(
        max_group_size=3,
        expected_files_per_mds=128,
        lru_capacity=16,
        lru_filter_bits=128,
        heartbeat_interval_s=1.0,
        heartbeat_timeout_s=3.0,
        seed=2,
    )


@pytest.fixture
def setup(config):
    cluster = GHBACluster(6, config, seed=2)
    simulator = Simulator()
    monitor = HeartbeatMonitor(cluster, simulator)
    monitor.start()
    return cluster, simulator, monitor


class TestHealthyOperation:
    def test_no_false_detections(self, setup):
        cluster, simulator, monitor = setup
        simulator.run_until(30.0)
        assert monitor.failures == []
        assert cluster.num_servers == 6

    def test_heartbeats_flow(self, setup):
        _, simulator, monitor = setup
        simulator.run_until(5.0)
        assert monitor.heartbeats_sent > 0

    def test_stop_halts_protocol(self, setup):
        _, simulator, monitor = setup
        simulator.run_until(2.0)
        monitor.stop()
        sent = monitor.heartbeats_sent
        simulator.run_until(10.0)
        assert monitor.heartbeats_sent == sent


class TestDetection:
    def test_crashed_server_detected_within_timeout(self, setup):
        cluster, simulator, monitor = setup
        simulator.run_until(2.0)
        monitor.crash(0)
        simulator.run_until(10.0)
        assert monitor.detected(0)
        event = monitor.failures[0]
        # Detection happens after the timeout but not much later.
        assert event.detected_at - event.last_heartbeat_at >= 3.0
        assert event.detected_at - event.last_heartbeat_at <= 3.0 + 2 * 1.0

    def test_detection_excises_server(self, setup):
        cluster, simulator, monitor = setup
        monitor.crash(0)
        simulator.run_until(10.0)
        assert 0 not in cluster.servers
        cluster.check_invariants()

    def test_detector_is_group_peer(self, setup):
        cluster, simulator, monitor = setup
        victim = 1
        peers = cluster.group_of(victim).member_ids()
        monitor.crash(victim)
        simulator.run_until(10.0)
        event = monitor.failures[0]
        assert event.detected_by in peers
        assert event.detected_by != victim

    def test_callbacks_invoked(self, setup):
        cluster, simulator, monitor = setup
        seen = []
        monitor.on_failure(lambda event: seen.append(event.server_id))
        monitor.crash(2)
        simulator.run_until(10.0)
        assert seen == [2]

    def test_multiple_failures(self, setup):
        cluster, simulator, monitor = setup
        monitor.crash(0)
        monitor.crash(3)
        simulator.run_until(15.0)
        assert {event.server_id for event in monitor.failures} == {0, 3}
        cluster.check_invariants()

    def test_crash_unknown_raises(self, setup):
        _, _, monitor = setup
        with pytest.raises(KeyError):
            monitor.crash(99)


class TestDegradedService:
    def test_lost_files_negative_not_misrouted(self, config):
        cluster = GHBACluster(6, config, seed=2)
        placement = cluster.populate(f"/hb/f{i}" for i in range(60))
        cluster.synchronize_replicas(force=True)
        simulator = Simulator()
        monitor = HeartbeatMonitor(cluster, simulator)
        monitor.start()
        victim = cluster.server_ids()[0]
        victim_files = [p for p, h in placement.items() if h == victim]
        monitor.crash(victim)
        simulator.run_until(10.0)
        for path in victim_files[:5]:
            assert not cluster.query(path).found
        survivors = [(p, h) for p, h in placement.items() if h != victim][:10]
        for path, home in survivors:
            assert cluster.query(path).home_id == home

    def test_no_auto_excise_mode(self, config):
        cluster = GHBACluster(4, config, seed=1)
        simulator = Simulator()
        monitor = HeartbeatMonitor(cluster, simulator, auto_excise=False)
        monitor.start()
        monitor.crash(0)
        simulator.run_until(10.0)
        assert monitor.detected(0)
        assert 0 in cluster.servers  # the operator decides

    def test_track_new_server(self, setup):
        cluster, simulator, monitor = setup
        report = cluster.add_server()
        monitor.track(report.server_id)
        simulator.run_until(20.0)
        assert not monitor.detected(report.server_id)
