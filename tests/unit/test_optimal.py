"""Unit tests for the normalized-throughput model (Section 3.3, Eqs. 2-4)."""

import math

import pytest

from repro.core.optimal import (
    TRACE_MODELS,
    HitRates,
    OptimalityModel,
    normalized_throughput,
    optimal_group_size,
    space_overhead,
    throughput_curve,
)


class TestSpaceOverhead:
    def test_equation3(self):
        assert space_overhead(30, 6) == pytest.approx(4.0)
        assert space_overhead(100, 9) == pytest.approx(91 / 9)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            space_overhead(10, 0)
        with pytest.raises(ValueError):
            space_overhead(10, 10)


class TestHitRates:
    def test_escape_rate_grows_with_n(self):
        rates = HitRates()
        assert rates.l4_escape_rate(100) > rates.l4_escape_rate(10)

    def test_escape_rate_capped(self):
        rates = HitRates(stale_miss_cap=0.1, stale_miss_rate_per_server=0.01)
        assert rates.l4_escape_rate(1_000) == 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            HitRates(p_lru=1.0)
        with pytest.raises(ValueError):
            HitRates(l2_accuracy=0.0)


class TestModelStructure:
    def test_level_probabilities_sum_to_one(self):
        model = OptimalityModel()
        p1, p2, p3, p4 = model.level_probabilities(30, 6)
        assert p1 + p2 + p3 + p4 == pytest.approx(1.0)

    def test_theta_matches_paper(self):
        model = OptimalityModel()
        assert model.theta(30, 6) == pytest.approx(4.0)

    def test_coverage_decreases_with_m(self):
        model = OptimalityModel()
        assert model.local_coverage(30, 2) > model.local_coverage(30, 10)

    def test_delay_grows_with_group_size(self):
        model = OptimalityModel()
        assert model.group_multicast_delay_ms(10) > (
            model.group_multicast_delay_ms(2)
        )

    def test_utilization_grows_with_m_at_scale(self):
        model = OptimalityModel()
        assert model.utilization(100, 15) > model.utilization(100, 9)

    def test_saturated_latency_is_inf(self):
        model = OptimalityModel(arrivals_total_per_s=1e9)
        assert math.isinf(model.latency_ms(30, 6))

    def test_validation(self):
        with pytest.raises(ValueError):
            OptimalityModel(arrivals_total_per_s=0)
        with pytest.raises(ValueError):
            OptimalityModel(work_l3_exponent=0.5)


class TestGammaShape:
    def test_gamma_zero_when_saturated(self):
        model = OptimalityModel(arrivals_total_per_s=1e9)
        assert normalized_throughput(30, 6, model) == 0.0

    def test_curve_is_unimodal_for_hp(self):
        """Figure 6's curves rise to one peak then fall."""
        curve = [g for _, g in throughput_curve(30, TRACE_MODELS["HP"], 15)]
        peak = curve.index(max(curve))
        assert all(curve[i] <= curve[i + 1] for i in range(peak))
        assert all(curve[i] >= curve[i + 1] for i in range(peak, len(curve) - 1))


class TestPaperOptima:
    """The calibrated model must land within ±1 of every Figure 6/7 value."""

    @pytest.mark.parametrize(
        "trace,num_servers,paper_m",
        [
            ("HP", 30, 6),
            ("INS", 30, 6),
            ("RES", 30, 5),
            ("HP", 100, 9),
            ("INS", 100, 9),
            ("RES", 100, 9),
        ],
    )
    def test_figure6_optima(self, trace, num_servers, paper_m):
        best = optimal_group_size(
            num_servers, TRACE_MODELS[trace], max_group_size=15
        )
        assert abs(best - paper_m) <= 1

    @pytest.mark.parametrize(
        "num_servers,paper_m",
        [(10, 3), (30, 6), (60, 7), (100, 9), (150, 11), (200, 14)],
    )
    def test_figure7_trend(self, num_servers, paper_m):
        best = optimal_group_size(
            num_servers, TRACE_MODELS["HP"], max_group_size=25
        )
        assert abs(best - paper_m) <= 1

    def test_optimal_m_grows_with_n(self):
        model = TRACE_MODELS["HP"]
        optima = [
            optimal_group_size(n, model, max_group_size=25)
            for n in (10, 30, 100, 200)
        ]
        assert optima == sorted(optima)
        assert optima[0] < optima[-1]

    def test_res_optimum_at_most_hp(self):
        """RES's heavier load pulls its optimum down (Figure 6)."""
        res = optimal_group_size(30, TRACE_MODELS["RES"], max_group_size=15)
        hp = optimal_group_size(30, TRACE_MODELS["HP"], max_group_size=15)
        assert res <= hp
