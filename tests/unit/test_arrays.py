"""Unit tests for Bloom filter arrays (plain, LRU and IDBFA)."""

import pytest

from repro.bloom.arrays import (
    ArrayLookup,
    BloomFilterArray,
    IDBloomFilterArray,
    LRUBloomFilterArray,
)
from repro.bloom.bloom_filter import BloomFilter


def make_filter(items, seed=0):
    bloom = BloomFilter(2048, 6, seed)
    bloom.update(items)
    return bloom


class TestArrayLookup:
    def test_unique(self):
        lookup = ArrayLookup(hits=(3,), probes=5)
        assert lookup.is_unique and not lookup.is_miss
        assert lookup.unique_hit == 3

    def test_zero_and_multiple_are_misses(self):
        assert ArrayLookup(hits=(), probes=5).is_miss
        assert ArrayLookup(hits=(1, 2), probes=5).is_miss

    def test_unique_hit_raises_on_miss(self):
        with pytest.raises(ValueError):
            ArrayLookup(hits=(), probes=1).unique_hit


class TestBloomFilterArray:
    def test_unique_hit_names_home(self):
        array = BloomFilterArray()
        array.add_replica(1, make_filter(["/f1"]))
        array.add_replica(2, make_filter(["/f2"]))
        lookup = array.query("/f1")
        assert lookup.is_unique and lookup.unique_hit == 1
        assert lookup.probes == 2

    def test_zero_hits_for_absent(self):
        array = BloomFilterArray()
        array.add_replica(1, make_filter(["/f1"]))
        assert array.query("/nope").hits == ()

    def test_multiple_hits_when_two_filters_contain(self):
        array = BloomFilterArray()
        array.add_replica(1, make_filter(["/shared"]))
        array.add_replica(2, make_filter(["/shared"]))
        lookup = array.query("/shared")
        assert set(lookup.hits) == {1, 2}
        assert lookup.is_miss  # the scheme treats multi-hit as a miss

    def test_duplicate_add_rejected(self):
        array = BloomFilterArray()
        array.add_replica(1, make_filter([]))
        with pytest.raises(ValueError):
            array.add_replica(1, make_filter([]))

    def test_replace_and_remove(self):
        array = BloomFilterArray()
        array.add_replica(1, make_filter(["/old"]))
        array.replace_replica(1, make_filter(["/new"]))
        assert array.query("/new").is_unique
        removed = array.remove_replica(1)
        assert "/new" in removed
        assert 1 not in array

    def test_replace_missing_raises(self):
        with pytest.raises(KeyError):
            BloomFilterArray().replace_replica(9, make_filter([]))

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError):
            BloomFilterArray().remove_replica(9)

    def test_mixed_geometry_filters_still_probed(self):
        """Filters with different geometry coexist (index cache per family)."""
        array = BloomFilterArray()
        array.add_replica(1, make_filter(["/f1"], seed=0))
        other = BloomFilter(512, 3, seed=5)
        other.add("/f2")
        array.add_replica(2, other)
        assert array.query("/f1").unique_hit == 1
        assert array.query("/f2").unique_hit == 2

    def test_size_bytes_sums_replicas(self):
        array = BloomFilterArray()
        array.add_replica(1, make_filter([]))
        array.add_replica(2, make_filter([]))
        assert array.size_bytes() == 2 * make_filter([]).size_bytes()


class TestLRUArray:
    def make(self, capacity=4):
        return LRUBloomFilterArray(capacity, filter_bits=1024, num_hashes=4)

    def test_record_then_unique_hit(self):
        lru = self.make()
        lru.record("/hot", home_id=3)
        lookup = lru.query("/hot")
        assert lookup.is_unique and lookup.unique_hit == 3

    def test_capacity_eviction_removes_lru_entry(self):
        lru = self.make(capacity=2)
        lru.record("/a", 1)
        lru.record("/b", 1)
        lru.record("/c", 1)  # evicts /a
        assert lru.peek("/a") is None
        assert not lru.query("/a").is_unique
        assert lru.query("/b").is_unique

    def test_recency_refresh_on_record(self):
        lru = self.make(capacity=2)
        lru.record("/a", 1)
        lru.record("/b", 1)
        lru.record("/a", 1)  # refresh /a
        lru.record("/c", 1)  # evicts /b, not /a
        assert lru.peek("/a") == 1
        assert lru.peek("/b") is None

    def test_home_change_replaces_mapping(self):
        lru = self.make()
        lru.record("/m", 1)
        lru.record("/m", 2)
        assert lru.peek("/m") == 2
        assert lru.query("/m").hits == (2,)

    def test_invalidate(self):
        lru = self.make()
        lru.record("/x", 1)
        assert lru.invalidate("/x") is True
        assert lru.peek("/x") is None
        assert lru.invalidate("/x") is False

    def test_invalidate_home_drops_all_entries_for_server(self):
        lru = self.make(capacity=10)
        lru.record("/a", 1)
        lru.record("/b", 1)
        lru.record("/c", 2)
        assert lru.invalidate_home(1) == 2
        assert lru.peek("/a") is None and lru.peek("/c") == 2

    def test_hit_rate_accounting(self):
        lru = self.make()
        lru.record("/a", 1)
        lru.query("/a")
        lru.query("/missing")
        assert lru.hits == 1 and lru.misses == 1
        assert lru.hit_rate() == pytest.approx(0.5)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            LRUBloomFilterArray(0)

    def test_num_filters_tracks_distinct_homes(self):
        lru = self.make(capacity=10)
        lru.record("/a", 1)
        lru.record("/b", 2)
        assert lru.num_filters == 2


class TestIDBFA:
    def make(self):
        idbfa = IDBloomFilterArray(num_counters=256, num_hashes=4)
        for mds in (1, 2, 3):
            idbfa.add_member(mds)
        return idbfa

    def test_place_and_locate(self):
        idbfa = self.make()
        idbfa.place(replica_id=77, mds_id=2)
        lookup = idbfa.locate(77)
        assert 2 in lookup.hits
        assert idbfa.host_of(77) == 2

    def test_duplicate_member_rejected(self):
        idbfa = self.make()
        with pytest.raises(ValueError):
            idbfa.add_member(1)

    def test_place_on_non_member_rejected(self):
        idbfa = self.make()
        with pytest.raises(KeyError):
            idbfa.place(5, mds_id=99)

    def test_double_place_rejected(self):
        idbfa = self.make()
        idbfa.place(5, 1)
        with pytest.raises(ValueError):
            idbfa.place(5, 2)

    def test_unplace(self):
        idbfa = self.make()
        idbfa.place(5, 1)
        assert idbfa.unplace(5) == 1
        assert idbfa.host_of(5) is None
        assert not idbfa.locate(5).hits or 1 not in idbfa.locate(5).hits

    def test_move_updates_both_filters(self):
        idbfa = self.make()
        idbfa.place(5, 1)
        assert idbfa.move(5, 3) == 1
        assert idbfa.host_of(5) == 3
        assert 3 in idbfa.locate(5).hits

    def test_remove_member_returns_orphans(self):
        idbfa = self.make()
        idbfa.place(5, 2)
        idbfa.place(6, 2)
        idbfa.place(7, 1)
        orphans = idbfa.remove_member(2)
        assert sorted(orphans) == [5, 6]
        assert idbfa.host_of(7) == 1

    def test_replicas_on_and_count(self):
        idbfa = self.make()
        idbfa.place(5, 1)
        idbfa.place(6, 1)
        assert idbfa.replicas_on(1) == [5, 6]
        assert idbfa.replica_count(1) == 2
        assert idbfa.replica_count(3) == 0

    def test_copy_is_deep(self):
        idbfa = self.make()
        idbfa.place(5, 1)
        clone = idbfa.copy()
        clone.unplace(5)
        assert idbfa.host_of(5) == 1
        assert clone.host_of(5) is None
