"""Unit tests for metric recorders and seeded samplers."""

import pytest

from repro.sim.rng import ZipfSampler, exponential_interarrival, make_rng, weighted_choice
from repro.sim.stats import Counter, LatencyRecorder, SeriesRecorder


class TestCounter:
    def test_increment_and_get(self):
        counter = Counter()
        counter.increment("L1")
        counter.increment("L1", 2)
        assert counter["L1"] == 3
        assert counter.get("missing") == 0

    def test_fractions(self):
        counter = Counter()
        counter.increment("a", 3)
        counter.increment("b", 1)
        fractions = counter.fractions()
        assert fractions["a"] == pytest.approx(0.75)
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_fractions_empty(self):
        assert Counter().fractions() == {}

    def test_clear(self):
        counter = Counter()
        counter.increment("x")
        counter.clear()
        assert counter.total() == 0


class TestLatencyRecorder:
    def test_exact_moments(self):
        recorder = LatencyRecorder()
        for value in (1.0, 2.0, 3.0):
            recorder.record(value)
        assert recorder.count == 3
        assert recorder.mean == pytest.approx(2.0)
        assert recorder.minimum == 1.0
        assert recorder.maximum == 3.0

    def test_percentiles_small_sample(self):
        recorder = LatencyRecorder()
        for value in range(1, 101):
            recorder.record(float(value))
        assert recorder.percentile(50) == pytest.approx(50.5, abs=1.0)
        assert recorder.percentile(0) == 1.0
        assert recorder.percentile(100) == 100.0

    def test_reservoir_bounded(self):
        recorder = LatencyRecorder(reservoir_size=64)
        for value in range(10_000):
            recorder.record(float(value % 100))
        # percentile over reservoir stays in the data range
        assert 0 <= recorder.percentile(50) <= 99
        assert recorder.count == 10_000

    def test_stddev(self):
        recorder = LatencyRecorder()
        for value in (2.0, 2.0, 2.0):
            recorder.record(value)
        assert recorder.stddev == pytest.approx(0.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1.0)

    def test_summary_keys(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        summary = recorder.summary()
        assert set(summary) == {"count", "mean", "min", "max", "p50", "p95", "p99"}

    def test_empty_recorder_safe(self):
        recorder = LatencyRecorder()
        assert recorder.mean == 0.0
        assert recorder.percentile(50) == 0.0

    def test_empty_recorder_extreme_percentiles(self):
        recorder = LatencyRecorder()
        assert recorder.percentile(0) == 0.0
        assert recorder.percentile(100) == 0.0

    def test_extreme_percentiles_exact_beyond_reservoir(self):
        # The reservoir keeps only 4 of 1000 samples, yet p=0/p=100 must
        # return the exact streamed extremes, not reservoir endpoints.
        recorder = LatencyRecorder(reservoir_size=4, seed=1)
        for value in range(1, 1001):
            recorder.record(float(value))
        assert recorder.percentile(0) == 1.0
        assert recorder.percentile(100) == 1000.0

    def test_percentile_exact_while_reservoir_unsaturated(self):
        recorder = LatencyRecorder(reservoir_size=100)
        for value in (10.0, 20.0, 30.0, 40.0, 50.0):
            recorder.record(value)
        assert recorder.percentile(50) == 30.0
        assert recorder.percentile(25) == 20.0

    def test_percentile_out_of_range_rejected(self):
        recorder = LatencyRecorder()
        recorder.record(1.0)
        with pytest.raises(ValueError):
            recorder.percentile(-0.1)
        with pytest.raises(ValueError):
            recorder.percentile(100.1)

    def test_single_sample_all_percentiles(self):
        recorder = LatencyRecorder()
        recorder.record(7.5)
        for p in (0, 1, 50, 99, 100):
            assert recorder.percentile(p) == 7.5


class TestSeriesRecorder:
    def test_windows_average(self):
        series = SeriesRecorder(window_width=10)
        for x in range(20):
            series.record(x, float(x < 10))  # 1.0 in first window, 0.0 after
        points = series.finish()
        assert len(points) == 2
        assert points[0].mean == pytest.approx(1.0)
        assert points[1].mean == pytest.approx(0.0)

    def test_window_centers(self):
        series = SeriesRecorder(window_width=10)
        series.record(0, 1.0)
        series.record(15, 2.0)
        points = series.finish()
        assert points[0].x == pytest.approx(5.0)
        assert points[1].x == pytest.approx(15.0)

    def test_empty_windows_skipped(self):
        series = SeriesRecorder(window_width=1)
        series.record(0, 1.0)
        series.record(10, 2.0)
        assert len(series.finish()) == 2

    def test_non_monotone_x_rejected(self):
        series = SeriesRecorder(window_width=10)
        series.record(25, 1.0)
        with pytest.raises(ValueError):
            series.record(3, 1.0)

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            SeriesRecorder(window_width=0)


class TestZipfSampler:
    def test_samples_in_range(self):
        sampler = ZipfSampler(100, 1.0, make_rng(1))
        assert all(0 <= sampler.sample() < 100 for _ in range(500))

    def test_skew_prefers_low_ranks(self):
        sampler = ZipfSampler(1000, 1.0, make_rng(2))
        draws = sampler.sample_many(5_000)
        head = sum(1 for d in draws if d < 10)
        tail = sum(1 for d in draws if d >= 500)
        assert head > tail

    def test_alpha_zero_is_uniform(self):
        sampler = ZipfSampler(10, 0.0, make_rng(3))
        assert sampler.probability(0) == pytest.approx(0.1)
        assert sampler.probability(9) == pytest.approx(0.1)

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(50, 0.9, make_rng(4))
        total = sum(sampler.probability(r) for r in range(50))
        assert total == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        a = ZipfSampler(100, 1.0, make_rng(7)).sample_many(20)
        b = ZipfSampler(100, 1.0, make_rng(7)).sample_many(20)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0, make_rng(0))
        with pytest.raises(ValueError):
            ZipfSampler(10, -1.0, make_rng(0))
        with pytest.raises(IndexError):
            ZipfSampler(10, 1.0, make_rng(0)).probability(10)


class TestOtherSamplers:
    def test_exponential_positive(self):
        rng = make_rng(5)
        assert all(
            exponential_interarrival(100.0, rng) > 0 for _ in range(100)
        )

    def test_exponential_mean(self):
        rng = make_rng(6)
        draws = [exponential_interarrival(10.0, rng) for _ in range(5_000)]
        assert sum(draws) / len(draws) == pytest.approx(0.1, rel=0.1)

    def test_weighted_choice_respects_weights(self):
        rng = make_rng(7)
        draws = [weighted_choice([1.0, 0.0, 3.0], rng) for _ in range(2_000)]
        assert draws.count(1) == 0
        assert draws.count(2) > draws.count(0)

    def test_weighted_choice_validation(self):
        rng = make_rng(8)
        with pytest.raises(ValueError):
            weighted_choice([], rng)
        with pytest.raises(ValueError):
            weighted_choice([-1.0], rng)
        with pytest.raises(ValueError):
            weighted_choice([0.0, 0.0], rng)
