"""Unit tests for the HBA, BFA, hash-placement and subtree baselines."""

import pytest

from repro.baselines.bfa import BFACluster, bfa_memory_bytes_per_server
from repro.baselines.comparison import COMPARISON_TABLE, format_table
from repro.baselines.hash_placement import (
    HashPlacementGroup,
    hash_join_migrations,
)
from repro.baselines.hba import HBACluster
from repro.baselines.subtree import StaticSubtreePartition
from repro.core.query import QueryLevel
from repro.metadata.attributes import FileMetadata


class TestHBA:
    @pytest.fixture
    def hba(self, small_config):
        cluster = HBACluster(8, small_config, seed=2)
        paths = [f"/h/d{i % 4}/f{i}" for i in range(400)]
        placement = cluster.populate(paths)
        cluster.synchronize_replicas(force=True)
        return cluster, placement

    def test_every_server_holds_full_mirror(self, small_config):
        cluster = HBACluster(8, small_config)
        for server in cluster.servers.values():
            assert server.theta == 7

    def test_queries_resolve_locally(self, hba):
        cluster, placement = hba
        for path, home in list(placement.items())[::13]:
            result = cluster.query(path)
            assert result.home_id == home
            assert result.level in (QueryLevel.L1, QueryLevel.L2)

    def test_negative_falls_to_multicast(self, hba):
        cluster, _ = hba
        result = cluster.query("/nope")
        assert not result.found
        assert result.level is QueryLevel.NEGATIVE

    def test_lru_learns(self, hba):
        cluster, placement = hba
        path = next(iter(placement))
        cluster.query(path, origin_id=0)
        assert cluster.query(path, origin_id=0).level is QueryLevel.L1

    def test_add_server_migrates_full_mirror(self, small_config):
        cluster = HBACluster(8, small_config)
        report = cluster.add_server()
        assert report["migrated_replicas"] == 8  # the paper's Figure 11 line
        assert report["messages"] == 16  # exchange with every existing MDS
        assert cluster.servers[report["server_id"]].theta == 8

    def test_update_reaches_everyone(self, small_config):
        cluster = HBACluster(8, small_config)
        report = cluster.update_server_replicas(0)
        assert report["messages"] == 7

    def test_remove_server(self, small_config):
        cluster = HBACluster(4, small_config)
        report = cluster.remove_server(2)
        assert report["messages"] == 3
        for server in cluster.servers.values():
            assert 2 not in server.segment

    def test_synchronize_threshold(self, small_config):
        cluster = HBACluster(4, small_config)
        cluster.synchronize_replicas(force=True)
        cluster.insert_file(FileMetadata(path="/one", inode=1), home_id=0)
        report = cluster.synchronize_replicas(force=False)
        assert report["servers_updated"] == 0  # below threshold


class TestBFA:
    def test_bits_per_file_override(self, small_config):
        bfa8 = BFACluster(4, 8.0, small_config)
        bfa16 = BFACluster(4, 16.0, small_config)
        assert bfa16.config.filter_bytes == 2 * bfa8.config.filter_bytes

    def test_no_lru_level(self, small_config):
        cluster = BFACluster(4, 8.0, small_config, seed=1)
        placement = cluster.populate([f"/b/f{i}" for i in range(100)])
        cluster.synchronize_replicas(force=True)
        path = next(iter(placement))
        cluster.query(path, origin_id=0)
        result = cluster.query(path, origin_id=0)
        assert result.level is not QueryLevel.L1

    def test_analytic_memory_matches_linear_scaling(self):
        small = bfa_memory_bytes_per_server(10, 1000, 8.0)
        large = bfa_memory_bytes_per_server(20, 1000, 8.0)
        assert large == 2 * small
        assert bfa_memory_bytes_per_server(10, 1000, 16.0) == 2 * small

    def test_analytic_memory_validation(self):
        with pytest.raises(ValueError):
            bfa_memory_bytes_per_server(0, 10, 8.0)
        with pytest.raises(ValueError):
            bfa_memory_bytes_per_server(1, 0, 8.0)


class TestHashPlacement:
    def test_placement_deterministic(self):
        group = HashPlacementGroup([0, 1, 2], seed=4)
        assert group.target_of(50) == group.target_of(50)

    def test_place_and_host(self):
        group = HashPlacementGroup([0, 1, 2])
        host = group.place(50)
        assert group.host_of(50) == host
        assert 50 in group.replicas_on(host)

    def test_double_place_rejected(self):
        group = HashPlacementGroup([0, 1])
        group.place(5)
        with pytest.raises(ValueError):
            group.place(5)

    def test_join_migrates_most_replicas(self):
        """The Section 2.4 argument: ~(1 - 1/(M'+1)) of replicas move."""
        group = HashPlacementGroup(list(range(5)), seed=1)
        replicas = list(range(10, 110))
        group.place_all(replicas)
        migrated = group.add_member(99)
        expected = len(replicas) * (1 - 1 / 6)
        assert migrated == pytest.approx(expected, rel=0.35)

    def test_leave_rehashes(self):
        group = HashPlacementGroup(list(range(4)), seed=2)
        group.place_all(range(10, 60))
        migrated = group.remove_member(0)
        assert migrated > 0
        assert all(group.host_of(r) != 0 for r in range(10, 60))

    def test_cannot_remove_last(self):
        group = HashPlacementGroup([1])
        with pytest.raises(ValueError):
            group.remove_member(1)

    def test_hash_join_migrations_between_bounds(self):
        migrated = hash_join_migrations(60, 7, seed=0)
        assert 0 < migrated <= 60 - 7

    def test_hash_join_exceeds_ghba_cost(self):
        """Figure 11's ordering for a representative point."""
        n, m = 60, 7
        ghba_cost = (n - m) // (m + 1) + 1
        assert hash_join_migrations(n, m) > ghba_cost


class TestStaticSubtree:
    def make(self):
        return StaticSubtreePartition(
            {"/": 0, "/home": 1, "/home/alice": 2, "/var": 3}
        )

    def test_longest_prefix_wins(self):
        part = self.make()
        assert part.home_of("/home/alice/doc.txt") == 2
        assert part.home_of("/home/bob/doc.txt") == 1
        assert part.home_of("/etc/passwd") == 0

    def test_requires_root(self):
        with pytest.raises(ValueError):
            StaticSubtreePartition({"/home": 1})

    def test_no_migration_on_join(self):
        assert self.make().migration_cost_on_join == 0

    def test_skew_measurable(self):
        part = self.make()
        for _ in range(90):
            part.query("/home/alice/hot")
        for _ in range(10):
            part.query("/var/log")
        assert part.load_imbalance() > 1.5
        assert part.server_loads()[2] == 90

    def test_divide_evenly(self):
        part = StaticSubtreePartition.divide_evenly(
            ["/a", "/b", "/c"], [0, 1]
        )
        homes = {part.home_of(p) for p in ("/a/x", "/b/x", "/c/x")}
        assert homes == {0, 1}

    def test_lookup_depth(self):
        part = self.make()
        assert part.lookup_depth("/home/alice/f") >= 1
        assert part.lookup_depth("/") == 1


class TestComparisonTable:
    def test_all_schemes_present(self):
        assert "g_hba" in COMPARISON_TABLE
        assert len(COMPARISON_TABLE) == 6

    def test_ghba_row_claims(self):
        traits = COMPARISON_TABLE["g_hba"]
        assert traits.lookup_time == "O(1)"
        assert traits.migration_cost == "Small"
        assert traits.memory_overhead == "O(n/m)"

    def test_format_renders_all_rows(self):
        rendered = format_table()
        for scheme in COMPARISON_TABLE:
            assert scheme in rendered
