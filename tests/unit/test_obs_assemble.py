"""Unit tests for causal-tree assembly (`repro.obs.assemble`)."""

from repro.obs.assemble import (
    MUTATION_CHAIN,
    assemble_traces,
    chain_kinds,
    find_chains,
    render_forest,
    render_tree,
    tree_to_dict,
)


def _span(trace_id, span_id, parent_id=None, kind="", **extra):
    span = {"trace_id": trace_id, "span_id": span_id, "kind": kind}
    if parent_id is not None:
        span["parent_id"] = parent_id
    span.update(extra)
    return span


def _chain_spans(trace_id=7, base=100):
    """A full five-hop mutation chain, one span per stage."""
    spans = []
    parent = None
    for offset, kind in enumerate(MUTATION_CHAIN):
        spans.append(_span(trace_id, base + offset, parent, kind))
        parent = base + offset
    return spans


class TestAssembly:
    def test_links_parent_to_child(self):
        trees = assemble_traces(_chain_spans())
        assert len(trees) == 1
        tree = trees[0]
        assert tree.trace_id == 7
        assert len(tree.roots) == 1
        # Each stage nests under the previous one.
        node = tree.roots[0]
        kinds = [node.kind]
        while node.children:
            assert len(node.children) == 1
            node = node.children[0]
            kinds.append(node.kind)
        assert kinds == list(MUTATION_CHAIN)
        assert tree.span_count == 5

    def test_orphan_becomes_root_not_dropped(self):
        spans = [
            _span(1, 10, kind="wb_enqueue"),
            _span(1, 11, parent_id=999, kind="wb_flush"),  # parent missing
        ]
        (tree,) = assemble_traces(spans)
        assert len(tree.roots) == 2
        assert tree.span_count == 2

    def test_self_parent_becomes_root(self):
        (tree,) = assemble_traces([_span(1, 10, parent_id=10)])
        assert len(tree.roots) == 1

    def test_duplicate_span_id_first_writer_wins(self):
        spans = [
            _span(1, 10, kind="wb_enqueue"),
            _span(1, 10, kind="impostor"),
            _span(1, 11, parent_id=10, kind="wb_flush"),
        ]
        (tree,) = assemble_traces(spans)
        roots = {r.kind for r in tree.roots}
        assert roots == {"wb_enqueue", "impostor"}
        # The child attached to the first-seen node with span_id 10.
        enqueue = next(r for r in tree.roots if r.kind == "wb_enqueue")
        assert [c.kind for c in enqueue.children] == ["wb_flush"]

    def test_sorted_deterministically_regardless_of_input_order(self):
        spans = _chain_spans(trace_id=3) + _chain_spans(trace_id=1)
        forward = assemble_traces(spans)
        backward = assemble_traces(list(reversed(spans)))
        assert [t.trace_id for t in forward] == [1, 3]
        assert render_forest(forward) == render_forest(backward)

    def test_trace_id_filter(self):
        spans = _chain_spans(trace_id=3) + _chain_spans(trace_id=1)
        trees = assemble_traces(spans, trace_id=3)
        assert [t.trace_id for t in trees] == [3]

    def test_children_sorted_by_span_id(self):
        spans = [
            _span(1, 10, kind="wb_enqueue"),
            _span(1, 30, parent_id=10, kind="b"),
            _span(1, 20, parent_id=10, kind="a"),
        ]
        (tree,) = assemble_traces(spans)
        assert [c.span_id for c in tree.roots[0].children] == [20, 30]


class TestChainQueries:
    def test_chain_kinds_in_causal_order(self):
        (tree,) = assemble_traces(_chain_spans())
        assert chain_kinds(tree) == MUTATION_CHAIN

    def test_partial_chain(self):
        (tree,) = assemble_traces(_chain_spans()[:3])
        assert chain_kinds(tree) == ("wb_enqueue", "wb_flush", "wb_arbitrate")

    def test_find_chains_filters_to_complete(self):
        spans = _chain_spans(trace_id=1) + _chain_spans(trace_id=2)[:2]
        trees = assemble_traces(spans)
        complete = find_chains(trees)
        assert [t.trace_id for t in complete] == [1]
        relaxed = find_chains(trees, required=("wb_enqueue", "wb_flush"))
        assert [t.trace_id for t in relaxed] == [1, 2]


class TestRendering:
    def test_render_tree_labels_and_chain_line(self):
        spans = _chain_spans()
        spans[0].update(
            {"component": "gateway", "path": "/a/b", "origin_id": 4}
        )
        (tree,) = assemble_traces(spans)
        text = render_tree(tree)
        assert text.startswith("trace 7 (5 spans)")
        assert "chain: " + " -> ".join(MUTATION_CHAIN) in text
        assert "wb_enqueue@gateway [span=100, path=/a/b, origin=4]" in text
        assert "`-- " in text  # last-child connector

    def test_unkinded_span_renders_as_span(self):
        (tree,) = assemble_traces([_span(1, 10)])
        assert "span [span=10]" in render_tree(tree)

    def test_render_forest_empty(self):
        assert render_forest([]) == "no traces\n"

    def test_tree_to_dict_shape(self):
        (tree,) = assemble_traces(_chain_spans())
        dumped = tree_to_dict(tree)
        assert dumped["trace_id"] == 7
        assert dumped["span_count"] == 5
        assert dumped["chain"] == list(MUTATION_CHAIN)
        node = dumped["roots"][0]
        depth = 1
        while node["children"]:
            node = node["children"][0]
            depth += 1
        assert depth == 5
        assert node["span"]["kind"] == "inval_apply"
