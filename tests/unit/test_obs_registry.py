"""Unit tests for the metrics registry (`repro.obs.registry`)."""

import math

import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    MetricError,
    MetricsRegistry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounters:
    def test_unlabeled_counter_proxy(self, registry):
        counter = registry.counter("x_total", "help")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_labeled_children_independent(self, registry):
        family = registry.counter("q_total", labels=("level",))
        family.labels("L1").inc(3)
        family.labels("L2").inc()
        assert family.get("L1") == 3
        assert family.get("L2") == 1
        assert family.get("L3") == 0.0  # no child created
        assert len(family) == 2

    def test_child_caching(self, registry):
        family = registry.counter("c_total", labels=("server",))
        assert family.labels(7) is family.labels("7")

    def test_counters_only_go_up(self, registry):
        with pytest.raises(MetricError):
            registry.counter("d_total").inc(-1)

    def test_legacy_tally_views(self, registry):
        family = registry.counter("lv_total", labels=("level",))
        family.labels("L1").inc(3)
        family.labels("L2").inc(1)
        assert family.as_dict() == {"L1": 3, "L2": 1}
        assert family.total() == 4
        fractions = family.fractions()
        assert fractions["L1"] == pytest.approx(0.75)
        assert registry.counter("empty_total", labels=("x",)).fractions() == {}

    def test_wrong_label_arity_rejected(self, registry):
        family = registry.counter("a_total", labels=("server", "level"))
        with pytest.raises(MetricError):
            family.labels("only-one")


class TestGauges:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("g")
        gauge.set(10)
        child = gauge.labels()
        child.inc(5)
        child.dec(2)
        assert gauge.value == 13

    def test_retain_prunes_departed_series(self, registry):
        gauge = registry.gauge("files", labels=("server",))
        for sid in (0, 1, 2):
            gauge.labels(sid).set(sid * 10)
        gauge.retain([(0,), (2,)])
        assert len(gauge) == 2
        assert [key for key, _ in gauge.children()] == [("0",), ("2",)]


class TestHistograms:
    def test_observe_and_buckets(self, registry):
        histogram = registry.histogram("lat_ms", buckets=(1.0, 10.0))
        child = histogram.labels()
        for value in (0.5, 5.0, 50.0):
            child.observe(value)
        assert child.cumulative_buckets() == [
            (1.0, 1),
            (10.0, 2),
            (math.inf, 3),
        ]
        assert child.sum == pytest.approx(55.5)
        assert child.count == 3

    def test_value_on_bucket_boundary_counts_in_bucket(self, registry):
        # Prometheus 'le' semantics: an observation equal to the bound
        # belongs to that bucket.
        child = registry.histogram("b_ms", buckets=(1.0,)).labels()
        child.observe(1.0)
        assert child.cumulative_buckets()[0] == (1.0, 1)

    def test_recorder_passthroughs(self, registry):
        child = registry.histogram("r_ms").labels()
        for value in (1.0, 2.0, 3.0):
            child.observe(value)
        assert child.mean == pytest.approx(2.0)
        assert child.minimum == 1.0
        assert child.maximum == 3.0
        assert child.percentile(100) == 3.0
        assert set(child.summary()) == {
            "count", "mean", "min", "max", "p50", "p95", "p99",
        }

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(MetricError):
            registry.histogram("bad_ms", buckets=(5.0, 1.0))
        with pytest.raises(MetricError):
            registry.histogram("dup_ms", buckets=(1.0, 1.0))

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS_MS) == sorted(
            set(DEFAULT_LATENCY_BUCKETS_MS)
        )


class TestRegistry:
    def test_idempotent_registration(self, registry):
        first = registry.counter("x_total", "help", labels=("a",))
        second = registry.counter("x_total", "other help", labels=("a",))
        assert first is second
        assert len(registry) == 1

    def test_schema_conflicts_rejected(self, registry):
        registry.counter("x_total", labels=("a",))
        with pytest.raises(MetricError):
            registry.gauge("x_total", labels=("a",))
        with pytest.raises(MetricError):
            registry.counter("x_total", labels=("b",))

    def test_lookup_and_contains(self, registry):
        registry.gauge("g")
        assert "g" in registry
        assert registry.get("g") is not None
        assert registry.get("missing") is None
        assert "missing" not in registry

    def test_registration_order_preserved(self, registry):
        registry.counter("b_total")
        registry.gauge("a")
        assert [f.name for f in registry.families()] == ["b_total", "a"]

    def test_snapshot_shape(self, registry):
        registry.counter("c_total", labels=("k",)).labels("v").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h_ms").observe(1.0)
        snapshot = registry.snapshot()
        assert snapshot["c_total"] == {"kind": "counter", "series": {"v": 2}}
        assert snapshot["g"]["series"][""] == 7
        assert snapshot["h_ms"]["series"][""]["count"] == 1.0
