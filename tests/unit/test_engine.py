"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_fifo_among_equal_timestamps(self):
        sim = Simulator()
        order = []
        for name in "abc":
            sim.schedule(1.0, lambda n=name: order.append(n))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_now_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_scheduled_during_execution(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("nested"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "nested"]


class TestCancellation:
    def test_cancelled_event_does_not_run(self):
        sim = Simulator()
        ran = []
        event = sim.schedule(1.0, lambda: ran.append(1))
        sim.cancel(event)
        sim.run()
        assert ran == []

    def test_cancel_after_run_is_noop(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        sim.cancel(event)  # must not raise


class TestRunControl:
    def test_run_until_executes_only_due_events(self):
        sim = Simulator()
        ran = []
        sim.schedule(1.0, lambda: ran.append(1))
        sim.schedule(5.0, lambda: ran.append(5))
        executed = sim.run_until(2.0)
        assert executed == 1 and ran == [1]
        assert sim.now == 2.0
        assert sim.pending == 1

    def test_run_until_boundary_inclusive(self):
        sim = Simulator()
        ran = []
        sim.schedule(2.0, lambda: ran.append(2))
        sim.run_until(2.0)
        assert ran == [2]

    def test_run_max_events(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        assert sim.run(max_events=3) == 3
        assert sim.pending == 2

    def test_advance(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until(0.5)
        assert sim.advance(1.0) == 1
        assert sim.now == 1.5

    def test_run_backwards_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.run_until(0.5)

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False


class TestPeriodic:
    def test_periodic_fires_repeatedly(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(1.0, lambda: ticks.append(sim.now))
        sim.run_until(3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_periodic_stop(self):
        sim = Simulator()
        ticks = []
        stop = sim.schedule_periodic(1.0, lambda: ticks.append(sim.now))
        sim.run_until(2.5)
        stop()
        sim.run_until(10.0)
        assert ticks == [1.0, 2.0]

    def test_periodic_custom_start_delay(self):
        sim = Simulator()
        ticks = []
        sim.schedule_periodic(2.0, lambda: ticks.append(sim.now), start_delay=0.5)
        sim.run_until(3.0)
        assert ticks == [0.5, 2.5]

    def test_periodic_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            Simulator().schedule_periodic(0.0, lambda: None)
