"""Unit tests for the experiment result container and table rendering."""

import pytest

from repro.experiments.common import ExperimentResult, format_table


@pytest.fixture
def result():
    res = ExperimentResult(name="demo", title="Demo experiment")
    res.rows = [
        {"scheme": "a", "n": 10, "value": 1.5},
        {"scheme": "b", "n": 10, "value": 2.5},
        {"scheme": "a", "n": 20, "value": 3.5},
    ]
    return res


class TestExperimentResult:
    def test_column(self, result):
        assert result.column("value") == [1.5, 2.5, 3.5]

    def test_filter_single_criterion(self, result):
        rows = result.filter(scheme="a")
        assert len(rows) == 2
        assert all(row["scheme"] == "a" for row in rows)

    def test_filter_multiple_criteria(self, result):
        rows = result.filter(scheme="a", n=20)
        assert len(rows) == 1
        assert rows[0]["value"] == 3.5

    def test_filter_no_match(self, result):
        assert result.filter(scheme="z") == []

    def test_format_contains_title_and_rows(self, result):
        text = result.format()
        assert "Demo experiment" in text
        assert "scheme" in text and "2.500" in text

    def test_format_empty(self):
        empty = ExperimentResult(name="e", title="Empty")
        assert "(no rows)" in empty.format()

    def test_format_float_digits(self, result):
        assert "1.50000" in result.format(float_digits=5)


class TestFormatTable:
    def test_alignment(self):
        rows = [
            {"long_column_name": "x", "v": 1},
            {"long_column_name": "longer_value", "v": 22},
        ]
        lines = format_table(rows).splitlines()
        assert len(lines) == 4  # header, rule, two rows
        # All lines padded to a consistent width structure.
        assert lines[0].startswith("long_column_name")
        assert set(lines[1]) == {"-"}

    def test_missing_keys_render_empty(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        text = format_table(rows)
        assert "3" in text  # second row renders despite missing "b"

    def test_empty_rows(self):
        assert format_table([]) == "(no rows)"
