"""Unit tests for the gateway pipeline report section (`repro.obs.report`)."""

from repro.obs.registry import MetricsRegistry
from repro.obs.report import (
    PIPELINE_PREFIXES,
    gateway_pipeline_report,
    replication_report,
    transport_report,
)


def _registry():
    registry = MetricsRegistry()
    registry.counter(
        "gateway_writeback_flushed_total", labels=("op", "home")
    ).labels("create", "3").inc(5)
    registry.counter("gateway_cohort_published_total", labels=("member",))
    registry.counter("gateway_staleness_audited_total").inc(40)
    registry.counter("gateway_requests_total", labels=("op", "tenant"))
    return registry


class TestGatewayPipelineReport:
    def test_covers_writeback_cohort_and_staleness_prefixes(self):
        assert PIPELINE_PREFIXES == (
            "gateway_writeback_", "gateway_cohort_", "gateway_staleness_",
        )

    def test_renders_matching_families_with_series(self):
        report = gateway_pipeline_report(_registry())
        assert report.startswith("-- gateway pipeline counters --")
        assert "gateway_writeback_flushed_total" in report
        assert "create|3=5" in report
        assert "gateway_staleness_audited_total" in report
        assert "40" in report

    def test_skips_empty_and_unmatched_families(self):
        report = gateway_pipeline_report(_registry())
        # Registered but never incremented: no row.
        assert "gateway_cohort_published_total" not in report
        # Matching kind but not a pipeline prefix: no row.
        assert "gateway_requests_total" not in report

    def test_empty_registry_renders_empty_string(self):
        assert gateway_pipeline_report(MetricsRegistry()) == ""

    def test_unlabeled_series_renders_bare_value(self):
        registry = MetricsRegistry()
        registry.counter("gateway_staleness_violations_total").inc(2)
        report = gateway_pipeline_report(registry)
        (row,) = [
            line for line in report.splitlines()
            if line.startswith("gateway_staleness_violations_total")
        ]
        assert row.split()[-1] == "2"
        assert "=" not in row

    def test_histograms_and_gauges_excluded(self):
        registry = MetricsRegistry()
        registry.histogram("gateway_writeback_age_ms").observe(1.0)
        registry.gauge("gateway_writeback_pending").set(3)
        assert gateway_pipeline_report(registry) == ""


class TestTransportReport:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter(
            "transport_bytes_total", labels=("direction",)
        ).labels("out").inc(4096)
        registry.counter(
            "transport_frames_total", labels=("direction",)
        ).labels("in").inc(7)
        registry.counter("transport_connect_retries_total").inc(2)
        registry.gauge("transport_queue_high_water").set(12)
        registry.histogram("transport_retry_backoff_ms").observe(1.5)
        # Registered but never touched: no row.
        registry.counter("transport_backpressure_stalls_total")
        # Non-transport family: never rendered here.
        registry.counter("gateway_staleness_audited_total").inc(3)
        return registry

    def test_renders_transport_counters_and_gauges(self):
        report = transport_report(self._registry())
        assert report.startswith("-- transport counters --")
        assert "transport_bytes_total" in report
        assert "out=4096" in report
        assert "transport_frames_total" in report
        assert "in=7" in report
        assert "transport_queue_high_water" in report

    def test_skips_histograms_empty_and_foreign_families(self):
        report = transport_report(self._registry())
        assert "transport_retry_backoff_ms" not in report
        assert "transport_backpressure_stalls_total" not in report
        assert "gateway_staleness_audited_total" not in report

    def test_unlabeled_series_renders_bare_value(self):
        registry = MetricsRegistry()
        registry.counter("transport_connects_total").inc(5)
        report = transport_report(registry)
        (row,) = [
            line for line in report.splitlines()
            if line.startswith("transport_connects_total")
        ]
        assert row.split()[-1] == "5"
        assert "=" not in row

    def test_empty_registry_renders_empty_string(self):
        assert transport_report(MetricsRegistry()) == ""


class TestReplicationReport:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter(
            "replication_captured_total", labels=("home",)
        ).labels("0").inc(12)
        registry.counter("replication_ships_total").inc(3)
        registry.gauge(
            "replication_lag_entries", labels=("home",)
        ).labels("1").set(4)
        registry.histogram("replication_ship_lag_ms").observe(2.0)
        # Registered but never touched: no row.
        registry.counter("replication_retransmits_total")
        # Non-replication family: never rendered here.
        registry.counter("transport_connects_total").inc(5)
        return registry

    def test_renders_replication_counters_and_gauges(self):
        report = replication_report(self._registry())
        assert report.startswith("-- replication counters --")
        assert "replication_captured_total" in report
        assert "0=12" in report
        assert "replication_ships_total" in report
        assert "replication_lag_entries" in report
        assert "1=4" in report

    def test_skips_histograms_empty_and_foreign_families(self):
        report = replication_report(self._registry())
        assert "replication_ship_lag_ms" not in report
        assert "replication_retransmits_total" not in report
        assert "transport_connects_total" not in report

    def test_empty_registry_renders_empty_string(self):
        # Existing reports stay byte-identical when replication is off.
        assert replication_report(MetricsRegistry()) == ""
