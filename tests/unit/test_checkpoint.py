"""Unit tests for cluster checkpoint / restore."""

import json

import pytest

from repro.core import checkpoint
from repro.core.cluster import GHBACluster
from repro.core.query import QueryLevel
from repro.metadata.attributes import FileMetadata


@pytest.fixture
def live_cluster(small_config):
    cluster = GHBACluster(8, small_config, seed=3)
    cluster.populate(f"/ckpt/d{i % 4}/f{i}" for i in range(240))
    cluster.synchronize_replicas(force=True)
    return cluster


class TestRoundTrip:
    def test_restore_preserves_routing(self, live_cluster, tmp_path):
        placement = {
            path: live_cluster.home_of(path)
            for path in [f"/ckpt/d{i % 4}/f{i}" for i in range(0, 240, 11)]
        }
        path = tmp_path / "cluster.json"
        size = checkpoint.save(live_cluster, path)
        assert size > 0
        restored = checkpoint.load(path)
        restored.check_invariants()
        for file_path, home in placement.items():
            result = restored.query(file_path)
            assert result.found
            assert result.home_id == home

    def test_restore_preserves_structure(self, live_cluster, tmp_path):
        path = tmp_path / "cluster.json"
        checkpoint.save(live_cluster, path)
        restored = checkpoint.load(path)
        assert restored.num_servers == live_cluster.num_servers
        assert restored.num_groups == live_cluster.num_groups
        assert restored.replicas_per_server() == (
            live_cluster.replicas_per_server()
        )
        for group_id, group in live_cluster.groups.items():
            assert restored.groups[group_id].member_ids() == group.member_ids()
            assert restored.groups[group_id].idbfa.placements() == (
                group.idbfa.placements()
            )

    def test_restore_preserves_filters_bitwise(self, live_cluster, tmp_path):
        path = tmp_path / "cluster.json"
        checkpoint.save(live_cluster, path)
        restored = checkpoint.load(path)
        for server_id, server in live_cluster.servers.items():
            assert restored.servers[server_id].local_filter == (
                server.local_filter
            )
            assert restored.servers[server_id].published_filter == (
                server.published_filter
            )

    def test_negative_lookups_after_restore(self, live_cluster, tmp_path):
        path = tmp_path / "cluster.json"
        checkpoint.save(live_cluster, path)
        restored = checkpoint.load(path)
        result = restored.query("/never/existed")
        assert not result.found
        assert result.level is QueryLevel.NEGATIVE

    def test_restored_cluster_fully_operational(self, live_cluster, tmp_path):
        """Restore, then keep operating: inserts, syncs, reconfiguration."""
        path = tmp_path / "cluster.json"
        checkpoint.save(live_cluster, path)
        restored = checkpoint.load(path)
        restored.insert_file(
            FileMetadata(path="/after/restore", inode=999), home_id=0
        )
        restored.synchronize_replicas(force=True)
        assert restored.query("/after/restore").home_id == 0
        restored.add_server()
        restored.check_invariants()

    def test_snapshot_is_json_serializable(self, live_cluster):
        document = checkpoint.snapshot(live_cluster)
        json.dumps(document)  # must not raise

    def test_lru_state_not_persisted(self, live_cluster, tmp_path):
        """Caches are rebuilt, not restored (documented behaviour)."""
        hot = "/ckpt/d0/f0"
        live_cluster.query(hot, origin_id=0)
        assert live_cluster.query(hot, origin_id=0).level is QueryLevel.L1
        path = tmp_path / "cluster.json"
        checkpoint.save(live_cluster, path)
        restored = checkpoint.load(path)
        first = restored.query(hot, origin_id=0)
        assert first.level is not QueryLevel.L1


class TestFormatGuards:
    def test_version_mismatch_rejected(self, live_cluster):
        document = checkpoint.snapshot(live_cluster)
        document["format_version"] = 999
        with pytest.raises(ValueError, match="format"):
            checkpoint.restore(document)

    def test_corrupt_payload_rejected(self, live_cluster, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(checkpoint.CheckpointError):
            checkpoint.load(path)
        # CheckpointError subclasses ValueError, so pre-existing broad
        # handlers keep working.
        with pytest.raises(ValueError):
            checkpoint.load(path)

    def test_truncated_file_rejected_with_typed_error(
        self, live_cluster, tmp_path
    ):
        """A torn write (simulated by chopping a valid checkpoint in
        half) must raise CheckpointError, never half-restore."""
        path = tmp_path / "torn.json"
        checkpoint.save(live_cluster, path)
        payload = path.read_text()
        path.write_text(payload[: len(payload) // 2])
        with pytest.raises(checkpoint.CheckpointError, match="corrupt"):
            checkpoint.load(path)

    def test_non_object_document_rejected(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(checkpoint.CheckpointError, match="object"):
            checkpoint.load(path)


class TestAtomicWrite:
    def test_save_leaves_no_temp_file(self, live_cluster, tmp_path):
        path = tmp_path / "cluster.json"
        checkpoint.save(live_cluster, path)
        assert path.exists()
        assert list(tmp_path.iterdir()) == [path]

    def test_atomic_write_replaces_existing(self, tmp_path):
        path = tmp_path / "doc.json"
        checkpoint.atomic_write_text(path, "old")
        checkpoint.atomic_write_text(path, "new")
        assert path.read_text() == "new"
        assert list(tmp_path.iterdir()) == [path]
