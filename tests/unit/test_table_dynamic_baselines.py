"""Unit tests for the table-mapping and dynamic-subtree baselines."""

import pytest

from repro.baselines.dynamic_subtree import DynamicSubtreePartition
from repro.baselines.table_mapping import TableMappingCluster
from repro.metadata.attributes import FileMetadata


class TestTableMapping:
    @pytest.fixture
    def cluster(self):
        cluster = TableMappingCluster(6)
        cluster.populate(f"/t/d{d}/f{i}" for d in range(4) for i in range(30))
        return cluster

    def test_lookup_exact(self, cluster):
        meta = cluster.lookup("/t/d1/f3")
        assert meta is not None and meta.path == "/t/d1/f3"
        assert cluster.home_of("/t/d1/f3") is not None

    def test_lookup_missing_none(self, cluster):
        assert cluster.home_of("/nope") is None
        assert cluster.lookup("/nope") is None

    def test_no_false_routing_ever(self, cluster):
        """The table is exact — every entry resolves to its true store."""
        for d in range(4):
            for i in range(0, 30, 7):
                path = f"/t/d{d}/f{i}"
                home = cluster.home_of(path)
                assert cluster._stores[home][path].path == path

    def test_placement_balances_by_count(self, cluster):
        assert cluster.load_imbalance() <= 1.2

    def test_add_server_migrates_nothing(self, cluster):
        """Table 1's claim: table-based mapping has zero migration cost."""
        report = cluster.add_server()
        assert report["migrated_records"] == 0
        assert cluster.num_servers == 7
        assert cluster.lookup("/t/d0/f0") is not None

    def test_remove_server_moves_only_its_records(self, cluster):
        total = cluster.file_count
        victim_records = len(cluster._stores[2])
        report = cluster.remove_server(2)
        assert report["migrated_records"] == victim_records
        assert cluster.file_count == total
        for d in range(4):
            assert cluster.lookup(f"/t/d{d}/f1") is not None

    def test_remove_last_rejected(self):
        with pytest.raises(ValueError):
            TableMappingCluster(1).remove_server(0)

    def test_memory_grows_linearly_with_files(self):
        small = TableMappingCluster(4)
        small.populate(f"/m/f{i}" for i in range(100))
        large = TableMappingCluster(4)
        large.populate(f"/m/f{i}" for i in range(200))
        assert large.table_bytes_per_server() > 1.8 * (
            small.table_bytes_per_server()
        )

    def test_lookup_probe_count_logarithmic(self, cluster):
        import math

        assert cluster.lookup_probe_count("/t/d0/f0") == math.ceil(
            math.log2(cluster.file_count)
        )


class TestDynamicSubtree:
    def make(self, servers=3, dirs=6):
        return DynamicSubtreePartition(
            {"/": 0, **{f"/d{i}": i % servers for i in range(dirs)}}
        )

    def test_lookup_longest_prefix(self):
        part = self.make()
        assert part.home_of("/d1/file") == 1
        assert part.home_of("/other") == 0  # root fallback

    def test_requires_root(self):
        with pytest.raises(ValueError):
            DynamicSubtreePartition({"/d": 1})

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            DynamicSubtreePartition({"/": 0}, imbalance_threshold=0.5)

    def test_rebalance_moves_hot_subtree(self):
        part = self.make()
        # Hammer two subtrees both assigned to server 0.
        for _ in range(300):
            part.query("/d0/x")
            part.query("/d3/y")
        before = part.load_imbalance()
        moved = part.rebalance()
        assert moved >= 1
        assert part.load_imbalance() < before
        # One of the hot subtrees left server 0.
        homes = {part.home_of("/d0/x"), part.home_of("/d3/y")}
        assert homes != {0}

    def test_rebalance_noop_when_balanced(self):
        part = self.make()
        for i in range(6):
            for _ in range(50):
                part.query(f"/d{i}/f")
        assert part.rebalance() == 0

    def test_root_never_migrates(self):
        part = DynamicSubtreePartition({"/": 0, "/d0": 0})
        for _ in range(500):
            part.query("/elsewhere")  # lands on "/"
        part.rebalance()
        assert part.home_of("/elsewhere") == 0

    def test_migrations_counter(self):
        part = self.make()
        for _ in range(400):
            part.query("/d0/x")
            part.query("/d3/x")
        part.rebalance()
        assert part.migrations == part.rebalance() + part.migrations

    def test_reset_epoch(self):
        part = self.make()
        part.query("/d0/x")
        part.reset_epoch()
        assert part.load_imbalance() == 1.0

    def test_queries_still_resolve_after_moves(self):
        part = self.make()
        for _ in range(300):
            part.query("/d0/hot")
            part.query("/d3/hot")
        part.rebalance()
        for i in range(6):
            assert isinstance(part.home_of(f"/d{i}/f"), int)
