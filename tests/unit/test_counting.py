"""Unit tests for the counting Bloom filter."""

import pytest

from repro.bloom.counting import CountingBloomFilter


class TestBasics:
    def test_add_query(self):
        cbf = CountingBloomFilter(256, 4)
        cbf.add("x")
        assert "x" in cbf
        assert cbf.num_items == 1

    def test_remove_restores_absence(self):
        cbf = CountingBloomFilter(256, 4)
        cbf.add("x")
        cbf.remove("x")
        assert "x" not in cbf
        assert cbf.num_items == 0

    def test_remove_keeps_other_items(self):
        cbf = CountingBloomFilter(1024, 4)
        for i in range(50):
            cbf.add(f"keep{i}")
        cbf.add("victim")
        cbf.remove("victim")
        assert all(cbf.query(f"keep{i}") for i in range(50))

    def test_remove_absent_raises(self):
        cbf = CountingBloomFilter(256, 4)
        with pytest.raises(KeyError):
            cbf.remove("ghost")

    def test_discard_returns_false_for_absent(self):
        cbf = CountingBloomFilter(256, 4)
        assert cbf.discard("ghost") is False
        cbf.add("x")
        assert cbf.discard("x") is True

    def test_double_add_needs_double_remove(self):
        cbf = CountingBloomFilter(256, 4)
        cbf.add("x")
        cbf.add("x")
        cbf.remove("x")
        assert "x" in cbf
        cbf.remove("x")
        assert "x" not in cbf

    def test_clear(self):
        cbf = CountingBloomFilter(128, 4)
        cbf.update(["a", "b"])
        cbf.clear()
        assert "a" not in cbf and cbf.num_items == 0

    def test_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            CountingBloomFilter(0, 4)
        with pytest.raises(ValueError):
            CountingBloomFilter(64, 4, counter_bits=0)
        with pytest.raises(ValueError):
            CountingBloomFilter(64, 4, counter_bits=17)


class TestCounters:
    def test_count_estimate_upper_bounds_truth(self):
        cbf = CountingBloomFilter(512, 4)
        for _ in range(3):
            cbf.add("multi")
        assert cbf.count_estimate("multi") >= 3

    def test_saturation_does_not_false_negative(self):
        """Saturated counters must stay saturated through removals."""
        cbf = CountingBloomFilter(8, 2, counter_bits=2)  # max count 3
        for i in range(40):
            cbf.add(f"i{i}")  # guaranteed saturation on 8 counters
        cbf.discard("i0")
        # Every inserted item must still be reported present.
        assert all(cbf.query(f"i{i}") for i in range(1, 40))

    def test_fill_ratio(self):
        cbf = CountingBloomFilter(64, 2)
        assert cbf.fill_ratio() == 0.0
        cbf.add("a")
        assert 0 < cbf.fill_ratio() <= 2 / 64


class TestConversions:
    def test_to_bloom_filter_equivalent_membership(self):
        cbf = CountingBloomFilter(512, 4, seed=2)
        items = [f"p{i}" for i in range(40)]
        cbf.update(items)
        bloom = cbf.to_bloom_filter()
        for i in range(200):
            probe = f"probe{i}"
            assert bloom.query(probe) == cbf.query(probe)
        assert all(bloom.query(item) for item in items)

    def test_copy_independent(self):
        cbf = CountingBloomFilter(128, 4)
        cbf.add("a")
        clone = cbf.copy()
        clone.remove("a")
        assert "a" in cbf
        assert "a" not in clone

    def test_compatibility(self):
        a = CountingBloomFilter(128, 4, seed=1)
        b = CountingBloomFilter(128, 4, seed=1)
        c = CountingBloomFilter(128, 4, seed=9)
        assert a.is_compatible(b)
        assert not a.is_compatible(c)

    def test_contains_indices_matches_query(self):
        cbf = CountingBloomFilter(256, 4)
        cbf.add("x")
        indices = cbf.hash_family.indices("x")
        assert cbf.contains_indices(indices)
        absent = cbf.hash_family.indices("definitely-absent-item-123")
        assert cbf.contains_indices(absent) == cbf.query(
            "definitely-absent-item-123"
        )

    def test_size_bytes_positive(self):
        assert CountingBloomFilter(128, 4).size_bytes() > 0
