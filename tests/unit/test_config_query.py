"""Unit tests for GHBAConfig and query result types."""

import pytest

from repro.core.config import GHBAConfig
from repro.core.query import QueryLevel, QueryResult


class TestConfig:
    def test_defaults_valid(self):
        config = GHBAConfig()
        assert config.max_group_size >= 1
        assert config.filter_num_bits > 0
        assert config.filter_num_hashes >= 1

    def test_filter_geometry_derivation(self):
        config = GHBAConfig(expected_files_per_mds=1000, bits_per_file=16.0)
        assert config.filter_num_bits == 16_000
        assert config.filter_num_hashes == 11  # round(16 ln 2)
        assert config.filter_bytes == 2_000

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_group_size": 0},
            {"bits_per_file": 0},
            {"expected_files_per_mds": 0},
            {"lru_capacity": 0},
            {"update_threshold_bits": -1},
            {"heartbeat_interval_s": 0},
            {"memory_mode": "bogus"},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            GHBAConfig(**kwargs)

    def test_frozen(self):
        config = GHBAConfig()
        with pytest.raises(Exception):
            config.max_group_size = 99  # type: ignore[misc]


class TestQueryLevel:
    def test_ordering_values(self):
        assert QueryLevel.L1.value < QueryLevel.L2.value < QueryLevel.L3.value
        assert QueryLevel.L3.value < QueryLevel.L4.value

    def test_labels(self):
        assert QueryLevel.L1.label == "L1"
        assert QueryLevel.NEGATIVE.label == "L4-negative"


class TestQueryResult:
    def test_found(self):
        result = QueryResult(
            path="/f", home_id=3, level=QueryLevel.L1, latency_ms=0.1,
            messages=2, false_forwards=0, origin_id=1,
        )
        assert result.found

    def test_negative_not_found(self):
        result = QueryResult(
            path="/f", home_id=None, level=QueryLevel.NEGATIVE,
            latency_ms=1.0, messages=10, false_forwards=0, origin_id=1,
        )
        assert not result.found
