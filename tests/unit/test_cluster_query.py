"""Unit tests for the G-HBA cluster's four-level query path."""

import pytest

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.core.query import QueryLevel
from repro.metadata.attributes import FileMetadata


class TestBootstrap:
    def test_groups_packed_to_max_size(self, small_cluster):
        sizes = sorted(g.size for g in small_cluster.groups.values())
        assert sizes == [3, 3, 4]  # 10 servers, M=4, balanced partition

    def test_invariants_hold_after_bootstrap(self, small_cluster):
        small_cluster.check_invariants()

    def test_each_group_mirrors_all_outsiders(self, small_cluster):
        for group in small_cluster.groups.values():
            hosted = set(group.hosted_replica_ids())
            expected = set(small_cluster.servers) - set(group.member_ids())
            assert hosted == expected

    def test_replica_balance_within_groups(self, small_cluster):
        for group in small_cluster.groups.values():
            assert group.load_imbalance() <= 1

    def test_single_server_cluster(self, small_config):
        cluster = GHBACluster(1, small_config)
        cluster.check_invariants()
        cluster.insert_file(FileMetadata(path="/f", inode=1), home_id=0)
        assert cluster.query("/f").found

    def test_rejects_zero_servers(self, small_config):
        with pytest.raises(ValueError):
            GHBACluster(0, small_config)


class TestQueryCorrectness:
    def test_every_lookup_finds_true_home(self, populated_cluster):
        cluster, placement = populated_cluster
        for path, home in list(placement.items())[::7]:
            result = cluster.query(path)
            assert result.found
            assert result.home_id == home

    def test_negative_lookup(self, populated_cluster):
        cluster, _ = populated_cluster
        result = cluster.query("/definitely/not/there")
        assert not result.found
        assert result.level is QueryLevel.NEGATIVE
        assert result.messages >= 2 * (cluster.num_servers - 1)

    def test_origin_lru_learns_from_success(self, populated_cluster):
        cluster, placement = populated_cluster
        path, home = next(iter(placement.items()))
        origin = cluster.server_ids()[0]
        cluster.query(path, origin_id=origin)
        repeat = cluster.query(path, origin_id=origin)
        assert repeat.level is QueryLevel.L1
        assert repeat.home_id == home

    def test_l1_latency_below_l3(self, populated_cluster):
        cluster, placement = populated_cluster
        path = next(iter(placement))
        origin = cluster.server_ids()[0]
        first = cluster.query(path, origin_id=origin)
        second = cluster.query(path, origin_id=origin)
        if first.level in (QueryLevel.L3, QueryLevel.L4):
            assert second.latency_ms < first.latency_ms

    def test_l2_hit_when_origin_hosts_replica(self, populated_cluster):
        cluster, placement = populated_cluster
        # Find a (path, origin) pair where the origin hosts the home's
        # replica but is in a different group.
        for path, home in placement.items():
            home_group = cluster.group_of(home).group_id
            for origin_id, server in cluster.servers.items():
                if (
                    home in server.hosted_replicas()
                    and cluster.group_of(origin_id).group_id != home_group
                ):
                    result = cluster.query(path, origin_id=origin_id)
                    assert result.level in (QueryLevel.L2, QueryLevel.L1)
                    assert result.home_id == home
                    return
        pytest.skip("no suitable origin found")

    def test_l3_when_replica_elsewhere_in_group(self, populated_cluster):
        cluster, placement = populated_cluster
        for path, home in placement.items():
            home_group = cluster.group_of(home).group_id
            for origin_id, server in cluster.servers.items():
                origin_group = cluster.group_of(origin_id)
                if (
                    origin_group.group_id != home_group
                    and home not in server.hosted_replicas()
                    and origin_id != home
                ):
                    result = cluster.query(path, origin_id=origin_id)
                    assert result.home_id == home
                    assert result.level in (QueryLevel.L3, QueryLevel.L1)
                    return
        pytest.skip("no suitable origin found")

    def test_queueing_adds_latency(self, populated_cluster):
        cluster, placement = populated_cluster
        path = next(iter(placement))
        relaxed = cluster.query(path, origin_id=0, outstanding=0)
        loaded = cluster.query(path, origin_id=0, outstanding=10_000)
        assert loaded.latency_ms > relaxed.latency_ms


class TestMetrics:
    def test_level_counter_accumulates(self, populated_cluster):
        cluster, placement = populated_cluster
        for path in list(placement)[:20]:
            cluster.query(path)
        assert cluster.level_counter.total() >= 20
        fractions = cluster.level_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)

    def test_latency_recorder_tracks_queries(self, populated_cluster):
        cluster, placement = populated_cluster
        before = cluster.latency.count
        cluster.query(next(iter(placement)))
        assert cluster.latency.count == before + 1

    def test_replicas_per_server_matches_theta(self, small_cluster):
        for sid, theta in small_cluster.replicas_per_server().items():
            assert theta == small_cluster.servers[sid].theta

    def test_memory_bytes_per_server_positive(self, small_cluster):
        assert all(
            v > 0 for v in small_cluster.memory_bytes_per_server().values()
        )


class TestHomeOf:
    def test_home_of_finds_placement(self, populated_cluster):
        cluster, placement = populated_cluster
        path, home = next(iter(placement.items()))
        assert cluster.home_of(path) == home

    def test_home_of_none_for_absent(self, populated_cluster):
        cluster, _ = populated_cluster
        assert cluster.home_of("/nope") is None
