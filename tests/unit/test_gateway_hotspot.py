"""Unit tests for heavy-hitter detection (repro.gateway.hotspot)."""

import pytest

from repro.gateway.hotspot import HotspotDetector, SpaceSavingSketch


class TestSpaceSavingSketch:
    def test_counts_within_capacity_are_exact(self):
        sketch = SpaceSavingSketch(capacity=4)
        for _ in range(5):
            sketch.offer("/a")
        sketch.offer("/b")
        assert sketch.estimate("/a") == 5
        assert sketch.guaranteed("/a") == 5
        assert sketch.estimate("/missing") == 0

    def test_eviction_inherits_floor_as_error(self):
        sketch = SpaceSavingSketch(capacity=2)
        sketch.offer("/a")
        sketch.offer("/a")
        sketch.offer("/b")
        sketch.offer("/c")  # evicts /b (min count 1)
        assert "/b" not in sketch
        assert sketch.estimate("/c") == 2  # floor 1 + its own 1
        assert sketch.guaranteed("/c") == 1

    def test_never_undercounts(self):
        sketch = SpaceSavingSketch(capacity=3)
        truth = {}
        stream = (["/hot"] * 30) + [f"/cold{i % 7}" for i in range(40)]
        for key in stream:
            truth[key] = truth.get(key, 0) + 1
            sketch.offer(key)
        for hitter in sketch.top(3):
            assert hitter.count >= truth.get(hitter.key, 0)
        # The guarantee: any key above N/capacity is monitored.
        assert "/hot" in sketch

    def test_top_is_deterministically_ordered(self):
        sketch = SpaceSavingSketch(capacity=4)
        for key in ["/b", "/a", "/b", "/a", "/c"]:
            sketch.offer(key)
        assert [h.key for h in sketch.top(3)] == ["/a", "/b", "/c"]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SpaceSavingSketch(capacity=0)
        sketch = SpaceSavingSketch()
        with pytest.raises(ValueError):
            sketch.offer("/a", amount=0)


class TestHotspotDetector:
    def test_hot_after_threshold(self):
        detector = HotspotDetector(window_s=5.0, hot_threshold=3)
        for i in range(3):
            detector.observe("/hot", 0.1 * i)
        assert detector.is_hot("/hot")
        assert not detector.is_hot("/cold")
        assert detector.hot_keys() == ["/hot"]

    def test_window_rotation_decays_cold_keys(self):
        detector = HotspotDetector(window_s=1.0, hot_threshold=3)
        for i in range(4):
            detector.observe("/burst", 0.1 * i)
        assert detector.is_hot("/burst")
        # One window later the burst is only in the previous epoch...
        detector.observe("/other", 1.5)
        assert detector.estimate("/burst") == 4
        # ...two windows later it is forgotten entirely.
        detector.observe("/other", 2.5)
        assert detector.estimate("/burst") == 0
        assert not detector.is_hot("/burst")

    def test_sustained_heat_survives_rotation(self):
        detector = HotspotDetector(window_s=1.0, hot_threshold=4)
        for tick in range(30):  # 3 per window across 10 windows
            detector.observe("/steady", tick * 0.1)
        assert detector.rotations >= 2
        assert detector.is_hot("/steady")

    def test_idle_gap_rotates_multiple_epochs(self):
        detector = HotspotDetector(window_s=1.0, hot_threshold=2)
        detector.observe("/a", 0.0)
        detector.observe("/a", 10.0)  # long idle gap
        assert detector.estimate("/a") == 1  # the old epoch fell off

    def test_top_k_merges_epochs(self):
        detector = HotspotDetector(window_s=1.0, hot_threshold=2)
        detector.observe("/a", 0.9)
        detector.observe("/a", 0.95)
        detector.observe("/a", 1.1)  # rotation: /a spans both epochs
        detector.observe("/b", 1.2)
        top = detector.top_k(2)
        assert [(h.key, h.count) for h in top] == [("/a", 3), ("/b", 1)]
