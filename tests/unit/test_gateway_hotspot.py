"""Unit tests for heavy-hitter detection (repro.gateway.hotspot).

Includes the lock for the documented **shared-pin semantics**: the
hotspot shield and ``LeaseCache.pin`` are tenant-blind by design — a pin
earned by one tenant's traffic protects the lease for every tenant
(pins donate benefit, never steal capacity), while per-tenant *blame*
lives in the detector's tenant attribution and per-tenant fairness is
enforced upstream at admission.  See the module docstring of
:mod:`repro.gateway.hotspot`.
"""

import pytest

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.gateway.client import GatewayConfig, MetadataClient, Outcome
from repro.gateway.hotspot import HotspotDetector, SpaceSavingSketch


class TestSpaceSavingSketch:
    def test_counts_within_capacity_are_exact(self):
        sketch = SpaceSavingSketch(capacity=4)
        for _ in range(5):
            sketch.offer("/a")
        sketch.offer("/b")
        assert sketch.estimate("/a") == 5
        assert sketch.guaranteed("/a") == 5
        assert sketch.estimate("/missing") == 0

    def test_eviction_inherits_floor_as_error(self):
        sketch = SpaceSavingSketch(capacity=2)
        sketch.offer("/a")
        sketch.offer("/a")
        sketch.offer("/b")
        sketch.offer("/c")  # evicts /b (min count 1)
        assert "/b" not in sketch
        assert sketch.estimate("/c") == 2  # floor 1 + its own 1
        assert sketch.guaranteed("/c") == 1

    def test_never_undercounts(self):
        sketch = SpaceSavingSketch(capacity=3)
        truth = {}
        stream = (["/hot"] * 30) + [f"/cold{i % 7}" for i in range(40)]
        for key in stream:
            truth[key] = truth.get(key, 0) + 1
            sketch.offer(key)
        for hitter in sketch.top(3):
            assert hitter.count >= truth.get(hitter.key, 0)
        # The guarantee: any key above N/capacity is monitored.
        assert "/hot" in sketch

    def test_top_is_deterministically_ordered(self):
        sketch = SpaceSavingSketch(capacity=4)
        for key in ["/b", "/a", "/b", "/a", "/c"]:
            sketch.offer(key)
        assert [h.key for h in sketch.top(3)] == ["/a", "/b", "/c"]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SpaceSavingSketch(capacity=0)
        sketch = SpaceSavingSketch()
        with pytest.raises(ValueError):
            sketch.offer("/a", amount=0)


class TestHotspotDetector:
    def test_hot_after_threshold(self):
        detector = HotspotDetector(window_s=5.0, hot_threshold=3)
        for i in range(3):
            detector.observe("/hot", 0.1 * i)
        assert detector.is_hot("/hot")
        assert not detector.is_hot("/cold")
        assert detector.hot_keys() == ["/hot"]

    def test_window_rotation_decays_cold_keys(self):
        detector = HotspotDetector(window_s=1.0, hot_threshold=3)
        for i in range(4):
            detector.observe("/burst", 0.1 * i)
        assert detector.is_hot("/burst")
        # One window later the burst is only in the previous epoch...
        detector.observe("/other", 1.5)
        assert detector.estimate("/burst") == 4
        # ...two windows later it is forgotten entirely.
        detector.observe("/other", 2.5)
        assert detector.estimate("/burst") == 0
        assert not detector.is_hot("/burst")

    def test_sustained_heat_survives_rotation(self):
        detector = HotspotDetector(window_s=1.0, hot_threshold=4)
        for tick in range(30):  # 3 per window across 10 windows
            detector.observe("/steady", tick * 0.1)
        assert detector.rotations >= 2
        assert detector.is_hot("/steady")

    def test_idle_gap_rotates_multiple_epochs(self):
        detector = HotspotDetector(window_s=1.0, hot_threshold=2)
        detector.observe("/a", 0.0)
        detector.observe("/a", 10.0)  # long idle gap
        assert detector.estimate("/a") == 1  # the old epoch fell off

    def test_top_k_merges_epochs(self):
        detector = HotspotDetector(window_s=1.0, hot_threshold=2)
        detector.observe("/a", 0.9)
        detector.observe("/a", 0.95)
        detector.observe("/a", 1.1)  # rotation: /a spans both epochs
        detector.observe("/b", 1.2)
        top = detector.top_k(2)
        assert [(h.key, h.count) for h in top] == [("/a", 3), ("/b", 1)]


class TestTenantAttribution:
    """Per-tenant blame for heat: who made a key hot, without changing
    what *hot* means (the shield itself stays tenant-blind)."""

    def test_counts_and_dominant_tenant(self):
        detector = HotspotDetector(window_s=5.0, hot_threshold=3)
        detector.observe("/hot", 0.0, tenant="u0")
        detector.observe("/hot", 0.1, tenant="u0")
        detector.observe("/hot", 0.2, tenant="u1")
        assert detector.tenant_counts("/hot") == {"u0": 2, "u1": 1}
        assert detector.dominant_tenant("/hot") == "u0"
        assert detector.tenant_counts("/cold") == {}
        assert detector.dominant_tenant("/cold") is None

    def test_dominance_tie_breaks_by_name(self):
        detector = HotspotDetector(window_s=5.0, hot_threshold=3)
        detector.observe("/p", 0.0, tenant="u9")
        detector.observe("/p", 0.1, tenant="u1")
        assert detector.dominant_tenant("/p") == "u1"

    def test_attribution_merges_epochs_and_decays(self):
        detector = HotspotDetector(window_s=1.0, hot_threshold=2)
        detector.observe("/a", 0.9, tenant="u0")
        detector.observe("/a", 1.1, tenant="u1")  # rotation in between
        assert detector.tenant_counts("/a") == {"u0": 1, "u1": 1}
        # Two windows past the last observation both epochs have
        # rotated away: the attribution is forgotten with the counts.
        detector.observe("/b", 3.5, tenant="u2")
        assert detector.tenant_counts("/a") == {}

    def test_eviction_prunes_attribution(self):
        detector = HotspotDetector(capacity=2, window_s=5.0, hot_threshold=2)
        detector.observe("/a", 0.0, tenant="u0")
        detector.observe("/a", 0.1, tenant="u0")
        detector.observe("/b", 0.2, tenant="u1")
        detector.observe("/c", 0.3, tenant="u2")  # evicts /b (min count)
        assert detector.tenant_counts("/b") == {}
        assert detector.dominant_tenant("/b") is None
        # Attribution never outlives sketch membership.
        assert detector.tenant_counts("/c") == {"u2": 1}

    def test_default_tenant_when_unattributed(self):
        detector = HotspotDetector(window_s=5.0, hot_threshold=2)
        detector.observe("/a", 0.0)
        assert detector.tenant_counts("/a") == {"-": 1}


class TestSharedPinSemantics:
    """The documented contract: hot-path pins are **tenant-blind**.

    A pin earned by one tenant's traffic shields the lease for everyone
    — it can only *add* cache residency (donate), never take another
    tenant's admission share (fairness is enforced upstream, before the
    cache is consulted).  Per-tenant blame stays available through the
    detector's attribution.
    """

    def _client(self, paths, **overrides):
        config = GHBAConfig(
            max_group_size=4,
            expected_files_per_mds=200,
            lru_capacity=128,
            lru_filter_bits=1 << 10,
            seed=5,
        )
        cluster = GHBACluster(4, config, seed=5)
        cluster.populate(paths)
        cluster.synchronize_replicas(force=True)
        defaults = dict(
            cache_capacity=8,
            lease_ttl_s=30.0,
            hot_lease_ttl_s=60.0,
            rate_per_s=1e6,
            burst=1e4,
            hot_threshold=3,
        )
        defaults.update(overrides)
        return cluster, MetadataClient(cluster, GatewayConfig(**defaults))

    def test_pin_earned_by_one_tenant_shields_everyone(self):
        paths = ["/pin/hot"] + [f"/pin/cold{i}" for i in range(20)]
        cluster, client = self._client(paths)
        # Tenant u0's traffic crosses the shield threshold: pinned.
        for i in range(4):
            client.lookup("/pin/hot", 0.1 * i, tenant="u0")
        assert client.hotspots.is_hot("/pin/hot")
        # Tenant u1 floods 20 distinct paths through an 8-entry cache —
        # enough churn to evict any unpinned lease.
        for i in range(20):
            client.lookup(f"/pin/cold{i}", 1.0 + 0.01 * i, tenant="u1")
        # The pinned lease survived the churn and answers u1 from cache:
        # the pin donated benefit across the tenant boundary.
        response = client.lookup("/pin/hot", 2.0, tenant="u1")
        assert response.outcome is Outcome.HIT
        assert response.from_cache
        assert response.tenant == "u1"
        # Blame stays attributed: the heat belongs to u0.
        assert client.hotspots.dominant_tenant("/pin/hot") == "u0"
        assert client.hotspots.tenant_counts("/pin/hot")["u0"] >= 3

    def test_unpinned_lease_is_evicted_by_the_same_churn(self):
        """Non-vacuity: without the pin (threshold out of reach) the
        identical churn evicts the lease — the previous test passes
        because of the pin, not a too-large cache."""
        paths = ["/pin/hot"] + [f"/pin/cold{i}" for i in range(20)]
        cluster, client = self._client(paths, hot_threshold=1000)
        for i in range(4):
            client.lookup("/pin/hot", 0.1 * i, tenant="u0")
        assert not client.hotspots.is_hot("/pin/hot")
        for i in range(20):
            client.lookup(f"/pin/cold{i}", 1.0 + 0.01 * i, tenant="u1")
        response = client.lookup("/pin/hot", 2.0, tenant="u1")
        assert response.outcome is not Outcome.HIT
