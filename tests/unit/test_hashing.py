"""Unit tests for the double-hashing index family."""

import pytest

from repro.bloom.hashing import HashFamily


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            HashFamily(0, 100)
        with pytest.raises(ValueError):
            HashFamily(4, 0)

    def test_parameters_round_trip(self):
        family = HashFamily(5, 1024, seed=9)
        assert family.parameters() == (5, 1024, 9)


class TestIndices:
    def test_count_and_range(self):
        family = HashFamily(7, 128)
        indices = family.indices("/some/path")
        assert len(indices) == 7
        assert all(0 <= i < 128 for i in indices)

    def test_deterministic(self):
        family = HashFamily(4, 256, seed=3)
        assert family.indices("x") == family.indices("x")

    def test_equal_families_agree(self):
        a = HashFamily(4, 256, seed=3)
        b = HashFamily(4, 256, seed=3)
        assert a.indices("/p/q") == b.indices("/p/q")

    def test_different_seeds_disagree(self):
        a = HashFamily(4, 1 << 20, seed=1)
        b = HashFamily(4, 1 << 20, seed=2)
        assert a.indices("/p/q") != b.indices("/p/q")

    def test_accepts_str_bytes_int(self):
        family = HashFamily(3, 64)
        family.indices("abc")
        family.indices(b"abc")
        family.indices(12345)
        family.indices(-7)

    def test_str_and_equivalent_bytes_agree(self):
        family = HashFamily(3, 64)
        assert family.indices("abc") == family.indices(b"abc")

    def test_rejects_other_types(self):
        family = HashFamily(3, 64)
        with pytest.raises(TypeError):
            family.indices(1.5)  # type: ignore[arg-type]

    def test_distribution_covers_space(self):
        """Indices from many items should spread over most of the space."""
        family = HashFamily(4, 64)
        seen = set()
        for i in range(200):
            seen.update(family.indices(f"item-{i}"))
        assert len(seen) > 56  # nearly all 64 positions touched


class TestCompatibility:
    def test_is_compatible(self):
        assert HashFamily(4, 64, 1).is_compatible(HashFamily(4, 64, 1))
        assert not HashFamily(4, 64, 1).is_compatible(HashFamily(4, 64, 2))
        assert not HashFamily(4, 64, 1).is_compatible(HashFamily(5, 64, 1))
        assert not HashFamily(4, 64, 1).is_compatible(HashFamily(4, 65, 1))

    def test_equality_and_hash(self):
        a = HashFamily(4, 64, 1)
        b = HashFamily(4, 64, 1)
        assert a == b
        assert hash(a) == hash(b)
