"""Unit tests for the exporters (`repro.obs.export`)."""

from pathlib import Path

import pytest

from repro.obs.export import (
    SnapshotSeries,
    prometheus_exposition,
    read_spans_jsonl,
    schedule_metrics_snapshots,
    span_to_dict,
    write_prometheus,
    write_spans_jsonl,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.trace import CollectingTracer
from repro.sim.engine import Simulator

GOLDEN = Path(__file__).parent / "data" / "prometheus_golden.prom"
GATEWAY_GOLDEN = (
    Path(__file__).parent / "data" / "prometheus_gateway_golden.prom"
)


def _finished_span():
    tracer = CollectingTracer()
    span = tracer.start_span("/fs/a", origin_id=2)
    span.event("l1_probe", target=2, latency_ms=0.002, messages=0, hits=0)
    span.event("l2_probe", target=2, latency_ms=0.004, messages=0, hits=1)
    span.event("forward", target=5, latency_ms=0.4, messages=2)
    span.event("verify", target=5, latency_ms=0.01, messages=0, found=True)
    span.finish("L2", home_id=5, latency_ms=0.416, messages=2)
    return span


class TestSpanJsonl:
    def test_span_to_dict_round_trips_totals(self):
        record = span_to_dict(_finished_span())
        assert record["path"] == "/fs/a"
        assert record["level"] == "L2"
        assert record["home_id"] == 5
        assert record["messages"] == 2
        assert sum(e["messages"] for e in record["events"]) == 2
        assert [e["kind"] for e in record["events"]] == [
            "l1_probe", "l2_probe", "forward", "verify",
        ]
        assert record["events"][1]["detail"] == {"hits": 1}
        assert record["events"][1]["level"] == "L2"

    def test_write_and_read_jsonl(self, tmp_path):
        spans = [_finished_span(), _finished_span()]
        out = tmp_path / "spans.jsonl"
        assert write_spans_jsonl(spans, out) == 2
        records = read_spans_jsonl(out)
        assert len(records) == 2
        assert records[0] == span_to_dict(spans[0])

    def test_write_empty(self, tmp_path):
        out = tmp_path / "none.jsonl"
        assert write_spans_jsonl([], out) == 0
        assert read_spans_jsonl(out) == []


def _golden_registry():
    registry = MetricsRegistry()
    queries = registry.counter(
        "ghba_queries_total",
        "Queries served, by hierarchy level.",
        labels=("level",),
    )
    queries.labels("L1").inc(12)
    queries.labels("L2").inc(3)
    registry.gauge("ghba_servers", "Servers in the cluster.").set(10)
    latency = registry.histogram(
        "ghba_query_latency_ms",
        "End-to-end query latency.",
        buckets=(0.1, 1.0, 10.0),
    )
    for value in (0.05, 0.5, 0.5, 5.0, 50.0):
        latency.observe(value)
    escapes = registry.counter(
        "esc_total",
        'Label values with "quotes" and back\\slash.',
        labels=("path",),
    )
    escapes.labels('/a "b"\\c').inc()
    return registry


class TestPrometheus:
    def test_matches_golden_file(self):
        assert prometheus_exposition(_golden_registry()) == GOLDEN.read_text()

    def test_deterministic(self):
        assert prometheus_exposition(_golden_registry()) == (
            prometheus_exposition(_golden_registry())
        )

    def test_empty_registry_renders_empty(self):
        assert prometheus_exposition(MetricsRegistry()) == ""

    def test_write_prometheus_returns_byte_count(self, tmp_path):
        out = tmp_path / "metrics.prom"
        size = write_prometheus(_golden_registry(), out)
        assert size == out.stat().st_size
        assert out.read_text() == GOLDEN.read_text()


def _gateway_registry():
    """The labeled gateway families added by the observability pass."""
    registry = MetricsRegistry()
    requests = registry.counter(
        "gateway_requests_total",
        "Gateway requests, by op and tenant.",
        labels=("op", "tenant"),
    )
    requests.labels("lookup", "t0").inc(120)
    requests.labels("lookup", "t1").inc(30)
    requests.labels("create", "t0").inc(8)
    flushed = registry.counter(
        "gateway_writeback_flushed_total",
        "Buffered mutations flushed, by op and home MDS.",
        labels=("op", "home"),
    )
    flushed.labels("create", "3").inc(5)
    flushed.labels("delete", "7").inc(2)
    latency = registry.histogram(
        "gateway_lookup_latency_ms",
        "Gateway-observed lookup latency, per tenant.",
        labels=("tenant",),
        buckets=(0.01, 0.1, 1.0, 10.0, 100.0),
    )
    for value in (0.005, 0.05, 0.5, 0.5, 5.0):
        latency.labels("t0").observe(value)
    latency.labels("t1").observe(50.0)
    return registry


class TestPrometheusEdgeCases:
    def test_newlines_in_label_values_are_escaped(self):
        registry = MetricsRegistry()
        family = registry.counter("nl_total", labels=("msg",))
        family.labels("line1\nline2").inc()
        text = prometheus_exposition(registry)
        assert 'nl_total{msg="line1\\nline2"} 1' in text
        # The exposition itself must stay one-series-per-line.
        series_lines = [
            line for line in text.splitlines() if line.startswith("nl_total{")
        ]
        assert len(series_lines) == 1

    def test_quotes_and_backslashes_escaped_together(self):
        registry = MetricsRegistry()
        family = registry.counter("esc2_total", labels=("v",))
        family.labels('q"q\\b\nn').inc()
        text = prometheus_exposition(registry)
        assert 'esc2_total{v="q\\"q\\\\b\\nn"} 1' in text

    def test_empty_histogram_family_emits_header_only(self):
        registry = MetricsRegistry()
        registry.histogram("h_ms", "Never observed.", buckets=(1.0,))
        text = prometheus_exposition(registry)
        assert "# HELP h_ms Never observed." in text
        assert "# TYPE h_ms histogram" in text
        assert "h_ms_bucket" not in text
        assert "h_ms_count" not in text

    def test_empty_labeled_counter_emits_header_only(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "Never incremented.", labels=("op",))
        text = prometheus_exposition(registry)
        assert "# TYPE c_total counter" in text
        assert "c_total{" not in text

    def test_gateway_families_match_golden_file(self):
        exposition = prometheus_exposition(_gateway_registry())
        assert exposition == GATEWAY_GOLDEN.read_text()

    def test_gateway_exposition_deterministic(self):
        assert prometheus_exposition(_gateway_registry()) == (
            prometheus_exposition(_gateway_registry())
        )


class TestSnapshots:
    def test_periodic_snapshots_on_virtual_clock(self):
        simulator = Simulator()
        registry = MetricsRegistry()
        counter = registry.counter("ops_total")
        series, stop = schedule_metrics_snapshots(
            simulator, registry, interval_s=1.0
        )
        for tick in range(3):
            simulator.schedule(tick + 0.5, counter.inc)
        simulator.run_until(3.0)
        assert series.times() == [1.0, 2.0, 3.0]
        assert [v for _, v in series.series("ops_total")] == [1, 2, 3]
        stop()
        simulator.schedule(3.5, counter.inc)
        simulator.run_until(10.0)
        assert len(series) == 3  # no snapshots after stop()

    def test_snapshot_jsonl_sink(self, tmp_path):
        simulator = Simulator()
        registry = MetricsRegistry()
        registry.gauge("g").set(4)
        out = tmp_path / "snaps.jsonl"
        _, stop = schedule_metrics_snapshots(
            simulator, registry, interval_s=2.0, jsonl_path=str(out)
        )
        simulator.run_until(4.0)
        stop()
        lines = [line for line in out.read_text().splitlines() if line]
        assert len(lines) == 2
        assert '"time_s": 2.0' in lines[0]

    def test_series_skips_missing_metric(self):
        series = SnapshotSeries()
        series.append(1.0, {"present": {"kind": "gauge", "series": {"": 1}}})
        assert series.series("absent") == []
        assert series.series("present") == [(1.0, 1)]
