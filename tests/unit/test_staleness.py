"""Unit tests for the stale-replica false-rate analysis."""

import pytest

from repro.bloom.bloom_filter import BloomFilter
from repro.bloom.staleness import (
    expected_l4_escape_rate,
    measure_staleness,
    stale_replica_rates,
)


class TestAnalyticRates:
    def test_fresh_additions_mostly_missed(self):
        rates = stale_replica_rates(
            num_bits=16_000, num_hashes=11,
            items_at_snapshot=1_000, added_since=50, deleted_since=0,
        )
        assert rates.false_negative_rate > 0.99
        assert rates.base_false_positive_rate < 0.01

    def test_deleted_items_always_hit(self):
        rates = stale_replica_rates(
            num_bits=8_000, num_hashes=6,
            items_at_snapshot=1_000, added_since=0, deleted_since=100,
        )
        assert rates.false_positive_deleted == 1.0

    def test_denser_filter_weaker_false_negative(self):
        """A fuller filter collides more, so stale misses are less certain."""
        sparse = stale_replica_rates(16_000, 11, 100, 10, 0)
        dense = stale_replica_rates(16_000, 11, 2_000, 10, 0)
        assert dense.false_negative_rate < sparse.false_negative_rate

    def test_validation(self):
        with pytest.raises(ValueError):
            stale_replica_rates(100, 4, 10, added_since=-1, deleted_since=0)
        with pytest.raises(ValueError):
            stale_replica_rates(100, 4, 10, added_since=0, deleted_since=11)


class TestEmpiricalAgreement:
    def test_added_items_missed_by_replica(self):
        """Live filter vs. a stale snapshot: analytic FN rate holds."""
        live = BloomFilter(16_000, 11, seed=1)
        live.update(f"/old/f{i}" for i in range(1_000))
        replica = live.copy()
        fresh = [f"/fresh/f{i}" for i in range(200)]
        live.update(fresh)
        missed = sum(1 for path in fresh if not replica.query(path))
        rates = stale_replica_rates(16_000, 11, 1_000, 200, 0)
        assert missed / len(fresh) == pytest.approx(
            rates.false_negative_rate, abs=0.05
        )

    def test_replica_still_claims_everything_it_snapshot(self):
        live = BloomFilter(8_000, 6, seed=2)
        items = [f"/del/f{i}" for i in range(500)]
        live.update(items)
        replica = live.copy()
        # "Delete" half the items (plain filters cannot clear bits).
        assert all(replica.query(path) for path in items)


class TestEscapeRateModel:
    def test_zero_fresh_queries_zero_escapes(self):
        assert expected_l4_escape_rate(0.0, 0.2) == 0.0

    def test_full_coverage_zero_escapes(self):
        assert expected_l4_escape_rate(0.5, 1.0) == 0.0

    def test_matches_fig13_form(self):
        # 4% fresh-file queries, M/N = 6/30 coverage.
        assert expected_l4_escape_rate(0.04, 0.2) == pytest.approx(0.032)

    def test_escape_grows_as_coverage_shrinks(self):
        # Larger N at fixed M -> lower coverage -> more L4 (Figure 13).
        small_n = expected_l4_escape_rate(0.04, 6 / 30)
        large_n = expected_l4_escape_rate(0.04, 9 / 100)
        assert large_n > small_n

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_l4_escape_rate(1.5, 0.5)
        with pytest.raises(ValueError):
            expected_l4_escape_rate(0.5, -0.1)


class TestMeasureStaleness:
    def test_identical_filters_zero_drift(self):
        bloom = BloomFilter(4_096, 6)
        bloom.update(f"/m/f{i}" for i in range(100))
        assert measure_staleness(bloom, bloom.copy()) == 0.0

    def test_drift_grows_with_divergence(self):
        base = BloomFilter(4_096, 6)
        base.update(f"/m/f{i}" for i in range(100))
        slightly = base.copy()
        heavily = base.copy()
        base_small = base.copy()
        base_small.update(f"/new/f{i}" for i in range(20))
        base_large = base.copy()
        base_large.update(f"/new/f{i}" for i in range(800))
        assert measure_staleness(base_large, heavily) >= measure_staleness(
            base_small, slightly
        )

    def test_incompatible_rejected(self):
        with pytest.raises(ValueError):
            measure_staleness(BloomFilter(64, 2, 0), BloomFilter(64, 2, 1))

    def test_bad_probe_count(self):
        bloom = BloomFilter(64, 2)
        with pytest.raises(ValueError):
            measure_staleness(bloom, bloom.copy(), probes=0)
