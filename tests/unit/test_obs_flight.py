"""Unit tests for the crash flight recorder (`repro.obs.flight`)."""

import json

import pytest

from repro.faults import FaultPlan, PlanFaultInjector
from repro.obs.flight import (
    DEFAULT_CAPACITY,
    NULL_RECORDER,
    FlightRecorder,
    FlightRecorderHub,
    NullFlightRecorder,
)


class TestFlightRecorder:
    def test_records_in_order_with_detail(self):
        recorder = FlightRecorder("gw", capacity=8)
        recorder.record("enqueue", 0.5, path="/a", op="create")
        recorder.record("flush", 1.0)
        events = recorder.events()
        assert [e["kind"] for e in events] == ["enqueue", "flush"]
        assert events[0]["time_s"] == 0.5
        assert events[0]["detail"] == {"path": "/a", "op": "create"}
        assert "detail" not in events[1]  # empty detail is elided

    def test_ring_evicts_oldest(self):
        recorder = FlightRecorder("gw", capacity=3)
        for i in range(10):
            recorder.record("e", float(i), n=i)
        events = recorder.events()
        assert len(events) == 3
        assert [e["detail"]["n"] for e in events] == [7, 8, 9]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder("gw", capacity=0)

    def test_clear(self):
        recorder = FlightRecorder("gw")
        recorder.record("e")
        recorder.clear()
        assert len(recorder) == 0


class TestNullRecorder:
    def test_disabled_and_inert(self):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.record("anything", 1.0, x=1)
        assert NULL_RECORDER.events() == []
        assert len(NULL_RECORDER) == 0
        assert isinstance(NULL_RECORDER, NullFlightRecorder)


class TestHub:
    def test_recorder_is_lazily_created_and_cached(self):
        hub = FlightRecorderHub(capacity=4)
        a = hub.recorder("gateway-0")
        assert a is hub.recorder("gateway-0")
        assert a.capacity == 4
        hub.recorder("cohort-1")
        assert hub.components() == ["cohort-1", "gateway-0"]

    def test_default_capacity(self):
        hub = FlightRecorderHub()
        assert hub.recorder("x").capacity == DEFAULT_CAPACITY

    def test_dump_snapshots_every_ring(self):
        hub = FlightRecorderHub()
        hub.recorder("a").record("ev_a", 1.0)
        hub.recorder("b").record("ev_b", 2.0, n=1)
        record = hub.dump("test-reason", now=3.0)
        assert record["reason"] == "test-reason"
        assert record["time_s"] == 3.0
        assert set(record["components"]) == {"a", "b"}
        assert record["components"]["a"][0]["kind"] == "ev_a"
        assert hub.dumps == [record]
        assert len(hub) == 1

    def test_dump_writes_slugged_file(self, tmp_path):
        hub = FlightRecorderHub(dump_dir=str(tmp_path / "flight"))
        hub.recorder("gw").record("crash", 1.0, node=3)
        hub.dump("crash node #3!", now=1.0)
        files = list((tmp_path / "flight").iterdir())
        assert len(files) == 1
        assert files[0].name == "flight-001-crash-node--3-.json"
        loaded = json.loads(files[0].read_text())
        assert loaded["reason"] == "crash node #3!"
        assert loaded["components"]["gw"][0]["detail"] == {"node": 3}

    def test_dumps_are_ordinal(self, tmp_path):
        hub = FlightRecorderHub(dump_dir=str(tmp_path))
        hub.dump("first")
        hub.dump("second")
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names[0].startswith("flight-001-")
        assert names[1].startswith("flight-002-")


class TestInjectorIntegration:
    def test_silence_dumps_once_per_outage(self):
        hub = FlightRecorderHub()
        injector = PlanFaultInjector(FaultPlan(seed=1), flight=hub)
        injector.silence(3)
        injector.silence(3)  # idempotent: same outage, no second dump
        assert len(hub.dumps) == 1
        assert hub.dumps[0]["reason"] == "crash-node-3"
        injector.restore(3)
        injector.silence(3)  # a new outage dumps again
        assert len(hub.dumps) == 2
        faults = hub.recorder("faults").events()
        assert [e["kind"] for e in faults] == [
            "silence", "restore", "silence",
        ]

    def test_injector_without_hub_still_works(self):
        injector = PlanFaultInjector(FaultPlan(seed=1))
        injector.silence(3)
        injector.restore(3)
        assert injector.counts["silence"] == 1
