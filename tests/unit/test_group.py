"""Unit tests for Group: replica hosting, IDBFA coordination, membership."""

import pytest

from repro.core.config import GHBAConfig
from repro.core.group import Group, GroupError
from repro.core.server import MetadataServer
from repro.metadata.attributes import FileMetadata


@pytest.fixture
def config():
    return GHBAConfig(
        max_group_size=4,
        expected_files_per_mds=128,
        lru_capacity=16,
        lru_filter_bits=128,
        seed=3,
    )


def make_server(server_id, config, files=()):
    server = MetadataServer(server_id, config)
    for index, path in enumerate(files):
        server.insert_metadata(FileMetadata(path=path, inode=index))
    return server


def make_group(config, member_ids=(0, 1, 2)):
    group = Group(0)
    for server_id in member_ids:
        server = make_server(server_id, config)
        group.idbfa.add_member(server_id)
        group.adopt_member(server)
    return group


class TestReplicaHosting:
    def test_install_goes_to_lightest(self, config):
        group = make_group(config)
        outside = make_server(10, config, files=["/r10"])
        host = group.install_replica(10, outside.publish_filter())
        assert host in group.member_ids()
        assert group.idbfa.host_of(10) == host
        # Second replica lands on a different (now lighter) member.
        outside2 = make_server(11, config)
        host2 = group.install_replica(11, outside2.publish_filter())
        assert host2 != host

    def test_install_member_replica_rejected(self, config):
        group = make_group(config)
        with pytest.raises(GroupError):
            group.install_replica(1, make_server(1, config).publish_filter())

    def test_install_duplicate_rejected(self, config):
        group = make_group(config)
        group.install_replica(10, make_server(10, config).publish_filter())
        with pytest.raises(GroupError):
            group.install_replica(10, make_server(10, config).publish_filter())

    def test_remove_replica(self, config):
        group = make_group(config)
        host = group.install_replica(
            10, make_server(10, config).publish_filter()
        )
        assert group.remove_replica(10) == host
        assert group.idbfa.host_of(10) is None
        with pytest.raises(GroupError):
            group.remove_replica(10)

    def test_update_replica_reaches_true_host(self, config):
        group = make_group(config)
        outside = make_server(10, config)
        host = group.install_replica(10, outside.publish_filter())
        outside.insert_metadata(FileMetadata(path="/fresh", inode=9))
        messages, false_candidates = group.update_replica(
            10, outside.publish_filter()
        )
        assert messages >= 1
        hosting = group.get_member(host)
        assert hosting.segment.get_replica(10).query("/fresh")

    def test_update_unknown_replica_rejected(self, config):
        group = make_group(config)
        with pytest.raises(GroupError):
            group.update_replica(99, make_server(99, config).publish_filter())


class TestGroupQuery:
    def test_multicast_finds_member_local_file(self, config):
        group = make_group(config)
        group.get_member(1).insert_metadata(FileMetadata(path="/on1", inode=1))
        lookup = group.multicast_query("/on1")
        assert lookup.unique_hit == 1

    def test_multicast_finds_hosted_replica(self, config):
        group = make_group(config)
        outside = make_server(10, config, files=["/outside-file"])
        group.install_replica(10, outside.publish_filter())
        lookup = group.multicast_query("/outside-file")
        assert lookup.unique_hit == 10

    def test_multicast_zero_hits_for_unknown(self, config):
        group = make_group(config)
        assert group.multicast_query("/nowhere").hits == ()


class TestMembership:
    def test_add_member_offloads_replicas(self, config):
        group = make_group(config, member_ids=(0, 1))
        # Group of 2 in a 10-server system: hosts 8 outside replicas.
        for outside_id in range(2, 10):
            group.install_replica(
                outside_id, make_server(outside_id, config).publish_filter()
            )
        newcomer = make_server(20, config)
        migrated = group.add_member(newcomer, total_servers=11)
        assert migrated > 0
        assert newcomer.theta == migrated
        assert group.load_imbalance() <= 1

    def test_add_member_with_replicas_rejected(self, config):
        group = make_group(config)
        loaded = make_server(20, config)
        loaded.host_replica(99, make_server(99, config).publish_filter())
        with pytest.raises(GroupError):
            group.add_member(loaded, total_servers=4)

    def test_remove_member_migrates_hosted_replicas(self, config):
        group = make_group(config)
        for outside_id in (10, 11, 12):
            group.install_replica(
                outside_id, make_server(outside_id, config).publish_filter()
            )
        victim_id = group.idbfa.host_of(10)
        _, migrated = group.remove_member(victim_id)
        assert group.idbfa.host_of(10) is not None
        assert group.idbfa.host_of(10) != victim_id
        assert victim_id not in group

    def test_remove_last_member_rejected(self, config):
        group = make_group(config, member_ids=(0,))
        with pytest.raises(GroupError):
            group.remove_member(0)

    def test_dissolve_returns_all_replicas(self, config):
        group = make_group(config)
        for outside_id in (10, 11):
            group.install_replica(
                outside_id, make_server(outside_id, config).publish_filter()
            )
        replicas = group.dissolve()
        assert sorted(home for home, _ in replicas) == [10, 11]
        assert group.size == 0


class TestInvariant:
    def test_mirror_invariant_holds(self, config):
        group = make_group(config)
        all_ids = [0, 1, 2, 10, 11]
        for outside_id in (10, 11):
            group.install_replica(
                outside_id, make_server(outside_id, config).publish_filter()
            )
        group.check_mirror_invariant(all_ids)

    def test_mirror_invariant_detects_missing(self, config):
        group = make_group(config)
        with pytest.raises(GroupError, match="missing"):
            group.check_mirror_invariant([0, 1, 2, 10])

    def test_mirror_invariant_detects_idbfa_drift(self, config):
        group = make_group(config)
        group.install_replica(10, make_server(10, config).publish_filter())
        group.check_mirror_invariant([0, 1, 2, 10])
        # Corrupt the IDBFA placement record.
        group.idbfa.move(10, group.member_ids()[0])
        actual_host = [
            m.server_id for m in group.members() if 10 in m.segment
        ][0]
        if group.idbfa.host_of(10) != actual_host:
            with pytest.raises(GroupError, match="IDBFA"):
                group.check_mirror_invariant([0, 1, 2, 10])
