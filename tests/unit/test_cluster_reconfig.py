"""Unit tests for join / leave / split / merge / failure (Sections 3.1-3.2, 4.5)."""

import pytest

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.core.group import GroupError
from repro.metadata.attributes import FileMetadata


class TestJoin:
    def test_join_group_with_room(self, small_cluster):
        # 10 servers, M=4 -> one group of 2 has room.
        report = small_cluster.add_server()
        assert not report.split
        assert small_cluster.num_servers == 11
        small_cluster.check_invariants()

    def test_join_migrates_to_newcomer(self, small_cluster):
        report = small_cluster.add_server()
        newcomer = small_cluster.servers[report.server_id]
        assert newcomer.theta == report.migrated_replicas

    def test_join_replicates_newcomer_everywhere(self, small_cluster):
        report = small_cluster.add_server()
        own_group = small_cluster.group_of(report.server_id).group_id
        for group in small_cluster.groups.values():
            if group.group_id != own_group:
                assert report.server_id in group.hosted_replica_ids()

    def test_join_triggers_split_when_all_full(self, small_config):
        cluster = GHBACluster(8, small_config)  # two full groups of 4
        report = cluster.add_server()
        assert report.split
        assert cluster.num_groups == 3
        cluster.check_invariants()

    def test_split_sizes_match_paper(self, small_config):
        """Split of a full group (M=4) yields M - floor(M/2) = 2 and
        floor(M/2) + 1 = 3 members (Section 3.2)."""
        cluster = GHBACluster(4, small_config)  # one full group
        cluster.add_server()
        sizes = sorted(g.size for g in cluster.groups.values())
        assert sizes == [2, 3]

    def test_m_equals_one_degenerates_to_full_mirrors(self, small_config):
        """M=1: every group is a single MDS holding all N-1 replicas —
        G-HBA degenerates to HBA, and joins must still keep the mirror."""
        import dataclasses

        config = dataclasses.replace(small_config, max_group_size=1)
        cluster = GHBACluster(3, config, seed=1)
        cluster.check_invariants()
        report = cluster.add_server()
        cluster.check_invariants()
        newcomer = cluster.servers[report.server_id]
        assert newcomer.theta == cluster.num_servers - 1

    def test_many_joins_keep_invariants(self, small_cluster):
        for _ in range(10):
            small_cluster.add_server()
            small_cluster.check_invariants()
        assert small_cluster.num_servers == 20

    def test_queries_survive_joins(self, populated_cluster):
        cluster, placement = populated_cluster
        cluster.add_server()
        cluster.add_server()
        for path, home in list(placement.items())[:25]:
            result = cluster.query(path)
            assert result.home_id == home


class TestLeave:
    def test_remove_rehomes_metadata(self, populated_cluster):
        cluster, placement = populated_cluster
        victim = cluster.server_ids()[0]
        victim_files = [p for p, h in placement.items() if h == victim]
        cluster.remove_server(victim)
        cluster.check_invariants()
        cluster.synchronize_replicas(force=True)
        for path in victim_files[:10]:
            result = cluster.query(path)
            assert result.found
            assert result.home_id != victim

    def test_remove_drops_replicas_everywhere(self, small_cluster):
        victim = small_cluster.server_ids()[0]
        small_cluster.remove_server(victim)
        for group in small_cluster.groups.values():
            assert victim not in group.hosted_replica_ids()

    def test_remove_unknown_raises(self, small_cluster):
        with pytest.raises(KeyError):
            small_cluster.remove_server(999)

    def test_cannot_remove_last_server(self, small_config):
        cluster = GHBACluster(1, small_config)
        with pytest.raises(GroupError):
            cluster.remove_server(0)

    def test_merge_when_groups_shrink(self, small_config):
        # 6 servers, M=4: groups of 4 and 2.  Removing two members of the
        # 4-group leaves 2+2 <= 4 -> merge into one group.
        cluster = GHBACluster(6, small_config)
        big_group = max(cluster.groups.values(), key=lambda g: g.size)
        victims = big_group.member_ids()[:2]
        report = None
        for victim in victims:
            report = cluster.remove_server(victim)
        assert report is not None and report.merged
        assert cluster.num_groups == 1
        cluster.check_invariants()

    def test_many_leaves_keep_invariants(self, small_cluster):
        for _ in range(7):
            victim = small_cluster.server_ids()[-1]
            small_cluster.remove_server(victim)
            small_cluster.check_invariants()
        assert small_cluster.num_servers == 3


class TestJoinLeaveChurn:
    def test_alternating_churn(self, populated_cluster):
        cluster, placement = populated_cluster
        for round_index in range(4):
            cluster.add_server()
            cluster.check_invariants()
            victim = cluster.server_ids()[round_index]
            cluster.remove_server(victim)
            cluster.check_invariants()
        cluster.synchronize_replicas(force=True)
        found = sum(
            1 for path in list(placement)[:40] if cluster.query(path).found
        )
        assert found == 40


class TestFailure:
    def test_failed_server_files_become_negative(self, populated_cluster):
        """Fail-over must degrade, never misroute (Section 4.5)."""
        cluster, placement = populated_cluster
        path, home = next(iter(placement.items()))
        cluster.fail_server(home)
        cluster.check_invariants()
        result = cluster.query(path)
        assert not result.found

    def test_other_files_still_resolve_after_failure(self, populated_cluster):
        cluster, placement = populated_cluster
        victim = cluster.server_ids()[0]
        cluster.fail_server(victim)
        survivors = [
            (p, h) for p, h in placement.items() if h != victim
        ][:20]
        for path, home in survivors:
            result = cluster.query(path)
            assert result.home_id == home

    def test_failed_hosted_replicas_refetched(self, small_cluster):
        victim = small_cluster.server_ids()[0]
        small_cluster.fail_server(victim)
        small_cluster.check_invariants()

    def test_fail_unknown_raises(self, small_cluster):
        with pytest.raises(KeyError):
            small_cluster.fail_server(12345)


class TestRecovery:
    def test_recover_restores_failed_server_files(self, populated_cluster):
        """Table 1's recovery column: crash, then restore from disk."""
        cluster, placement = populated_cluster
        victim = cluster.server_ids()[0]
        victim_files = [p for p, h in placement.items() if h == victim]
        cluster.fail_server(victim)
        assert not cluster.query(victim_files[0]).found
        assert victim in cluster.crashed_server_ids()
        report = cluster.recover_server(victim)
        cluster.check_invariants()
        new_id = report.server_id
        for path in victim_files[:10]:
            result = cluster.query(path)
            assert result.found
            assert result.home_id == new_id

    def test_recover_without_crash_rejected(self, small_cluster):
        with pytest.raises(KeyError):
            small_cluster.recover_server(0)

    def test_recover_consumes_crashed_state(self, populated_cluster):
        cluster, _ = populated_cluster
        victim = cluster.server_ids()[0]
        cluster.fail_server(victim)
        cluster.recover_server(victim)
        assert victim not in cluster.crashed_server_ids()
        with pytest.raises(KeyError):
            cluster.recover_server(victim)

    def test_graceful_remove_leaves_no_crashed_state(self, small_cluster):
        victim = small_cluster.server_ids()[0]
        small_cluster.remove_server(victim)
        assert small_cluster.crashed_server_ids() == []


class TestReconfigReports:
    def test_ghba_join_cheaper_than_full_mirror(self, small_config):
        """The join must migrate far fewer than N replicas (Figure 11)."""
        cluster = GHBACluster(20, small_config)
        report = cluster.add_server()
        if not report.split:
            assert report.migrated_replicas < 20 / 2

    def test_messages_accounted(self, small_cluster):
        report = small_cluster.add_server()
        assert report.messages > 0
