"""Unit tests for the fault-injection layer (plan, injector, retry,
transport recovery, heartbeat drills)."""

import queue
import time

import pytest

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.core.failure import HeartbeatMonitor
from repro.faults import (
    DEFAULT_RETRY,
    NO_RETRY,
    NULL_INJECTOR,
    CrashEvent,
    FaultPlan,
    Partition,
    PlanFaultInjector,
    RetryPolicy,
    run_drill,
)
from repro.prototype.messages import Message, MessageKind
from repro.prototype.transport import InProcessTransport, TransportClosed
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng


# ----------------------------------------------------------------------
# FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(delay_rate=-0.1)

    def test_crashes_must_be_sorted(self):
        with pytest.raises(ValueError):
            FaultPlan(
                crashes=(CrashEvent(2.0, 1), CrashEvent(1.0, 2))
            )

    def test_crash_restore_ordering(self):
        with pytest.raises(ValueError):
            CrashEvent(at_s=1.0, node_id=0, restore_at_s=0.5)

    def test_partition_severs_only_across_island(self):
        part = Partition(start_s=0.0, end_s=1.0, island=frozenset({0, 1}))
        assert part.severs(0, 2)
        assert part.severs(2, 1)
        assert not part.severs(0, 1)
        assert not part.severs(2, 3)

    def test_client_sender_never_partitioned(self):
        part = Partition(start_s=0.0, end_s=1.0, island=frozenset({0}))
        assert not part.severs(-1, 0)
        assert not part.severs(-1, 2)

    def test_severed_respects_window(self):
        plan = FaultPlan(
            partitions=(
                Partition(start_s=1.0, end_s=2.0, island=frozenset({0})),
            )
        )
        assert not plan.severed(0, 1, 0.5)
        assert plan.severed(0, 1, 1.5)
        assert not plan.severed(0, 1, 2.0)  # end is exclusive

    def test_chaos_schedule_is_reproducible_data(self):
        a = FaultPlan.chaos(7, 10.0, range(8), group=(0, 1))
        b = FaultPlan.chaos(7, 10.0, range(8), group=(0, 1))
        assert a == b
        assert a.crashes[0].node_id == 7 % 8
        assert a.partitions[0].island == frozenset({0, 1})


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            max_attempts=5,
            base_delay_s=0.010,
            multiplier=2.0,
            max_delay_s=0.025,
            jitter=0.0,
        )
        rng = make_rng(0)
        delays = [policy.backoff_s(k, rng) for k in range(4)]
        assert delays == [0.010, 0.020, 0.025, 0.025]

    def test_jitter_is_bounded_and_seeded(self):
        policy = RetryPolicy(jitter=0.5, base_delay_s=0.010)
        a = [policy.backoff_s(0, make_rng(3)) for _ in range(5)]
        b = [policy.backoff_s(0, make_rng(3)) for _ in range(5)]
        assert a == b  # fresh same-seed RNGs draw identically
        for value in a:
            assert 0.010 <= value < 0.015

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        assert NO_RETRY.max_attempts == 1
        assert DEFAULT_RETRY.max_attempts == 3


# ----------------------------------------------------------------------
# Injectors
# ----------------------------------------------------------------------
def _oneway(sender=0):
    return Message(kind=MessageKind.PING, sender=sender)


def _request(sender=0):
    message = Message(kind=MessageKind.PING, sender=sender)
    message.reply_to = queue.Queue()
    return message


class TestNullInjector:
    def test_disabled_and_inert(self):
        assert not NULL_INJECTOR.enabled
        verdict = NULL_INJECTOR.on_send(3, _oneway())
        assert verdict.deliver and verdict.copies == 1 and verdict.delay_s == 0
        assert NULL_INJECTOR.filter_targets(0, [1, 2]) == ([1, 2], [])
        assert not NULL_INJECTOR.is_silenced(1)
        NULL_INJECTOR.silence(1)  # no-ops must not raise or record
        NULL_INJECTOR.restore(1)
        assert not NULL_INJECTOR.is_silenced(1)


class TestPlanFaultInjector:
    def test_same_seed_same_fault_sequence(self):
        plan = FaultPlan(seed=11, drop_rate=0.2, delay_rate=0.3, duplicate_rate=0.1)
        a, b = PlanFaultInjector(plan), PlanFaultInjector(plan)
        verdicts_a = [a.on_send(1, _oneway()) for _ in range(200)]
        verdicts_b = [b.on_send(1, _oneway()) for _ in range(200)]
        assert verdicts_a == verdicts_b
        assert a.counts == b.counts
        assert a.counts["drop_oneway"] > 0
        assert a.counts["delay"] > 0
        assert a.counts["duplicate"] > 0

    def test_request_vs_oneway_accounting(self):
        plan = FaultPlan(seed=1, drop_rate=1.0)
        injector = PlanFaultInjector(plan)
        injector.on_send(1, _request())
        injector.on_send(1, _oneway())
        assert injector.counts["drop_request"] == 1
        assert injector.counts["drop_oneway"] == 1
        assert injector.dropped_requests == 1
        assert injector.dropped_oneways == 1

    def test_partition_cuts_by_clock(self):
        plan = FaultPlan(
            partitions=(
                Partition(start_s=1.0, end_s=2.0, island=frozenset({1})),
            )
        )
        injector = PlanFaultInjector(plan)
        assert injector.on_send(1, _request(sender=0)).deliver
        injector.advance(1.5)
        verdict = injector.on_send(1, _request(sender=0))
        assert not verdict.deliver and verdict.reason == "partition"
        # Client traffic still flows into the island.
        assert injector.on_send(1, _request(sender=-1)).deliver
        injector.advance(2.5)
        assert injector.on_send(1, _request(sender=0)).deliver

    def test_clock_cannot_go_backward(self):
        injector = PlanFaultInjector(FaultPlan())
        injector.advance(2.0)
        with pytest.raises(ValueError):
            injector.advance(1.0)

    def test_filter_targets_drops_silenced_and_severed(self):
        plan = FaultPlan(
            partitions=(
                Partition(start_s=0.0, end_s=9.0, island=frozenset({2})),
            )
        )
        injector = PlanFaultInjector(plan)
        injector.silence(3)
        reachable, lost = injector.filter_targets(0, [1, 2, 3])
        assert reachable == [1]
        assert sorted(lost) == [2, 3]
        injector.restore(3)
        reachable, _ = injector.filter_targets(0, [1, 3])
        assert reachable == [1, 3]

    def test_sim_and_transport_streams_independent(self):
        plan = FaultPlan(seed=5, drop_rate=0.3)
        lone = PlanFaultInjector(plan)
        baseline = [lone.on_send(1, _oneway()).deliver for _ in range(100)]
        mixed = PlanFaultInjector(plan)
        outcomes = []
        for index in range(100):
            if index % 3 == 0:  # interleave sim-side draws
                mixed.filter_targets(0, [1, 2])
            outcomes.append(mixed.on_send(1, _oneway()).deliver)
        assert outcomes == baseline


# ----------------------------------------------------------------------
# Transport: retry, gather partial failure, shared deadline
# ----------------------------------------------------------------------
class EchoNode:
    """Minimal mailbox consumer: replies to everything immediately."""

    def __init__(self, transport, node_id, delay_s=0.0):
        import threading

        self.mailbox = transport.register(node_id)
        self.delay_s = delay_s
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self):
        while True:
            message = self.mailbox.get()
            if message.kind is MessageKind.STOP:
                break
            if self.delay_s:
                time.sleep(self.delay_s)
            if message.reply_to is not None:
                message.reply_to.put(message.reply(ok=True))

    def stop(self):
        self.mailbox.put(Message(kind=MessageKind.STOP, sender=-1))
        self.thread.join(timeout=5)


class TestTransportRecovery:
    def test_retry_recovers_from_drops(self):
        plan = FaultPlan(seed=2, drop_rate=0.4)
        transport = InProcessTransport(
            injector=PlanFaultInjector(plan),
            retry=RetryPolicy(max_attempts=12),
        )
        node = EchoNode(transport, 0)
        try:
            for _ in range(50):
                reply = transport.request(0, _request_message(), timeout_s=5)
                assert reply.payload["ok"]
            assert transport.retries > 0
            assert transport.exhausted == 0
        finally:
            node.stop()

    def test_exhaustion_raises_and_counts(self):
        plan = FaultPlan(seed=2, drop_rate=1.0)
        transport = InProcessTransport(
            injector=PlanFaultInjector(plan),
            retry=RetryPolicy(max_attempts=3),
        )
        node = EchoNode(transport, 0)
        try:
            with pytest.raises(TimeoutError):
                transport.request(0, _request_message(), timeout_s=5)
            assert transport.retries == 2
            assert transport.exhausted == 1
        finally:
            node.stop()

    def test_dropped_requests_reconcile(self):
        plan = FaultPlan(seed=9, drop_rate=0.5)
        injector = PlanFaultInjector(plan)
        transport = InProcessTransport(
            injector=injector, retry=RetryPolicy(max_attempts=3)
        )
        node = EchoNode(transport, 0)
        try:
            for _ in range(60):
                try:
                    transport.request(0, _request_message(), timeout_s=5)
                except TimeoutError:
                    pass
            assert injector.dropped_requests == (
                transport.retries + transport.exhausted
            )
        finally:
            node.stop()

    def test_gather_returns_partial_results(self):
        """A dead destination must not discard the replies that arrived."""
        transport = InProcessTransport(retry=NO_RETRY)
        nodes = [EchoNode(transport, nid) for nid in range(3)]
        transport.register(3)  # registered but nobody consumes: silent
        try:
            result = transport.gather(
                [0, 1, 2, 3],
                lambda dest: _request_message(),
                timeout_s=0.3,
            )
            assert sorted(result.replies) == [0, 1, 2]
            assert result.missing == (3,)
            assert not result.complete
        finally:
            for node in nodes:
                node.stop()

    def test_gather_reports_unreachable(self):
        transport = InProcessTransport(retry=NO_RETRY)
        node = EchoNode(transport, 0)
        try:
            result = transport.gather(
                [0, 99], lambda dest: _request_message(), timeout_s=1
            )
            assert sorted(result.replies) == [0]
            assert result.unreachable == (99,)
        finally:
            node.stop()

    def test_gather_shares_one_deadline_per_wave(self):
        """Total wait is bounded by the timeout, not len(dests) * timeout."""
        transport = InProcessTransport(retry=NO_RETRY)
        silent = [transport.register(nid) for nid in range(6)]
        start = time.monotonic()
        result = transport.gather(
            range(6), lambda dest: _request_message(), timeout_s=0.4
        )
        elapsed = time.monotonic() - start
        assert len(result.replies) == 0
        assert result.missing == tuple(range(6))
        assert elapsed < 6 * 0.4 * 0.8  # far below the per-dest worst case

    def test_gather_retries_silent_destinations(self):
        plan = FaultPlan(seed=4, drop_rate=0.6)
        transport = InProcessTransport(
            injector=PlanFaultInjector(plan),
            retry=RetryPolicy(max_attempts=15),
        )
        nodes = [EchoNode(transport, nid) for nid in range(4)]
        try:
            result = transport.gather(
                range(4), lambda dest: _request_message(), timeout_s=5
            )
            assert sorted(result.replies) == [0, 1, 2, 3]
            assert result.complete
            assert transport.retries > 0
        finally:
            for node in nodes:
                node.stop()

    def test_null_injector_counts_unchanged(self):
        """The fault layer's default must not perturb wire accounting."""
        transport = InProcessTransport()
        node = EchoNode(transport, 0)
        try:
            transport.request(0, _request_message(), timeout_s=5)
            assert transport.messages_sent == 2
            assert transport.replies_received == 1
            assert transport.retries == 0
            assert transport.exhausted == 0
        finally:
            node.stop()


def _request_message():
    return Message(kind=MessageKind.PING, sender=-1)


# ----------------------------------------------------------------------
# Heartbeat: callback safety + detection drill
# ----------------------------------------------------------------------
class TestHeartbeatCallbackSafety:
    def _monitored_cluster(self):
        config = GHBAConfig(
            max_group_size=3,
            expected_files_per_mds=64,
            heartbeat_interval_s=1.0,
            heartbeat_timeout_s=3.0,
            seed=5,
        )
        cluster = GHBACluster(6, config, seed=5)
        simulator = Simulator()
        monitor = HeartbeatMonitor(cluster, simulator)
        return cluster, simulator, monitor

    def test_bad_callback_does_not_starve_others(self):
        cluster, simulator, monitor = self._monitored_cluster()
        seen = []

        def bad(event):
            raise RuntimeError("boom")

        def good(event):
            seen.append(event.server_id)

        monitor.on_failure(bad)
        monitor.on_failure(good)
        monitor.start()
        monitor.crash(0)
        simulator.run_until(10.0)
        assert seen == [0]
        assert len(monitor.callback_errors) == 1
        event, error = monitor.callback_errors[0]
        assert event.server_id == 0
        assert isinstance(error, RuntimeError)

    def test_excision_completes_before_callbacks(self):
        cluster, simulator, monitor = self._monitored_cluster()
        excised_at_callback = []

        def probe(event):
            excised_at_callback.append(event.server_id in cluster.servers)
            raise RuntimeError("after checking")

        monitor.on_failure(probe)
        monitor.start()
        monitor.crash(1)
        simulator.run_until(10.0)
        assert excised_at_callback == [False]
        # The raising callback did not corrupt detection state.
        assert monitor.detected(1)
        assert not monitor.is_down(1)

    def test_detection_continues_after_callback_error(self):
        cluster, simulator, monitor = self._monitored_cluster()
        monitor.on_failure(lambda event: (_ for _ in ()).throw(ValueError()))
        monitor.start()
        monitor.crash(0)
        simulator.run_until(6.0)
        monitor.crash(3)
        simulator.run_until(14.0)
        assert monitor.detected(0)
        assert monitor.detected(3)
        assert len(monitor.callback_errors) == 2


class TestDetectionDrill:
    def test_drill_detects_within_bound(self):
        report = run_drill(num_servers=9, seed=0)
        assert report.results  # at least one scheduled crash
        assert report.all_detected
        assert report.within_bound
        for result in report.results:
            assert result.detection_latency_s <= report.bound_s
            assert result.detected_by != result.node_id

    def test_drill_is_deterministic(self):
        a = run_drill(num_servers=9, seed=3)
        b = run_drill(num_servers=9, seed=3)
        assert [(r.node_id, r.detected_at_s) for r in a.results] == [
            (r.node_id, r.detected_at_s) for r in b.results
        ]

    def test_drill_render_mentions_verdict(self):
        report = run_drill(num_servers=6, seed=1)
        assert "PASS" in report.render()
