"""Unit tests for replica synchronization (Sections 2.4 and 3.4)."""

import pytest

from repro.core.query import QueryLevel
from repro.metadata.attributes import FileMetadata


def insert_files(cluster, server_id, count, tag):
    for i in range(count):
        cluster.insert_file(
            FileMetadata(path=f"/sync/{tag}/{i}", inode=i), home_id=server_id
        )


class TestThresholdRule:
    def test_no_update_below_threshold(self, small_cluster):
        small_cluster.synchronize_replicas(force=True)
        # One file dirties ~k bits, below the 32-bit threshold.
        insert_files(small_cluster, 0, 1, "tiny")
        report = small_cluster.synchronize_replicas(force=False)
        assert report.servers_updated == 0

    def test_update_above_threshold(self, small_cluster):
        small_cluster.synchronize_replicas(force=True)
        insert_files(small_cluster, 0, 30, "bulk")
        report = small_cluster.synchronize_replicas(force=False)
        assert report.servers_updated >= 1

    def test_force_updates_everyone(self, small_cluster):
        report = small_cluster.synchronize_replicas(force=True)
        assert report.servers_updated == small_cluster.num_servers

    def test_staleness_resets_after_sync(self, small_cluster):
        insert_files(small_cluster, 0, 30, "reset")
        small_cluster.synchronize_replicas(force=True)
        assert small_cluster.servers[0].staleness_bits() == 0


class TestUpdatePropagation:
    def test_update_reaches_one_mds_per_group(self, small_cluster):
        report = small_cluster.update_server_replicas(0)
        own_group = small_cluster.group_of(0).group_id
        other_groups = small_cluster.num_groups - 1
        assert report.groups_contacted == other_groups
        # At least one message per group; IDBFA false positives may add a
        # few more, which the falsely contacted MDSs simply drop.
        assert report.messages >= other_groups

    def test_update_makes_new_files_visible_remotely(self, small_cluster):
        insert_files(small_cluster, 0, 10, "vis")
        small_cluster.update_server_replicas(0)
        own_group = small_cluster.group_of(0).group_id
        for group in small_cluster.groups.values():
            if group.group_id == own_group:
                continue
            lookup = group.multicast_query("/sync/vis/3")
            assert 0 in lookup.hits

    def test_stale_replica_query_escapes_to_l4(self, small_cluster):
        """Before synchronization, fresh files are only findable via the
        home's own filter — queries from other groups must fall to L4."""
        small_cluster.synchronize_replicas(force=True)
        insert_files(small_cluster, 0, 5, "stale")
        own_group = small_cluster.group_of(0).group_id
        outside_origin = next(
            sid
            for sid in small_cluster.server_ids()
            if small_cluster.group_of(sid).group_id != own_group
        )
        result = small_cluster.query("/sync/stale/2", origin_id=outside_origin)
        assert result.found  # L4 guarantees service
        assert result.level is QueryLevel.L4
        # After synchronization the same query resolves within the group.
        small_cluster.synchronize_replicas(force=True)
        result = small_cluster.query("/sync/stale/3", origin_id=outside_origin)
        assert result.level in (QueryLevel.L2, QueryLevel.L3)

    def test_sync_latency_accounted(self, small_cluster):
        insert_files(small_cluster, 0, 30, "lat")
        report = small_cluster.synchronize_replicas(force=False)
        assert report.latency_ms > 0

    def test_sync_transfer_bytes_accounted(self, small_cluster):
        """Replica payloads ship compressed; sparse filters save a lot."""
        insert_files(small_cluster, 0, 30, "bytes")
        report = small_cluster.synchronize_replicas(force=False)
        assert report.bytes_raw > 0
        assert 0 < report.bytes_compressed < report.bytes_raw
        assert report.compression_ratio < 0.8

    def test_no_update_no_transfer_bytes(self, small_cluster):
        small_cluster.synchronize_replicas(force=True)
        report = small_cluster.synchronize_replicas(force=False)
        assert report.bytes_raw == 0
        assert report.compression_ratio == 1.0


class TestGHBAvsHBAUpdateCost:
    def test_ghba_update_messages_below_hba(self, small_config):
        """Figure 12's core claim: one MDS per group vs. every MDS."""
        from repro.baselines.hba import HBACluster
        from repro.core.cluster import GHBACluster

        ghba = GHBACluster(12, small_config)
        hba = HBACluster(12, small_config)
        ghba_report = ghba.update_server_replicas(0)
        hba_report = hba.update_server_replicas(0)
        assert ghba_report.messages < hba_report["messages"]
        assert ghba_report.latency_ms < hba_report["latency_ms"]
