"""Unit tests for the cross-cluster replication subsystem (ISSUE 8).

Covers the capture's per-home contiguity, the shipper's cumulative-ack
floor and truncation, the standby's dedup/gap/fencing state machine, the
divergence auditor's oracle (including its non-vacuity: a broken standby
must fail the audit), the controller's lag accounting, and the standby
checkpoint's durability round-trip.
"""

from __future__ import annotations

import json

import pytest

from repro.core import checkpoint as core_checkpoint
from repro.core.checkpoint import CheckpointError
from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.metadata.attributes import FileMetadata
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import SLOEngine, replication_objectives
from repro.prototype.transport import InProcessTransport
from repro.replication import (
    ChangeCapture,
    DivergenceAuditor,
    ReplicationController,
    ReplicationError,
    ReplicationShipper,
    StandbyEndpoint,
    StandbyNode,
    entry_from_wire,
    entry_to_wire,
    fence_probe,
    promote_standby,
)
from repro.replication.audit import diff_states, replay, snapshot_state
from repro.replication.cdc import CapturedChange


def _tiny_cluster(servers: int = 3, seed: int = 7) -> GHBACluster:
    config = GHBAConfig(
        max_group_size=4,
        expected_files_per_mds=256,
        lru_capacity=64,
        lru_filter_bits=1 << 10,
        seed=seed,
    )
    return GHBACluster(servers, config, seed=seed)


def _synced_pair(servers: int = 3):
    """A populated primary with capture attached, plus a synced standby
    endpoint (no threads, no transport — pure state machines)."""
    primary = _tiny_cluster(servers)
    primary.populate([f"/fs/d{i % 4}/f{i}" for i in range(40)])
    primary.synchronize_replicas(force=True)
    capture = ChangeCapture(keep_history=True)
    capture.attach(primary)
    standby = StandbyEndpoint()
    document = core_checkpoint.snapshot(primary)
    reply = standby.apply_sync(
        {
            "epoch": 1,
            "checkpoint": json.dumps(document),
            "base_seqs": {h: capture.last_seq(h) for h in capture.homes()},
        }
    )
    assert reply["ok"]
    return primary, capture, standby


class TestChangeCapture:
    def test_sequences_are_contiguous_per_home(self):
        primary = _tiny_cluster()
        capture = ChangeCapture()
        capture.attach(primary)
        for i in range(30):
            primary.insert_file(
                FileMetadata(path=f"/c/f{i}", inode=100 + i)
            )
        for i in range(0, 30, 3):
            primary.delete_file(f"/c/f{i}")
        for home in capture.homes():
            seqs = [e.seq for e in capture.logs[home]]
            assert seqs == list(range(1, len(seqs) + 1))

    def test_rename_captured_per_home(self):
        primary = _tiny_cluster()
        homes = set()
        capture = ChangeCapture()
        capture.attach(primary)
        for i in range(12):
            homes.add(
                primary.insert_file(
                    FileMetadata(path=f"/r/sub/f{i}", inode=200 + i)
                )
            )
        primary.rename_subtree("/r/sub", "/r/moved")
        for home in homes:
            renames = [
                e for e in capture.logs[home] if e.op == "rename"
            ]
            assert len(renames) == 1
            assert renames[0].path == "/r/sub"
            assert renames[0].new_path == "/r/moved"

    def test_detach_stops_capture(self):
        primary = _tiny_cluster()
        capture = ChangeCapture()
        capture.attach(primary)
        primary.insert_file(FileMetadata(path="/d/one", inode=1))
        total = sum(capture.last_seq(h) for h in capture.homes())
        capture.detach()
        primary.insert_file(FileMetadata(path="/d/two", inode=2))
        assert sum(capture.last_seq(h) for h in capture.homes()) == total

    def test_truncate_drops_acked_prefix_only(self):
        capture = ChangeCapture()
        for seq in range(1, 6):
            capture.capture("create", f"/t/f{seq}", home_id=0)
        assert capture.truncate(0, 3) == 3
        assert [e.seq for e in capture.pending(0, 3)] == [4, 5]
        assert capture.last_seq(0) == 5  # sequences keep counting

    def test_wire_roundtrip(self):
        meta = FileMetadata(path="/w/f", inode=9, size=64, mtime=1.5)
        entry = CapturedChange(
            home_id=2, seq=7, op="create", path="/w/f",
            record=meta, vtime=2.25,
        )
        back = entry_from_wire(2, entry_to_wire(entry))
        assert back == entry


class TestStandbyEndpoint:
    def test_contiguous_batch_applies_and_acks(self):
        primary, capture, standby = _synced_pair()
        home = primary.insert_file(FileMetadata(path="/n/a", inode=900))
        base = capture.last_seq(home) - 1
        reply = standby.apply_ship(
            {
                "home": home,
                "epoch": 1,
                "acked": base,
                "entries": [
                    entry_to_wire(e) for e in capture.pending(home, base)
                ],
            }
        )
        assert reply["applied"] == 1
        assert reply["acked"] == base + 1
        assert standby.cluster.home_of("/n/a") == home

    def test_duplicates_are_not_reapplied(self):
        primary, capture, standby = _synced_pair()
        home = primary.insert_file(FileMetadata(path="/n/b", inode=901))
        base = capture.last_seq(home) - 1
        batch = {
            "home": home,
            "epoch": 1,
            "acked": base,
            "entries": [
                entry_to_wire(e) for e in capture.pending(home, base)
            ],
        }
        first = standby.apply_ship(batch)
        second = standby.apply_ship(batch)  # retry replay
        assert first["applied"] == 1
        assert second["applied"] == 0
        assert second["duplicates"] == 1
        assert second["acked"] == first["acked"]

    def test_gap_stalls_batch_until_retransmit(self):
        primary, capture, standby = _synced_pair()
        home = primary.insert_file(FileMetadata(path="/n/c1", inode=902))
        primary.insert_file(
            FileMetadata(path="/n/c2", inode=903), home_id=home
        )
        base = capture.last_seq(home) - 2
        pending = capture.pending(home, base)
        # Ship only the SECOND entry: a reorder the floor must reject.
        reply = standby.apply_ship(
            {
                "home": home,
                "epoch": 1,
                "acked": base,
                "entries": [entry_to_wire(pending[1])],
            }
        )
        assert reply["gap"] is True
        assert reply["applied"] == 0
        assert reply["acked"] == base
        # Retransmit from the floor heals it.
        reply = standby.apply_ship(
            {
                "home": home,
                "epoch": 1,
                "acked": base,
                "entries": [entry_to_wire(e) for e in pending],
            }
        )
        assert reply["applied"] == 2
        assert reply["acked"] == base + 2

    def test_promotion_fences_old_epoch(self):
        primary, capture, standby = _synced_pair()
        promo = standby.apply_promote({})
        assert promo["promoted"] is True
        home = primary.insert_file(FileMetadata(path="/n/d", inode=904))
        base = capture.last_seq(home) - 1
        reply = standby.apply_ship(
            {
                "home": home,
                "epoch": 1,
                "acked": base,
                "entries": [
                    entry_to_wire(e) for e in capture.pending(home, base)
                ],
            }
        )
        assert reply["fenced"] is True
        assert standby.cluster.home_of("/n/d") is None
        # Sync from the dead epoch is fenced too.
        sync = standby.apply_sync(
            {"epoch": 1, "checkpoint": "{}", "base_seqs": {}}
        )
        assert sync["fenced"] is True

    def test_ship_before_sync_acks_nothing(self):
        standby = StandbyEndpoint()
        reply = standby.apply_ship(
            {
                "home": 0,
                "epoch": 1,
                "acked": 0,
                "entries": [
                    entry_to_wire(
                        CapturedChange(
                            home_id=0, seq=1, op="create", path="/x",
                            record=FileMetadata(path="/x", inode=1),
                        )
                    )
                ],
            }
        )
        assert reply["unsynced"] is True
        assert reply["acked"] == 0

    def test_unknown_op_raises(self):
        primary, capture, standby = _synced_pair()
        with pytest.raises(ReplicationError):
            standby._apply(
                CapturedChange(home_id=0, seq=99, op="chmod", path="/x")
            )
        with pytest.raises(ReplicationError):
            standby._apply(
                CapturedChange(
                    home_id=0, seq=99, op="create", path="/x", record=None
                )
            )


class TestShipperFloor:
    def _wired(self):
        primary, capture, _ = _synced_pair()
        registry = MetricsRegistry()
        transport = InProcessTransport(default_timeout_s=5.0)
        node = StandbyNode(50, transport)
        node.start()
        shipper = ReplicationShipper(
            capture, transport, 50, epoch=1, metrics=registry
        )
        assert shipper.sync()["ok"]
        return primary, capture, shipper, node, registry

    def test_ship_advances_floor_and_truncates(self):
        primary, capture, shipper, node, _ = self._wired()
        try:
            homes = set()
            for i in range(10):
                homes.add(
                    primary.insert_file(
                        FileMetadata(path=f"/s/f{i}", inode=300 + i)
                    )
                )
            report = shipper.ship(now=1.0)
            assert report.acked_entries == 10
            for home in homes:
                assert shipper.floors[home] == capture.last_seq(home)
                assert capture.pending(home, 0) == []  # truncated
            # Standby converged with the primary.
            assert diff_states(
                snapshot_state(primary),
                snapshot_state(node.endpoint.cluster),
            ) == []
        finally:
            node.stop()

    def test_fenced_shipper_latches(self):
        primary, capture, shipper, node, _ = self._wired()
        try:
            promote_standby(shipper.transport, 50)
            primary.insert_file(FileMetadata(path="/s/late", inode=999))
            report = shipper.ship(now=2.0)
            assert report.fenced == 1
            assert shipper.fenced is True
            assert shipper.ship(now=3.0).ships == 0  # refuses to ship
            probe = fence_probe(shipper.transport, 50, epoch=1)
            assert probe["fenced"] is True
        finally:
            node.stop()

    def test_controller_lag_and_slo(self):
        primary, capture, shipper, node, registry = self._wired()
        try:
            controller = ReplicationController(
                capture, shipper, metrics=registry
            )
            capture.advance(1.0)
            primary.insert_file(FileMetadata(path="/s/lag", inode=500))
            controller.tick(now=1.5)  # acked 500 virtual ms later
            assert controller.lag_percentile(50) == pytest.approx(500.0)
            results = SLOEngine(
                registry, objectives=replication_objectives()
            ).evaluate()
            assert all(r.ok for r in results)
            assert {r.objective.name for r in results} == {
                "replication-ship-lag",
                "replication-ship-availability",
            }
        finally:
            node.stop()


class TestDivergenceAuditor:
    def test_clean_switchover_passes(self):
        primary, capture, standby = _synced_pair()
        auditor = DivergenceAuditor()
        auditor.note_base(
            primary, {h: capture.last_seq(h) for h in capture.homes()}
        )
        floors = {}
        for i in range(8):
            home = primary.insert_file(
                FileMetadata(path=f"/a/f{i}", inode=600 + i)
            )
            base = standby.floors.get(home, 0)
            standby.apply_ship(
                {
                    "home": home,
                    "epoch": 1,
                    "acked": base,
                    "entries": [
                        entry_to_wire(e)
                        for e in capture.pending(home, base)
                    ],
                }
            )
            floors[home] = standby.floors[home]
        report = auditor.audit_switchover(
            standby.cluster, capture.history, floors,
            dict(standby.floors), kill_vtime=1.0,
        )
        assert report.ok
        assert report.rpo_mutations == 0

    def test_unacked_tail_is_rpo_not_divergence(self):
        primary, capture, standby = _synced_pair()
        auditor = DivergenceAuditor()
        auditor.note_base(
            primary, {h: capture.last_seq(h) for h in capture.homes()}
        )
        capture.advance(2.0)
        primary.insert_file(FileMetadata(path="/a/lost", inode=700))
        # Never shipped: the primary dies here.
        report = auditor.audit_switchover(
            standby.cluster, capture.history, {}, dict(standby.floors),
            kill_vtime=2.5,
        )
        assert report.ok  # legitimate async loss, not divergence
        assert report.rpo_mutations == 1
        assert report.rpo_virtual_ms == pytest.approx(500.0)

    def test_broken_standby_fails_audit(self):
        """Non-vacuity: a standby that lied about an apply must FAIL."""
        primary, capture, standby = _synced_pair()
        auditor = DivergenceAuditor()
        auditor.note_base(
            primary, {h: capture.last_seq(h) for h in capture.homes()}
        )
        home = primary.insert_file(FileMetadata(path="/a/gone", inode=800))
        # Claim the entry was acked without applying it.
        floors = {home: capture.last_seq(home)}
        report = auditor.audit_switchover(
            standby.cluster, capture.history, floors,
            dict(standby.floors), kill_vtime=1.0,
        )
        assert not report.ok
        assert report.lost_acked == 1
        assert any("/a/gone" in d for d in report.divergences)

    def test_replay_rename_respects_home(self):
        state = {"/r/a": (0, 1), "/r/b": (1, 2)}
        out = replay(
            state,
            [
                CapturedChange(
                    home_id=0, seq=1, op="rename",
                    path="/r", new_path="/m",
                )
            ],
        )
        assert out == {"/m/a": (0, 1), "/r/b": (1, 2)}


class TestStandbyDurability:
    def test_checkpoint_roundtrip(self, tmp_path):
        primary, capture, standby = _synced_pair()
        home = primary.insert_file(FileMetadata(path="/p/f", inode=111))
        base = standby.floors.get(home, 0)
        standby.apply_ship(
            {
                "home": home,
                "epoch": 1,
                "acked": base,
                "entries": [
                    entry_to_wire(e) for e in capture.pending(home, base)
                ],
            }
        )
        path = tmp_path / "standby.json"
        standby.save(path)
        restored = StandbyEndpoint.load(path)
        assert restored.floors == standby.floors
        assert restored.epoch == standby.epoch
        assert restored.cluster.home_of("/p/f") == home
        # The replayed retry is a duplicate on the restored endpoint.
        reply = restored.apply_ship(
            {
                "home": home,
                "epoch": 1,
                "acked": base,
                "entries": [
                    entry_to_wire(e) for e in capture.history
                    if e.home_id == home and e.seq > base
                ],
            }
        )
        assert reply["applied"] == 0
        assert reply["duplicates"] == 1

    def test_corrupt_checkpoint_raises_typed_error(self, tmp_path):
        path = tmp_path / "torn.json"
        path.write_text('{"standby_format": 1, "epo', encoding="utf-8")
        with pytest.raises(CheckpointError):
            StandbyEndpoint.load(path)

    def test_unknown_format_rejected(self):
        with pytest.raises(CheckpointError):
            StandbyEndpoint.restore_doc({"standby_format": 99})
