"""Integration tests for fault injection, degradation and recovery.

The acceptance contract of the fault layer:

- faults disabled (the NULL injector) is bit-identical to a build without
  the fault layer — same message counts, same latencies;
- the chaos soak is deterministic: one seed, one report;
- under 5% message loss plus one crash/restart, no query is lost and the
  retry/drop accounting reconciles exactly;
- a partitioned group multicast degrades to the L4 global broadcast
  instead of failing;
- a node restored from its crash checkpoint behaves identically to one
  that never crashed.
"""

import pytest

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.core.query import QueryLevel
from repro.faults import (
    NULL_INJECTOR,
    FaultPlan,
    Partition,
    PlanFaultInjector,
    RetryPolicy,
    SoakConfig,
    run_soak,
)
from repro.prototype.cluster import PrototypeCluster


def _config(**overrides):
    defaults = dict(
        max_group_size=4,
        expected_files_per_mds=256,
        lru_capacity=64,
        lru_filter_bits=512,
        seed=21,
    )
    defaults.update(overrides)
    return GHBAConfig(**defaults)


def _paths(count, prefix="/data"):
    return [f"{prefix}/f{i:05d}" for i in range(count)]


# ----------------------------------------------------------------------
# Zero-overhead default: NULL injector is invisible
# ----------------------------------------------------------------------
class TestNullInjectorZeroOverhead:
    def test_sim_query_costs_identical_with_and_without_fault_layer(self):
        """An all-zero plan (enabled guards taken) must not shift a single
        message or millisecond versus the no-injector default."""
        results = []
        for faults in (None, PlanFaultInjector(FaultPlan(seed=21))):
            cluster = GHBACluster(9, _config(), seed=21, faults=faults)
            placement = cluster.populate(_paths(120), policy="round_robin")
            cluster.synchronize_replicas(force=True)
            run = []
            for index, (path, home) in enumerate(sorted(placement.items())):
                origin = cluster.server_ids()[index % cluster.num_servers]
                result = cluster.query(path, origin_id=origin)
                run.append(
                    (
                        result.home_id,
                        result.level,
                        result.messages,
                        result.latency_ms,
                        result.degraded,
                    )
                )
            results.append(run)
        assert results[0] == results[1]
        assert all(not degraded for _, _, _, _, degraded in results[0])

    def test_prototype_wire_counts_identical_under_null_injector(self):
        runs = []
        for kwargs in (
            {},
            {"injector": NULL_INJECTOR, "retry": RetryPolicy(max_attempts=3)},
        ):
            with PrototypeCluster(
                6, _config(), scheme="ghba", seed=21, **kwargs
            ) as proto:
                placement = proto.populate(_paths(60), policy="round_robin")
                outcomes = []
                for index, path in enumerate(sorted(placement)):
                    origin = proto.node_ids()[index % proto.num_nodes]
                    outcome = proto.lookup(path, origin_id=origin)
                    outcomes.append(
                        (outcome.home_id, outcome.level, outcome.degraded)
                    )
                proto.quiesce()
                runs.append((outcomes, proto.transport.messages_sent))
        outcomes_a, messages_a = runs[0]
        outcomes_b, messages_b = runs[1]
        assert outcomes_a == outcomes_b
        assert messages_a == messages_b
        assert all(not degraded for _, _, degraded in outcomes_a)


# ----------------------------------------------------------------------
# Degradation: partitioned group multicast falls back to L4
# ----------------------------------------------------------------------
class TestDegradedFallback:
    def test_sim_partitioned_peers_escalate_to_global_broadcast(self):
        """Sever the origin's whole group: the L3 multicast comes back
        empty-handed, and the query is answered — degraded — by the L4
        global broadcast."""
        cluster = GHBACluster(9, _config(), seed=21)
        placement = cluster.populate(_paths(120), policy="round_robin")
        cluster.synchronize_replicas(force=True)

        origin_id = cluster.server_ids()[0]
        peers = [
            member
            for member in cluster.group_of(origin_id).member_ids()
            if member != origin_id
        ]
        assert peers, "fixture needs a multi-member group"
        # A path homed outside the origin's group, whose replica the
        # origin does not host itself (so L2 cannot answer locally).
        hosted = set(cluster.servers[origin_id].hosted_replicas())
        group_ids = set(cluster.group_of(origin_id).member_ids())
        path, home = next(
            (path, home)
            for path, home in sorted(placement.items())
            if home not in group_ids and home not in hosted
        )

        plan = FaultPlan(
            seed=21,
            partitions=(
                Partition(start_s=0.0, end_s=1e9, island=frozenset(peers)),
            ),
        )
        cluster.faults = PlanFaultInjector(plan)
        result = cluster.query(path, origin_id=origin_id)
        assert result.degraded
        assert result.found
        assert result.home_id == home
        assert result.level is QueryLevel.L4

        # Fault-free control from the same state answers clean.
        cluster.faults = NULL_INJECTOR
        control = cluster.query(path, origin_id=origin_id)
        assert control.home_id == home
        assert not control.degraded

    def test_prototype_unreachable_home_degrades_instead_of_raising(self):
        config = _config(max_group_size=3)
        with PrototypeCluster(6, config, scheme="ghba", seed=21) as proto:
            placement = proto.populate(_paths(60), policy="round_robin")
            island = frozenset(proto.groups[min(proto.groups)])
            plan = FaultPlan(
                seed=21,
                partitions=(
                    Partition(start_s=0.0, end_s=1e9, island=island),
                ),
            )
            proto.transport.injector = PlanFaultInjector(plan)
            try:
                origin = next(
                    nid for nid in proto.node_ids() if nid not in island
                )
                cut_path = next(
                    path
                    for path, home in sorted(placement.items())
                    if home in island
                )
                outcome = proto.lookup(cut_path, origin_id=origin)
                assert outcome.degraded
                assert not outcome.found  # home unreachable, not a crash

                near_path = next(
                    path
                    for path, home in sorted(placement.items())
                    if home == origin
                )
                near = proto.lookup(near_path, origin_id=origin)
                assert near.found and near.home_id == origin
            finally:
                proto.transport.injector = NULL_INJECTOR
                proto.quiesce()


# ----------------------------------------------------------------------
# Chaos soak: determinism + survival
# ----------------------------------------------------------------------
class TestSoak:
    SMALL = SoakConfig(
        seed=11,
        duration_s=2.0,
        num_nodes=6,
        num_files=120,
        ops_per_s=30.0,
    )

    def test_same_seed_same_report(self):
        first = run_soak(self.SMALL)
        second = run_soak(self.SMALL)
        assert first.to_dict() == second.to_dict()

    def test_different_seed_different_chaos(self):
        other = run_soak(
            SoakConfig(
                seed=12,
                duration_s=2.0,
                num_nodes=6,
                num_files=120,
                ops_per_s=30.0,
            )
        )
        baseline = run_soak(self.SMALL)
        assert other.to_dict() != baseline.to_dict()

    def test_survives_drops_partition_and_crash(self):
        """The acceptance run: 5% drop, one group partition, one
        crash/restart — zero lost queries, zero false negatives, and the
        drop/retry ledger balances."""
        report = run_soak(SoakConfig(seed=7, duration_s=4.0))
        assert report.ops == 200
        assert report.lost == 0
        assert report.false_negatives == 0
        assert report.misrouted == 0
        assert report.reconciled
        assert report.passed
        assert report.availability == 1.0
        # The chaos actually happened.
        assert report.dropped_requests > 0
        assert report.retries > 0
        assert report.degraded_total > 0
        assert ("crash", "restore") == tuple(kind for _, kind, _ in report.events)
        # Reconciliation restated from the raw counters.
        assert report.dropped_requests == report.retries + report.exhausted

    def test_faultless_soak_is_clean(self):
        report = run_soak(
            SoakConfig(
                seed=3,
                duration_s=2.0,
                num_nodes=6,
                num_files=80,
                ops_per_s=25.0,
                drop_rate=0.0,
                delay_rate=0.0,
                duplicate_rate=0.0,
                with_crash=False,
                with_partition=False,
            )
        )
        assert report.passed
        assert report.degraded_total == 0
        assert report.unavailable == 0
        assert report.retries == 0 and report.exhausted == 0
        assert report.found_degraded == 0
        assert not any(report.injected.values())

    def test_report_render_and_dict_agree(self):
        report = run_soak(self.SMALL)
        text = report.render()
        assert "chaos soak survival report" in text
        assert ("PASS" in text) == report.passed
        data = report.to_dict()
        assert data["passed"] == report.passed
        assert data["ops"] == report.ops


# ----------------------------------------------------------------------
# Crash checkpoint: restore matches a never-crashed control
# ----------------------------------------------------------------------
class TestCrashRestore:
    def test_restored_node_indistinguishable_from_control(self):
        config = _config()
        paths = _paths(80, prefix="/ckpt")
        with PrototypeCluster(6, config, scheme="ghba", seed=21) as crashed, \
                PrototypeCluster(6, config, scheme="ghba", seed=21) as control:
            placement = crashed.populate(paths, policy="round_robin")
            control_placement = control.populate(paths, policy="round_robin")
            assert placement == control_placement

            victim = crashed.node_ids()[2]
            crashed.crash_node(victim)
            assert victim not in crashed.nodes
            assert crashed.crashed_node_ids() == [victim]
            restored = crashed.restore_node(victim)
            assert restored.node_id == victim
            assert crashed.crashed_node_ids() == []

            # Durable state survived the crash byte-for-byte.
            a = crashed.nodes[victim].server
            b = control.nodes[victim].server
            assert sorted(a.store.paths()) == sorted(b.store.paths())
            assert a.hosted_replicas() == b.hosted_replicas()
            crashed.check_directory()

            # Both clusters answer an identical workload identically.
            for index, path in enumerate(sorted(placement)):
                origin = crashed.node_ids()[index % crashed.num_nodes]
                ours = crashed.lookup(path, origin_id=origin)
                theirs = control.lookup(path, origin_id=origin)
                assert (ours.home_id, ours.level, ours.degraded) == (
                    theirs.home_id,
                    theirs.level,
                    theirs.degraded,
                )
                assert ours.home_id == placement[path]
            crashed.quiesce()
            control.quiesce()

    def test_lookup_during_crash_degrades_then_recovers(self):
        config = _config(max_group_size=3)
        with PrototypeCluster(6, config, scheme="ghba", seed=21) as proto:
            placement = proto.populate(_paths(60), policy="round_robin")
            victim = proto.node_ids()[0]
            victim_path = next(
                path for path, home in sorted(placement.items()) if home == victim
            )
            origin = next(nid for nid in proto.node_ids() if nid != victim)

            proto.crash_node(victim)
            down = proto.lookup(victim_path, origin_id=origin)
            assert not down.found
            assert down.degraded

            proto.restore_node(victim)
            proto.quiesce()
            back = proto.lookup(victim_path, origin_id=origin)
            assert back.found
            assert back.home_id == victim
            proto.quiesce()

    def test_restore_without_crash_is_rejected(self):
        with PrototypeCluster(4, _config(), scheme="ghba", seed=21) as proto:
            with pytest.raises(KeyError):
                proto.restore_node(proto.node_ids()[0])
