"""Integration: tenant isolation under a noisy neighbour + faults.

One Zipf-hot tenant (``u0``) floods a gateway shared with quieter
tenants while a seeded fault plan (message loss plus a mid-run partition
islanding part of the fleet) runs underneath.  The suite replays the
same multi-tenant trace through:

- the **fair** per-tenant controller (twice — counters must be
  bit-identical per seed),
- the legacy **global** bucket, and
- per-tenant **solo** baselines (each tenant alone on an identical
  fresh stack).

A *quiet* tenant is one whose demand fits inside its weighted max-min
share (isolation is a promise to exactly those tenants).  Asserted:

- every quiet tenant's goodput stays within 10% of its solo baseline
  and its shed rate stays bounded under the fair controller;
- quiet p50 latency stays in the same regime as solo (no queue-induced
  latency regime shift);
- the replay is deterministic: the repeat's per-tenant counter digest
  is bit-identical;
- **non-vacuity**: the global-bucket config demonstrably *fails* the
  isolation bound for at least one quiet tenant — if it ever stops
  failing, the fair controller is no longer being compared against a
  meaningful baseline.
"""

from types import SimpleNamespace

import pytest

from repro.faults.plan import FaultPlan, Partition
from repro.gateway.admission import fractional_fair_shares
from repro.gateway.tenant_bench import NOISY_TENANT, _replay
from repro.traces.profiles import PROFILES
from repro.traces.synthetic import SyntheticTraceGenerator
from repro.traces.tenants import TenantModel

TRACE_RATE = 200.0
RATE_PER_S = 100.0  # half the offered load: genuinely contended
NUM_TENANTS = 4


def _args(seed):
    return SimpleNamespace(
        servers=6,
        group_size=4,
        files=400,
        seed=seed,
        cache_capacity=1024,
        lease_ttl_s=5.0,
        hot_threshold=32,
    )


def _fault_plan(seed):
    return FaultPlan(
        seed=seed,
        drop_rate=0.05,
        partitions=(
            Partition(start_s=2.0, end_s=4.0, island=frozenset({0, 1})),
        ),
    )


def _lookups(args):
    generator = SyntheticTraceGenerator(
        PROFILES["HP"],
        num_files=args.files,
        seed=args.seed,
        ops_per_second=TRACE_RATE,
        tenants=TenantModel(NUM_TENANTS, zipf_alpha=2.0),
    )
    records = [
        record
        for record in generator.generate(1400)
        if record.op.is_lookup
    ]
    return records, generator.paths


def _quiet_tenants(fair):
    """Tenants whose demand fits inside their equal-weight max-min
    share of the capacity the fair run actually delivered."""
    per_tenant = fair["per_tenant"]
    demands = {t: per_tenant[t]["submitted"] for t in per_tenant}
    ideal = fractional_fair_shares(
        demands,
        {t: 1.0 for t in demands},
        float(fair["total_goodput"]),
    )
    return sorted(
        t
        for t in demands
        if t != NOISY_TENANT
        and demands[t] > 0
        and ideal[t] >= demands[t] - 1e-9
    )


@pytest.mark.parametrize("seed", [3, 11])
def test_quiet_tenants_isolated_from_noisy_neighbour(seed):
    args = _args(seed)
    lookups, paths = _lookups(args)
    plan = _fault_plan(seed)
    fair = _replay(args, lookups, paths, RATE_PER_S, "fair", plan)
    repeat = _replay(args, lookups, paths, RATE_PER_S, "fair", plan)
    global_mode = _replay(
        args, lookups, paths, RATE_PER_S, "global", plan
    )

    # Bit-identical counters per seed: same trace + same fault plan →
    # the per-tenant digest (submitted/goodput/sheds/latencies) matches.
    assert fair["digest"] == repeat["digest"]
    assert fair["unaccounted"] == 0
    assert global_mode["unaccounted"] == 0

    quiet = _quiet_tenants(fair)
    assert quiet, "workload produced no quiet tenant — test is vacuous"
    noisy = fair["per_tenant"][NOISY_TENANT]
    assert noisy["shed"] > 0, (
        "the noisy tenant never shed — the run is not contended"
    )

    fair_breaks = []
    global_breaks = []
    for tenant in quiet:
        mine = [r for r in lookups if r.tenant == tenant]
        solo = _replay(args, mine, paths, RATE_PER_S, "fair", plan)
        solo_stats = solo["per_tenant"][tenant]
        fair_stats = fair["per_tenant"][tenant]
        global_stats = global_mode["per_tenant"].get(
            tenant, {"goodput": 0}
        )
        # Goodput within 10% of solo; shed rate bounded.
        if fair_stats["goodput"] < 0.9 * solo_stats["goodput"]:
            fair_breaks.append(
                (tenant, fair_stats["goodput"], solo_stats["goodput"])
            )
        assert fair_stats["shed_rate"] <= 0.05, (
            f"quiet tenant {tenant} shed {fair_stats['shed_rate']:.2%} "
            f"under fair sharing"
        )
        # Same latency regime as solo: shared-mode p50 may queue a
        # little, but must not jump an order of magnitude.
        assert fair_stats["p50_ms"] <= max(
            2.0 * solo_stats["p50_ms"], 0.1
        ), (
            f"quiet tenant {tenant} p50 {fair_stats['p50_ms']}ms vs "
            f"solo {solo_stats['p50_ms']}ms"
        )
        if global_stats["goodput"] < 0.9 * solo_stats["goodput"]:
            global_breaks.append(tenant)
    assert not fair_breaks, (
        f"fair sharing broke isolation for quiet tenants: {fair_breaks}"
    )
    # Non-vacuity: the tenant-blind global bucket must fail the same
    # bound, or the comparison proves nothing.
    assert global_breaks, (
        "global bucket kept every quiet tenant within 10% of solo — "
        "the isolation property is vacuously true"
    )


def test_global_mode_shares_pain_proportionally():
    """Sanity on the baseline itself: under the global bucket the noisy
    tenant keeps grabbing tokens (its goodput exceeds its fair-mode
    goodput) — that surplus is exactly what isolation takes back."""
    seed = 3
    args = _args(seed)
    lookups, paths = _lookups(args)
    plan = _fault_plan(seed)
    fair = _replay(args, lookups, paths, RATE_PER_S, "fair", plan)
    global_mode = _replay(
        args, lookups, paths, RATE_PER_S, "global", plan
    )
    assert (
        global_mode["per_tenant"][NOISY_TENANT]["goodput"]
        > fair["per_tenant"][NOISY_TENANT]["goodput"]
    )
