"""Integration: end-to-end causal tracing over the write-back pipeline.

The acceptance surface of the observability pass: one buffered mutation
issued through a write-back cohort member must leave a causal trace that
assembles into the full five-hop chain

    wb_enqueue -> wb_flush -> wb_arbitrate -> inval_mint -> inval_apply

spanning client enqueue, gateway flush, MDS arbitration, invalidation
mint and the peer's cache drop; a crash mid-run must produce a flight
dump; and running the identical workload with observability disabled
must leave every metric bit-identical.
"""

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.faults import FaultPlan, PlanFaultInjector
from repro.gateway import CohortConfig, GatewayConfig, GatewayCohort
from repro.obs import (
    MUTATION_CHAIN,
    FlightRecorderHub,
    assemble_traces,
    chain_kinds,
    find_chains,
    render_tree,
)
from repro.obs.export import span_to_dict
from repro.obs.trace import CollectingTracer


def _config(seed=21):
    return GHBAConfig(
        max_group_size=4,
        expected_files_per_mds=200,
        lru_capacity=256,
        lru_filter_bits=1 << 10,
        seed=seed,
    )


def _cluster(seed=21, tracer=None):
    cluster = GHBACluster(8, _config(seed), seed=seed, tracer=tracer)
    paths = [f"/obs/d{i % 4}/f{i}" for i in range(120)]
    cluster.populate(paths)
    cluster.synchronize_replicas(force=True)
    return cluster, paths


def _run_pipeline(tracer=None, flight=None, faults=None, seed=21):
    """One deterministic write-back mutation workload through a cohort."""
    cluster, paths = _cluster(seed, tracer)
    cohort = GatewayCohort(
        cluster,
        2,
        CohortConfig(
            gateway=GatewayConfig(lease_ttl_s=60.0, writeback=True)
        ),
        faults=faults,
        tracer=tracer,
        flight=flight,
    )
    left, right = cohort.members
    # Warm the peer's leases so the invalidations visibly drop them.
    for path in paths[:6]:
        right.lookup(path, 0.0)
    # Buffered mutations through the left member: parked (BUFFERED),
    # flushed at the barrier, invalidations multicast on the ack.
    left.delete(paths[0], 0.1)
    left.delete(paths[1], 0.1)
    left.create("/obs/new/f0", 0.1)
    cohort.step(0.2)
    cohort.flush_barrier(0.3)
    cohort.step(0.4)  # peers apply the INVALIDATE records
    return cluster, cohort, paths


class TestCausalChain:
    def test_full_five_hop_chain_assembles(self):
        tracer = CollectingTracer()
        _, cohort, paths = _run_pipeline(tracer=tracer)
        left, right = cohort.members
        assert paths[0] not in right.client.cache  # the drop happened

        spans = [span_to_dict(s) for s in tracer.finished_spans()]
        trees = assemble_traces(spans)
        complete = find_chains(trees)
        assert len(complete) >= 1, (
            "no trace contains the full mutation chain; kinds seen: "
            f"{sorted(set(k for t in trees for k in t.kinds()))}"
        )
        tree = complete[0]
        assert chain_kinds(tree) == MUTATION_CHAIN

        # The chain is causally *nested*, not merely co-resident: walk
        # parent -> child and check each stage hangs off the previous.
        stages = {}
        for node in tree.walk():
            stages.setdefault(node.kind, node)
        enqueue = stages["wb_enqueue"]
        assert enqueue.span.get("component") == "gateway"
        assert stages["wb_flush"] in enqueue.walk()
        assert stages["wb_arbitrate"] in stages["wb_flush"].walk()
        assert stages["inval_mint"] in stages["wb_flush"].walk()
        assert stages["inval_apply"] in stages["inval_mint"].walk()
        assert stages["wb_arbitrate"].span.get("component") == "mds"
        assert stages["inval_apply"].span.get("component") == "cohort"

        # The rendered tree shows the chain line the CLI prints.
        text = render_tree(tree)
        assert "chain: " + " -> ".join(MUTATION_CHAIN) in text

    def test_rendered_forest_is_deterministic(self):
        first = CollectingTracer()
        _run_pipeline(tracer=first)
        second = CollectingTracer()
        _run_pipeline(tracer=second)
        forest_a = assemble_traces(
            [span_to_dict(s) for s in first.finished_spans()]
        )
        forest_b = assemble_traces(
            [span_to_dict(s) for s in second.finished_spans()]
        )
        assert [render_tree(t) for t in forest_a] == [
            render_tree(t) for t in forest_b
        ]


class TestFlightDumpAtCrash:
    def test_crash_during_run_dumps_flight_recorder(self, tmp_path):
        flight = FlightRecorderHub(dump_dir=str(tmp_path))
        injector = PlanFaultInjector(FaultPlan(seed=21), flight=flight)
        tracer = CollectingTracer()
        _, cohort, _ = _run_pipeline(
            tracer=tracer, flight=flight, faults=injector
        )
        # The driver executes the plan's crash event mid-run.
        injector.silence(1)
        assert len(flight.dumps) == 1
        dump = flight.dumps[0]
        assert dump["reason"] == "crash-node-1"
        # The rings captured the pipeline activity leading up to the
        # crash: the issuing member minted invalidations, the fault
        # component logged the silence.
        assert "cohort-0" in dump["components"]
        minted = [
            e for e in dump["components"]["cohort-0"]
            if e["kind"] == "inval_mint"
        ]
        assert len(minted) >= 1
        assert dump["components"]["faults"][-1]["kind"] == "silence"
        assert len(list(tmp_path.glob("flight-001-*.json"))) == 1


class TestZeroOverheadWhenDisabled:
    def test_counters_bit_identical_with_obs_on_and_off(self):
        plain_cluster, plain_cohort, _ = _run_pipeline()
        tracer = CollectingTracer()
        flight = FlightRecorderHub()
        traced_cluster, traced_cohort, _ = _run_pipeline(
            tracer=tracer, flight=flight
        )
        assert len(tracer.finished_spans()) > 0  # obs actually ran
        assert plain_cluster.metrics.snapshot() == (
            traced_cluster.metrics.snapshot()
        )
        assert plain_cohort.counter_snapshot() == (
            traced_cohort.counter_snapshot()
        )
