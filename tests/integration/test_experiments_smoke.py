"""Smoke tests: every experiment runs at miniature scale and produces the
paper's qualitative shape.  Full-scale assertions live in benchmarks/."""

import pytest

from repro.experiments import ablation_lru, ablation_updates
from repro.experiments import fig06, fig07, fig08_10, fig11, fig12, fig13
from repro.experiments import fig14, fig15, table01, table05, tables_traces


class TestTableExperiments:
    def test_table01_rows(self):
        result = table01.run()
        assert len(result.rows) == 6
        assert any(row["scheme"] == "g_hba" for row in result.rows)

    def test_tables_traces_histogram_preserved(self):
        result = tables_traces.run(base_files=300, base_ops=600, tif_scale=0.05)
        for row in result.rows:
            assert row["total_ops"] == row["tif"] * row["base_total_ops"]
            assert row["stat_fraction"] == pytest.approx(
                row["base_stat_fraction"], abs=1e-9
            )

    def test_table05_ordering(self):
        result = table05.run(server_counts=(20, 40), files_per_server=500)
        for row in result.rows:
            assert row["bfa16"] == pytest.approx(2.0, rel=0.01)
            assert row["hba"] > 1.0
            assert row["ghba"] < 0.5
        ghba = [row["ghba"] for row in result.rows]
        assert ghba[1] < ghba[0]  # overhead falls with N


class TestModelExperiments:
    def test_fig06_optima_within_band(self):
        result = fig06.run(server_counts=(30,), max_group_size=15)
        for row in result.rows:
            if row["paper_optimal_m"] is not None:
                assert abs(row["optimal_m"] - row["paper_optimal_m"]) <= 1

    def test_fig07_growth(self):
        result = fig07.run(server_counts=(10, 100))
        first, last = result.rows[0], result.rows[-1]
        assert last["optimal_m_hp"] > first["optimal_m_hp"]


class TestSimulationExperiments:
    def test_fig08_memory_effect(self):
        result = fig08_10.run(
            "HP",
            memory_fractions=(1.25, 0.45),
            num_servers=12,
            group_size=4,
            num_files=2_000,
            num_ops=6_000,
        )
        tight_hba = fig08_10.final_latency(result, "hba", 0.45)
        tight_ghba = fig08_10.final_latency(result, "ghba", 0.45)
        ample_hba = fig08_10.final_latency(result, "hba", 1.25)
        assert tight_hba > 2 * tight_ghba  # HBA collapses under pressure
        assert tight_hba > 3 * ample_hba   # and relative to ample memory

    def test_fig11_ordering(self):
        result = fig11.run(server_counts=(30, 60))
        for row in result.rows:
            assert row["ghba_hp"] < row["hash_hp"] < row["hba"]

    def test_fig12_ghba_cheaper(self):
        result = fig12.run(
            configs=(("HP", 20, 5),), num_updates=10, files_per_update=3
        )
        row = result.rows[0]
        assert row["ghba_avg_messages"] < row["hba_avg_messages"] / 2
        assert row["ghba_avg_latency_ms"] < row["hba_avg_latency_ms"]

    def test_fig13_levels(self):
        result = fig13.run(
            server_counts=(10, 30), num_files=600, num_ops=6_000
        )
        for row in result.rows:
            assert row["within_group"] > 0.9
            assert row["l1"] > row["l4"]
        assert result.rows[-1]["l4"] >= result.rows[0]["l4"]


class TestPrototypeExperiments:
    def test_fig14_ghba_wins_at_heavy_load(self):
        result = fig14.run(
            num_nodes=10, group_size=4, num_files=800, num_ops=1_200
        )
        improvement = fig14.improvement_at_heaviest_load(result)
        assert improvement > 0.1  # paper: up to 31.2%

    def test_fig15_message_savings(self):
        # Mirrors the paper's setup shape: M=7 with slack in one group, so
        # most joins are cheap; occasional splits are amortized.
        result = fig15.run(initial_nodes=16, group_size=7, additions=4)
        last = result.rows[-1]
        assert last["ghba_cumulative"] < last["hba_cumulative"]
        assert last["hba_messages"] == 2 * (16 + 3)  # the 2N exchange


class TestAblations:
    def test_lru_ablation_direction(self):
        result = ablation_lru.run(
            lru_capacities=(1, 1024),
            num_servers=10,
            group_size=4,
            num_files=500,
            num_ops=3_000,
        )
        disabled, enabled = result.rows[0], result.rows[-1]
        assert enabled["l1"] > disabled["l1"] + 0.2
        assert enabled["mean_latency_ms"] < disabled["mean_latency_ms"]

    def test_update_threshold_tradeoff(self):
        result = ablation_updates.run(
            thresholds=(0, 512), num_servers=10, group_size=4, churn_rounds=15
        )
        eager, lazy = result.rows[0], result.rows[-1]
        assert eager["update_messages"] > lazy["update_messages"]
        assert eager["stale_escape_rate"] < lazy["stale_escape_rate"]
