"""The TCP transport must behave exactly like the in-process one.

These tests run real MDS node threads behind real localhost sockets
(one :class:`~repro.net.tcp.TcpTransport` hosting the fleet, a second
acting as the client) and assert the parity claims the subsystem makes:
same request/gather surface, same fault-injection boundary, same retry
counters, same graceful-shutdown semantics (a dead peer is
``unreachable`` in a :class:`~repro.net.reliability.GatherResult`, not
an exception), and crash/restart through the existing checkpoint
machinery.
"""

import re

import pytest

from repro.core.checkpoint import restore_server, snapshot_server
from repro.core.config import GHBAConfig
from repro.faults.injector import FaultPlan, PlanFaultInjector
from repro.faults.retry import RetryPolicy
from repro.metadata.attributes import FileMetadata
from repro.net.reliability import TransportClosed
from repro.net.tcp import PortMap, TcpTransport
from repro.obs.registry import MetricsRegistry
from repro.obs.report import transport_report
from repro.prototype.messages import Message, MessageKind
from repro.prototype.node import MDSNode
from repro.prototype.transport import InProcessTransport


def _config():
    return GHBAConfig(expected_files_per_mds=512, lru_capacity=64)


def _start_fleet(portmap, node_ids, config=None, servers=None):
    """One transport hosting ``node_ids`` as node threads."""
    config = config or _config()
    transport = TcpTransport(portmap, default_timeout_s=5.0)
    nodes = {}
    for node_id in node_ids:
        server = servers.get(node_id) if servers else None
        node = MDSNode(node_id, config, transport, server=server)
        node.start()
        nodes[node_id] = node
    return transport, nodes


def _stop_fleet(transport, nodes):
    for node in nodes.values():
        node.stop(timeout_s=5.0)
    transport.close()


class TestTcpRoundTrips:
    def test_request_and_batches_round_trip(self):
        portmap = PortMap.reserve([0, 1])
        fleet, nodes = _start_fleet(portmap, [0, 1])
        client = TcpTransport(portmap, default_timeout_s=5.0)
        try:
            pong = client.request(
                0, Message(kind=MessageKind.PING, sender=-1)
            )
            assert pong.payload["alive"] is True

            meta = FileMetadata("/tcp/a", inode=7, size=128)
            ack = client.request(
                1,
                Message(
                    kind=MessageKind.INSERT,
                    sender=-1,
                    payload={"meta": meta},
                ),
            )
            assert ack.payload["ok"] is True

            verify = client.request(
                1,
                Message(
                    kind=MessageKind.VERIFY,
                    sender=-1,
                    payload={"path": "/tcp/a"},
                ),
            )
            assert verify.payload["found"] is True
            assert verify.payload["home_id"] == 1

            batch = client.request(
                1,
                Message(
                    kind=MessageKind.VERIFY_BATCH,
                    sender=-1,
                    payload={"paths": ["/tcp/a", "/tcp/missing"]},
                ),
            )
            assert batch.payload["found"] == {
                "/tcp/a": True,
                "/tcp/missing": False,
            }
        finally:
            _stop_fleet(fleet, nodes)
            client.close()

    def test_trace_context_survives_the_wire(self):
        portmap = PortMap.reserve([0])
        fleet, nodes = _start_fleet(portmap, [0])
        client = TcpTransport(portmap, default_timeout_s=5.0)
        try:
            reply = client.request(
                0,
                Message(
                    kind=MessageKind.PING,
                    sender=-1,
                    trace=(12345, 67, 3),
                ),
            )
            assert reply.trace == (12345, 67, 3)
        finally:
            _stop_fleet(fleet, nodes)
            client.close()

    def test_mutate_batch_applies_then_dedups_on_retry(self):
        portmap = PortMap.reserve([0])
        fleet, nodes = _start_fleet(portmap, [0])
        client = TcpTransport(portmap, default_timeout_s=5.0)
        try:
            mutations = [
                {
                    "version": 1,
                    "op": "create",
                    "path": "/tcp/m",
                    "record": FileMetadata("/tcp/m", inode=1),
                },
            ]
            payload = {"origin": 9, "acked": 0, "mutations": mutations}
            first = client.request(
                0,
                Message(
                    kind=MessageKind.MUTATE_BATCH, sender=-1, payload=payload
                ),
            )
            (outcome,) = first.payload["outcomes"]
            assert outcome["applied"] is True
            assert outcome["deduped"] is False

            # A retransmit of the same (origin, version) must be served
            # from the outcome cache, exactly as in-process.
            second = client.request(
                0,
                Message(
                    kind=MessageKind.MUTATE_BATCH, sender=-1, payload=payload
                ),
            )
            (outcome,) = second.payload["outcomes"]
            assert outcome["deduped"] is True
        finally:
            _stop_fleet(fleet, nodes)
            client.close()


class TestTcpFaultBoundaryParity:
    def _exhaust(self, transport):
        """Drive one doomed request; return (exception, counters)."""
        with pytest.raises(TimeoutError) as excinfo:
            transport.request(
                0,
                Message(kind=MessageKind.PING, sender=-1),
                timeout_s=0.2,
            )
        # Request ids come from a process-global counter, so mask them
        # before comparing error texts across transports.
        error = re.sub(r"request \d+", "request N", str(excinfo.value))
        return error, {
            "messages_sent": transport.messages_sent,
            "replies_received": transport.replies_received,
            "retries": transport.retries,
            "exhausted": transport.exhausted,
        }

    def test_injected_drops_count_identically_to_in_process(self):
        """drop_rate=1.0: both transports burn the same attempts and
        raise the same timeout, because the injector wraps TCP sends at
        the same boundary as in-process sends."""
        retry = RetryPolicy(max_attempts=3, timeout_s=0.02)

        plan = FaultPlan(seed=5, drop_rate=1.0)
        inproc = InProcessTransport(
            default_timeout_s=0.2,
            injector=PlanFaultInjector(plan),
            retry=retry,
        )
        inproc.register(0)
        inproc_error, inproc_counters = self._exhaust(inproc)

        portmap = PortMap.reserve([0])
        fleet, nodes = _start_fleet(portmap, [0])
        tcp = TcpTransport(
            portmap,
            default_timeout_s=0.2,
            injector=PlanFaultInjector(FaultPlan(seed=5, drop_rate=1.0)),
            retry=retry,
        )
        try:
            tcp_error, tcp_counters = self._exhaust(tcp)
            assert tcp_error == inproc_error
            assert tcp_counters == inproc_counters
            assert tcp_counters["messages_sent"] == retry.max_attempts
            assert tcp_counters["exhausted"] == 1
        finally:
            _stop_fleet(fleet, nodes)
            tcp.close()


class TestTcpShutdownSemantics:
    def test_gather_marks_dead_peer_unreachable(self):
        # Node 7 is in the port map but nothing ever listens there:
        # connecting exhausts its attempts and the gather records the
        # peer as unreachable instead of raising.
        portmap = PortMap.reserve([0, 7])
        fleet, nodes = _start_fleet(portmap, [0])
        client = TcpTransport(
            portmap,
            default_timeout_s=2.0,
            connect_attempts=2,
            connect_backoff_s=0.01,
        )
        try:
            result = client.gather(
                [0, 7],
                lambda dest: Message(kind=MessageKind.PING, sender=-1),
            )
            assert sorted(result.replies) == [0]
            assert result.unreachable == (7,)
            assert result.missing == ()
            assert not result.complete
            assert len(result) == 1
            assert client.stats()["connect_retries"] >= 1
        finally:
            _stop_fleet(fleet, nodes)
            client.close()

    def test_unknown_destination_is_transport_closed(self):
        portmap = PortMap.reserve([0])
        client = TcpTransport(portmap, default_timeout_s=1.0)
        try:
            with pytest.raises(TransportClosed):
                client.send(
                    42, Message(kind=MessageKind.PING, sender=-1)
                )
        finally:
            client.close()

    def test_send_after_close_is_transport_closed(self):
        portmap = PortMap.reserve([0])
        client = TcpTransport(portmap, default_timeout_s=1.0)
        client.close()
        with pytest.raises(TransportClosed):
            client.send(0, Message(kind=MessageKind.PING, sender=-1))

    def test_crash_restart_resumes_from_checkpoint(self):
        """Kill a node thread, restore its server from a snapshot on a
        fresh transport, and observe identical metadata over the wire —
        the TCP analogue of the faults checkpoint drill."""
        config = _config()
        portmap = PortMap.reserve([0])
        fleet, nodes = _start_fleet(portmap, [0], config=config)
        client = TcpTransport(portmap, default_timeout_s=5.0)
        paths = [f"/tcp/ckpt/{i}" for i in range(8)]
        try:
            for i, path in enumerate(paths):
                client.request(
                    0,
                    Message(
                        kind=MessageKind.INSERT,
                        sender=-1,
                        payload={"meta": FileMetadata(path, inode=i + 1)},
                    ),
                )
            snapshot = snapshot_server(nodes[0].server)
            _stop_fleet(fleet, nodes)

            restored = restore_server(snapshot, config)
            portmap2 = PortMap.reserve([0])
            fleet2, nodes2 = _start_fleet(
                portmap2, [0], config=config, servers={0: restored}
            )
            client2 = TcpTransport(portmap2, default_timeout_s=5.0)
            try:
                batch = client2.request(
                    0,
                    Message(
                        kind=MessageKind.VERIFY_BATCH,
                        sender=-1,
                        payload={"paths": paths + ["/tcp/ckpt/ghost"]},
                    ),
                )
                found = batch.payload["found"]
                assert all(found[path] for path in paths)
                assert found["/tcp/ckpt/ghost"] is False
            finally:
                _stop_fleet(fleet2, nodes2)
                client2.close()
        finally:
            client.close()


class TestTcpWireStats:
    def test_stats_and_metrics_families(self):
        portmap = PortMap.reserve([0])
        fleet, nodes = _start_fleet(portmap, [0])
        registry = MetricsRegistry()
        client = TcpTransport(
            portmap, default_timeout_s=5.0, metrics=registry
        )
        try:
            for _ in range(3):
                client.request(
                    0, Message(kind=MessageKind.PING, sender=-1)
                )
            stats = client.stats()
            assert stats["frames_out"] == 3
            assert stats["frames_in"] == 3
            assert stats["bytes_out"] > 0
            assert stats["bytes_in"] > 0
            assert stats["connects"] == 1
            assert stats["queue_high_water"] >= 1

            bytes_total = registry.get("transport_bytes_total")
            assert bytes_total.get("out") == stats["bytes_out"]
            assert bytes_total.get("in") == stats["bytes_in"]
            frames_total = registry.get("transport_frames_total")
            assert frames_total.get("out") == 3

            report = transport_report(registry)
            assert report.startswith("-- transport counters --")
            assert "transport_bytes_total" in report
            assert "transport_queue_high_water" in report
        finally:
            _stop_fleet(fleet, nodes)
            client.close()
