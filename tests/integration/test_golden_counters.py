"""Golden-counter pins across the packed-bitset swap (ISSUE 9).

The hot-path Bloom overhaul replaced the per-bit substrate with packed
big-int bitsets.  That swap must be *observationally invisible*: same
seed + same fault plan → bit-identical query outcomes, ``ghba_*`` /
``gateway_*`` counters, and fig13/fig14 experiment outputs.  The golden
snapshots in ``data/golden_counters.json`` were captured with the old
per-bit implementation immediately before the swap; these tests pin the
new engine to them.

If one of these tests fails, the substrate changed *behaviour*, not just
speed — that is a bug, not a reason to regenerate.  Regenerate the
goldens only when a PR intentionally changes workload semantics:

    PYTHONPATH=src python tests/integration/test_golden_counters.py
"""

from __future__ import annotations

import hashlib
import json
import random
from pathlib import Path

from repro.bloom import BloomFilter
from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.experiments import fig13, fig14
from repro.faults import FaultPlan, PlanFaultInjector
from repro.traces.profiles import HP_PROFILE
from repro.traces.synthetic import generate_trace

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_counters.json"


def _digest(payload: object) -> str:
    """Stable content hash of any JSON-representable structure."""
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def _counter_snapshot(metrics, prefixes=("ghba_", "gateway_")) -> dict:
    """Every ghba_*/gateway_* counter series currently in ``metrics``."""
    snapshot = {}
    for family in metrics.families():
        if family.kind != "counter" or not family.name.startswith(prefixes):
            continue
        series = family.as_dict()
        if series:
            snapshot[family.name] = {k: v for k, v in sorted(series.items())}
    return snapshot


def _round_floats(value, places=9):
    if isinstance(value, float):
        return round(value, places)
    if isinstance(value, dict):
        return {k: _round_floats(v, places) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_round_floats(v, places) for v in value]
    return value


# ----------------------------------------------------------------------
# Scenarios.  Each returns a JSON-representable dict; everything inside
# derives from a fixed seed, so the old and new substrates must produce
# identical structures.
# ----------------------------------------------------------------------

def scenario_ghba_fault_replay() -> dict:
    """Seeded query replay under a fault plan: the full L1-L4 walk."""
    config = GHBAConfig(
        max_group_size=4,
        expected_files_per_mds=256,
        lru_capacity=64,
        lru_filter_bits=512,
        seed=29,
    )
    cluster = GHBACluster(8, config, seed=29)
    records = generate_trace(HP_PROFILE, 300, 2_000, seed=29)
    placement = cluster.populate(sorted({r.path for r in records}))
    cluster.synchronize_replicas(force=True)
    plan = FaultPlan(
        seed=29, drop_rate=0.08, delay_rate=0.10, duplicate_rate=0.02
    )
    cluster.faults = PlanFaultInjector(plan, metrics=cluster.metrics)

    outcomes = []
    for record in records:
        if record.path in placement:
            result = cluster.query(record.path)
            outcomes.append(
                [
                    record.path,
                    result.home_id,
                    result.level.name,
                    round(result.latency_ms, 9),
                    result.messages,
                    result.false_forwards,
                    result.degraded,
                ]
            )

    # The gateway's batched verify path (VERIFY_BATCH → contains_many).
    rng = random.Random(29)
    batch_outcomes = []
    paths = sorted(placement)
    for server_id in sorted(cluster.servers):
        batch = [paths[rng.randrange(len(paths))] for _ in range(16)]
        batch.append(f"/golden/missing/{server_id}")
        result = cluster.verify_batch(server_id, batch)
        found = sorted(
            (path, record is not None, result.versions.get(path, 0))
            for path, record in result.results.items()
        )
        batch_outcomes.append(
            [server_id, found, round(result.latency_ms, 9), result.messages]
        )

    return {
        "outcomes_sha256": _digest(outcomes),
        "num_outcomes": len(outcomes),
        "verify_batches_sha256": _digest(batch_outcomes),
        "counters": _counter_snapshot(cluster.metrics),
    }


def scenario_gateway_cohort() -> dict:
    """The conftest cohort scenario under faults: gateway_* counters."""
    from tests.conftest import run_cohort_scenario

    plan = FaultPlan(
        seed=31, drop_rate=0.05, delay_rate=0.10, duplicate_rate=0.02
    )
    cohort, auditor = run_cohort_scenario(seed=31, size=3, plan=plan, ops=500)
    return {
        "counters": _counter_snapshot(cohort.cluster.metrics),
        "violations": auditor.stats.violations,
    }


def scenario_fig13() -> dict:
    """Per-level hit fractions of the hierarchy experiment."""
    rows = fig13.run_one(num_servers=10, num_files=200, num_ops=1_500, seed=3)
    return {"rows": _round_floats(rows)}


def scenario_fig14() -> dict:
    """Adaptivity experiment rows for the ghba scheme."""
    rows = fig14.run_one(
        "ghba",
        num_nodes=6,
        group_size=3,
        num_files=200,
        num_ops=600,
        windows=4,
        seed=3,
    )
    return {"rows": _round_floats(rows)}


def scenario_serialization() -> dict:
    """Content hash of the Bloom wire form for a fixed item set."""
    digests = {}
    for num_bits, num_hashes, seed in ((512, 4, 0), (1024, 6, 7), (77, 3, -5)):
        bloom = BloomFilter(num_bits, num_hashes, seed)
        for i in range(64):
            bloom.add(f"/golden/wire/d{i % 7}/f{i}")
        key = f"{num_bits}/{num_hashes}/{seed}"
        digests[key] = hashlib.sha256(bloom.to_bytes()).hexdigest()
    return {"to_bytes_sha256": digests}


SCENARIOS = {
    "ghba_fault_replay": scenario_ghba_fault_replay,
    "gateway_cohort": scenario_gateway_cohort,
    "fig13": scenario_fig13,
    "fig14": scenario_fig14,
    "serialization": scenario_serialization,
}


def _load_golden() -> dict:
    with GOLDEN_PATH.open("r", encoding="utf-8") as handle:
        return json.load(handle)


class TestGoldenCounters:
    def test_ghba_fault_replay_matches_golden(self):
        assert scenario_ghba_fault_replay() == _load_golden()["ghba_fault_replay"]

    def test_gateway_cohort_matches_golden(self):
        assert scenario_gateway_cohort() == _load_golden()["gateway_cohort"]

    def test_fig13_matches_golden(self):
        assert scenario_fig13() == _load_golden()["fig13"]

    def test_fig14_matches_golden(self):
        assert scenario_fig14() == _load_golden()["fig14"]

    def test_serialization_matches_golden(self):
        assert scenario_serialization() == _load_golden()["serialization"]


def _regenerate() -> None:
    GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
    golden = {name: fn() for name, fn in sorted(SCENARIOS.items())}
    with GOLDEN_PATH.open("w", encoding="utf-8") as handle:
        json.dump(golden, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    _regenerate()
