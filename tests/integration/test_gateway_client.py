"""Integration tests for the gateway facade (repro.gateway.client).

End-to-end over a real :class:`GHBACluster`: the serving pipeline
(cache → coalesce → batch → backend), cache coherence through cluster
mutation hooks, the multi-key VERIFY_BATCH path, metrics accounting, the
zero-overhead-when-disabled discipline, and determinism of the bench CLI.
"""

import argparse

import pytest

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.gateway import GatewayConfig, MetadataClient, Outcome
from repro.gateway.__main__ import main as gateway_main
from repro.gateway.__main__ import run_bench
from repro.obs.report import gateway_hotspot_report, render_report


def _config(seed=11):
    return GHBAConfig(
        max_group_size=4,
        expected_files_per_mds=200,
        lru_capacity=256,
        lru_filter_bits=1 << 10,
        seed=seed,
    )


def _cluster(num=8, seed=11):
    cluster = GHBACluster(num, _config(seed), seed=seed)
    paths = [f"/it/d{i % 5}/f{i}" for i in range(400)]
    cluster.populate(paths)
    cluster.synchronize_replicas(force=True)
    return cluster, paths


@pytest.fixture
def stack():
    cluster, paths = _cluster()
    gateway = MetadataClient(
        cluster,
        GatewayConfig(rate_per_s=1e6, burst=1e4, lease_ttl_s=5.0),
    )
    return cluster, gateway, paths


class TestServingPipeline:
    def test_first_lookup_walks_then_lease_hits(self, stack):
        cluster, gateway, paths = stack
        first = gateway.lookup(paths[0], now=0.0)
        assert first.outcome is Outcome.SERVED
        assert first.home_id == cluster.home_of(paths[0])
        again = gateway.lookup(paths[0], now=1.0)
        assert again.outcome is Outcome.HIT
        assert again.from_cache and again.home_id == first.home_id
        assert gateway.backend_queries == 1

    def test_negative_lookup_gets_negative_lease(self, stack):
        _, gateway, _ = stack
        miss = gateway.lookup("/it/absent", now=0.0)
        assert miss.outcome is Outcome.SERVED and miss.home_id is None
        again = gateway.lookup("/it/absent", now=0.1)
        assert again.outcome is Outcome.NEGATIVE_HIT
        assert gateway.backend_queries == 1

    def test_same_tick_duplicates_coalesce(self, stack):
        _, gateway, paths = stack
        hot = paths[3]
        responses = gateway.lookup_many([hot, hot, hot], now=0.0)
        outcomes = sorted(r.outcome.value for r in responses)
        assert outcomes == ["coalesced", "coalesced", "served"]
        assert gateway.backend_queries == 1  # one flight for three callers
        assert {r.home_id for r in responses} == {responses[0].home_id}

    def test_expired_leases_revalidate_in_batches(self, stack):
        cluster, gateway, paths = stack
        subset = paths[:6]
        gateway.lookup_many(subset, now=0.0)  # populate leases
        walks = gateway.backend_queries
        # Past the TTL every lease is expired but still predicts its home:
        # re-validation goes through verify_batch, not full walks.
        responses = gateway.lookup_many(subset, now=10.0)
        assert {r.outcome for r in responses} == {Outcome.BATCHED}
        homes = {cluster.home_of(p) for p in subset}
        assert gateway.backend_queries == walks + len(homes)
        for response in responses:
            assert response.home_id == cluster.home_of(response.path)

    def test_stale_prediction_falls_through_to_full_walk(self, stack):
        cluster, gateway, paths = stack
        victim = paths[7]
        gateway.lookup(victim, now=0.0)
        cluster.delete_file(victim)  # also invalidates the lease
        # Reinstall an (expired) wrong prediction by hand to force the
        # batch path to miss.
        gateway.cache.put(victim, cluster.home_of(paths[8]), None, -10.0)
        response = gateway.lookup(victim, now=0.0)
        assert response.outcome is Outcome.SERVED
        assert response.home_id is None


class TestCoherence:
    def test_create_through_facade_is_cached_and_correct(self, stack):
        cluster, gateway, _ = stack
        created = gateway.create("/it/d0/new", now=0.0)
        assert created.home_id == cluster.home_of("/it/d0/new")
        hit = gateway.lookup("/it/d0/new", now=0.1)
        assert hit.outcome is Outcome.HIT

    def test_delete_through_facade_yields_negative(self, stack):
        cluster, gateway, paths = stack
        gateway.lookup(paths[0], now=0.0)
        gateway.delete(paths[0], now=0.1)
        after = gateway.lookup(paths[0], now=0.2)
        assert after.outcome is Outcome.NEGATIVE_HIT
        assert cluster.home_of(paths[0]) is None

    def test_direct_cluster_mutations_invalidate_leases(self, stack):
        cluster, gateway, paths = stack
        gateway.lookup(paths[1], now=0.0)
        assert paths[1] in gateway.cache
        cluster.delete_file(paths[1])  # NOT through the facade
        assert paths[1] not in gateway.cache
        after = gateway.lookup(paths[1], now=0.1)
        assert after.home_id is None

    def test_rename_invalidates_cached_subtree(self, stack):
        cluster, gateway, paths = stack
        under = [p for p in paths if p.startswith("/it/d1/")][:5]
        gateway.lookup_many(under, now=0.0)
        assert all(p in gateway.cache for p in under)
        gateway.rename("/it/d1", "/it/renamed", now=0.1)
        assert all(p not in gateway.cache for p in under)
        # Old names resolve negative, new names resolve positive, and the
        # gateway agrees with the cluster on both.
        old = gateway.lookup(under[0], now=0.2)
        assert old.home_id is None
        moved = "/it/renamed/" + under[0].rsplit("/", 1)[1]
        new = gateway.lookup(moved, now=0.2)
        assert new.home_id == cluster.home_of(moved)

    def test_server_removal_drops_its_leases(self, stack):
        cluster, gateway, paths = stack
        gateway.lookup_many(paths[:40], now=0.0)
        victim = next(
            gateway.cache.peek(p).home_id
            for p in paths[:40]
            if p in gateway.cache
        )
        held = [
            p
            for p in paths[:40]
            if p in gateway.cache
            and gateway.cache.peek(p).home_id == victim
        ]
        cluster.remove_server(victim)
        assert all(p not in gateway.cache for p in held)


class TestBatchVerify:
    def test_verify_batch_finds_local_records(self, stack):
        cluster, gateway, paths = stack
        home = cluster.home_of(paths[0])
        mine = [p for p in paths if cluster.home_of(p) == home][:4]
        outcome = cluster.verify_batch(home, mine + ["/it/absent"])
        assert not outcome.degraded
        assert outcome.found == len(mine)
        for path in mine:
            assert outcome.results[path].path == path
        assert outcome.results["/it/absent"] is None
        assert outcome.messages == 2

    def test_verify_batch_rejects_empty_and_unknown(self, stack):
        cluster, _, paths = stack
        with pytest.raises(ValueError):
            cluster.verify_batch(0, [])
        missing = cluster.verify_batch(999, [paths[0]])
        assert missing.degraded


class TestMetricsAndReport:
    def test_gateway_metrics_accumulate(self, stack):
        cluster, gateway, paths = stack
        gateway.lookup_many([paths[0], paths[0], paths[1]], now=0.0)
        gateway.lookup(paths[0], now=0.1)
        m = cluster.metrics
        assert m.get("gateway_requests_total").get("lookup", "-") == 4
        assert m.get("gateway_cache_hits_total").get("positive") == 1
        assert m.get("gateway_coalesced_total").value == 1
        assert m.get("gateway_backend_queries_total").total() == 2
        gateway.refresh_gauges()
        assert m.get("gateway_cache_entries").value == 2

    def test_report_includes_gateway_section(self, stack):
        cluster, gateway, paths = stack
        for _ in range(40):
            gateway.lookup(paths[0], now=0.0)
        report = render_report(cluster, gateway=gateway)
        assert "hotspots: gateway paths" in report
        assert paths[0] in report

    def test_empty_gateway_report_renders(self, stack):
        _, gateway, _ = stack
        assert "no gateway traffic" in gateway_hotspot_report(gateway)


class TestZeroOverheadWhenDisabled:
    def test_plain_cluster_has_no_gateway_series(self):
        cluster, paths = _cluster()
        for path in paths[:50]:
            cluster.query(path)
        cluster.delete_file(paths[0])
        cluster.rename_subtree("/it/d2", "/it/moved")
        snapshot = cluster.metrics.snapshot()
        assert not any(name.startswith("gateway_") for name in snapshot)
        assert "ghba_batch_verifies_total" not in snapshot
        assert cluster._mutation_listeners == []

    def test_direct_runs_identical_with_and_without_gateway_elsewhere(self):
        # A gateway fronting cluster A must not perturb a direct-driven
        # cluster B sharing nothing but the code path.
        cluster_a, paths = _cluster()
        cluster_b, _ = _cluster()
        MetadataClient(cluster_a)  # attached, never used
        results_b = [
            (r.home_id, r.level.name, round(r.latency_ms, 9), r.messages)
            for r in (cluster_b.query(p) for p in paths[:80])
        ]
        cluster_c, _ = _cluster()
        results_c = [
            (r.home_id, r.level.name, round(r.latency_ms, 9), r.messages)
            for r in (cluster_c.query(p) for p in paths[:80])
        ]
        assert results_b == results_c
        assert cluster_b.metrics.snapshot() == cluster_c.metrics.snapshot()


class TestHotspotShielding:
    def test_hot_path_gets_pinned_and_extended_lease(self, stack):
        _, gateway, paths = stack
        hot = paths[5]
        for i in range(gateway.config.hot_threshold + 1):
            gateway.lookup(hot, now=0.01 * i)
        assert gateway.hotspots.is_hot(hot)
        assert hot in gateway.cache.pinned_paths()
        # The pinned lease lasts hot_lease_ttl_s, not lease_ttl_s.
        late = gateway.lookup(hot, now=gateway.config.lease_ttl_s + 1.0)
        assert late.outcome is Outcome.HIT


class TestBenchDeterminism:
    def _args(self, **overrides):
        defaults = dict(
            servers=8, group_size=4, files=500, ops=800, clients=6,
            profile="HP", seed=7, cache_capacity=2048, lease_ttl_s=5.0,
            rate_per_s=2000.0, hot_threshold=16, top=5, chaos=False,
            chaos_start_s=0.2, chaos_window_s=0.5, json=None,
        )
        defaults.update(overrides)
        return argparse.Namespace(**defaults)

    def _strip(self, stats):
        stats.pop("_gateway")
        return stats

    def test_same_seed_same_stats(self):
        a = self._strip(run_bench(self._args()))
        b = self._strip(run_bench(self._args()))
        assert a == b
        assert a["stale_reads"] == 0 and a["home_mismatches"] == 0

    def test_same_seed_same_stats_under_faults(self):
        a = self._strip(run_bench(self._args(chaos=True)))
        b = self._strip(run_bench(self._args(chaos=True)))
        assert a == b
        assert a["stale_reads"] == 0

    def test_cli_exit_code_and_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = gateway_main(
            [
                "bench", "--servers", "8", "--files", "400", "--ops", "600",
                "--seed", "7", "--json", str(out),
            ]
        )
        assert code == 0
        assert out.exists()
        captured = capsys.readouterr().out
        assert "backend reduction" in captured
