"""Cohort determinism: same seed + fault plan → bit-identical counters.

ISSUE 4 satellite 6.  The cohort protocol is driven entirely by explicit
virtual time and seeded RNGs (trace, fault draws, member tick order), so
re-running an identical scenario must reproduce every
``gateway_cohort_*`` counter child exactly — including the fault-shaped
ones (gaps, duplicates, sync traffic, peer outages).  Any drift means
hidden nondeterminism (iteration order, wall-clock leakage, shared RNG
state), which would make every staleness result in this suite
unreproducible.
"""

from repro.faults import FaultPlan, Partition


def _chaos_plan(seed):
    return FaultPlan(
        seed=seed,
        drop_rate=0.12,
        delay_rate=0.15,
        delay_ms_min=0.5,
        delay_ms_max=4.0,
        duplicate_rate=0.10,
        partitions=(Partition(start_s=0.5, end_s=1.2, island=(0,)),),
    )


def _run(cohort_scenario, seed):
    cohort, auditor = cohort_scenario(
        seed=seed, size=3, plan=_chaos_plan(seed), ops=1000
    )
    return cohort, auditor


def test_counters_bit_identical_across_runs(cohort_scenario):
    first_cohort, first_auditor = _run(cohort_scenario, seed=13)
    second_cohort, second_auditor = _run(cohort_scenario, seed=13)

    first = first_cohort.counter_snapshot()
    second = second_cohort.counter_snapshot()
    assert first == second
    # Non-vacuous: the plan really exercised the lossy paths.
    assert sum(first["gateway_cohort_gaps_total"].values()) > 0
    assert sum(first["gateway_cohort_duplicates_total"].values()) > 0
    assert sum(first["gateway_cohort_peer_missing_total"].values()) > 0

    # The audit trail agrees too, down to each stale window.
    assert first_auditor.summary() == second_auditor.summary()
    assert [
        (r.path, r.read_time, r.mutation_time, r.gateway_id)
        for r in first_auditor.stale_reads
    ] == [
        (r.path, r.read_time, r.mutation_time, r.gateway_id)
        for r in second_auditor.stale_reads
    ]
    assert first_cohort.backend_queries == second_cohort.backend_queries
    assert (
        first_cohort.invalidation_messages
        == second_cohort.invalidation_messages
    )


def test_different_seeds_diverge(cohort_scenario):
    """The counters are seed-sensitive — equality above is not trivial."""
    first_cohort, _ = _run(cohort_scenario, seed=13)
    second_cohort, _ = _run(cohort_scenario, seed=14)
    assert first_cohort.counter_snapshot() != second_cohort.counter_snapshot()
