"""Integration tests for the threaded message-passing prototype."""

import threading

import pytest

from repro.core.config import GHBAConfig
from repro.core.query import QueryLevel
from repro.prototype.cluster import PrototypeCluster


@pytest.fixture
def config():
    return GHBAConfig(
        max_group_size=4,
        expected_files_per_mds=256,
        lru_capacity=64,
        lru_filter_bits=512,
        seed=21,
    )


@pytest.fixture
def ghba_proto(config):
    with PrototypeCluster(10, config, scheme="ghba", seed=21) as proto:
        yield proto


@pytest.fixture
def hba_proto(config):
    with PrototypeCluster(10, config, scheme="hba", seed=21) as proto:
        yield proto


class TestLookupProtocol:
    def test_lookups_resolve_correctly(self, ghba_proto):
        placement = ghba_proto.populate(f"/p/f{i}" for i in range(300))
        for path, home in list(placement.items())[::23]:
            outcome = ghba_proto.lookup(path)
            assert outcome.found
            assert outcome.home_id == home

    def test_negative_lookup(self, ghba_proto):
        ghba_proto.populate(f"/p/f{i}" for i in range(50))
        outcome = ghba_proto.lookup("/nope")
        assert not outcome.found
        assert outcome.level is QueryLevel.NEGATIVE

    def test_lru_learns_at_origin(self, ghba_proto):
        placement = ghba_proto.populate(f"/p/f{i}" for i in range(50))
        path = next(iter(placement))
        origin = ghba_proto.node_ids()[0]
        ghba_proto.lookup(path, origin_id=origin)
        ghba_proto.quiesce()  # let the RECORD_LRU one-way land
        repeat = ghba_proto.lookup(path, origin_id=origin)
        assert repeat.level is QueryLevel.L1

    def test_messages_counted_on_wire(self, ghba_proto):
        ghba_proto.populate(f"/p/f{i}" for i in range(50))
        before = ghba_proto.transport.messages_sent
        ghba_proto.lookup("/p/f1")
        assert ghba_proto.transport.messages_sent > before

    def test_virtual_latency_positive_and_ordered(self, ghba_proto):
        placement = ghba_proto.populate(f"/p/f{i}" for i in range(50))
        path = next(iter(placement))
        outcome = ghba_proto.lookup(path, vtime=5.0)
        assert outcome.virtual_latency_ms > 0

    def test_hba_resolves_locally(self, hba_proto):
        placement = hba_proto.populate(f"/p/f{i}" for i in range(200))
        for path, home in list(placement.items())[::29]:
            outcome = hba_proto.lookup(path)
            assert outcome.home_id == home
            assert outcome.level in (QueryLevel.L1, QueryLevel.L2)


class TestConcurrentClients:
    def test_parallel_lookups_all_correct(self, ghba_proto):
        placement = ghba_proto.populate(f"/c/f{i}" for i in range(400))
        errors = []

        def worker(offset):
            for i, (path, home) in enumerate(list(placement.items())[offset::8]):
                outcome = ghba_proto.lookup(path, vtime=i * 0.001)
                if outcome.home_id != home:
                    errors.append((path, outcome.home_id, home))

        threads = [
            threading.Thread(target=worker, args=(k,)) for k in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors

    def test_queueing_under_concurrency(self, ghba_proto):
        """Simultaneous arrivals at one node must serialize on its clock."""
        placement = ghba_proto.populate(f"/q/f{i}" for i in range(50))
        path = next(iter(placement))
        origin = ghba_proto.node_ids()[0]
        first = ghba_proto.lookup(path, vtime=100.0, origin_id=origin)
        second = ghba_proto.lookup(path, vtime=100.0, origin_id=origin)
        assert second.virtual_latency_ms >= first.virtual_latency_ms * 0.5


class TestDynamicMembership:
    def test_ghba_adds_keep_directory_consistent(self, ghba_proto):
        ghba_proto.populate(f"/d/f{i}" for i in range(100))
        for _ in range(5):
            ghba_proto.add_node()
        ghba_proto.check_directory()

    def test_lookups_after_adds(self, ghba_proto):
        placement = ghba_proto.populate(f"/d/f{i}" for i in range(100))
        for _ in range(3):
            ghba_proto.add_node()
        for path, home in list(placement.items())[::11]:
            outcome = ghba_proto.lookup(path)
            assert outcome.home_id == home

    def test_hba_join_message_count_is_2n(self, hba_proto):
        report = hba_proto.add_node()
        assert report["messages"] == 2 * (hba_proto.num_nodes - 1)

    def test_ghba_join_cheaper_than_hba(self, config):
        with PrototypeCluster(10, config, scheme="ghba", seed=1) as g, \
                PrototypeCluster(10, config, scheme="hba", seed=1) as h:
            ghba_messages = g.add_node()["messages"]
            hba_messages = h.add_node()["messages"]
            assert ghba_messages < hba_messages

    def test_split_when_groups_full(self, config):
        with PrototypeCluster(8, config, scheme="ghba", seed=2) as proto:
            # 8 nodes, M=4: both groups full -> the add must split.
            groups_before = len(proto.groups)
            proto.add_node()
            assert len(proto.groups) == groups_before + 1
            proto.check_directory()


class TestNodeRemoval:
    def test_ghba_remove_keeps_directory_consistent(self, ghba_proto):
        ghba_proto.populate(f"/r/f{i}" for i in range(100))
        victim = ghba_proto.node_ids()[0]
        report = ghba_proto.remove_node(victim)
        assert report["messages"] > 0
        assert victim not in ghba_proto.nodes
        ghba_proto.check_directory()

    def test_ghba_remove_rehomes_files(self, ghba_proto):
        placement = ghba_proto.populate(f"/r/f{i}" for i in range(100))
        victim = ghba_proto.node_ids()[0]
        victim_files = [p for p, h in placement.items() if h == victim]
        ghba_proto.remove_node(victim)
        for path in victim_files[:5]:
            outcome = ghba_proto.lookup(path)
            assert outcome.found
            assert outcome.home_id != victim

    def test_ghba_other_files_unaffected(self, ghba_proto):
        placement = ghba_proto.populate(f"/r/f{i}" for i in range(100))
        victim = ghba_proto.node_ids()[-1]
        survivors = [(p, h) for p, h in placement.items() if h != victim][:10]
        ghba_proto.remove_node(victim)
        for path, home in survivors:
            assert ghba_proto.lookup(path).home_id == home

    def test_groups_merge_when_small(self, config):
        with PrototypeCluster(10, config, scheme="ghba", seed=5) as proto:
            # Balanced: groups of 4/3/3.  Removing enough members forces
            # the small groups to merge within M=4.
            groups_before = len(proto.groups)
            removed = 0
            while len(proto.groups) >= groups_before and removed < 5:
                proto.remove_node(proto.node_ids()[-1])
                removed += 1
            proto.check_directory()
            assert len(proto.groups) < groups_before

    def test_hba_remove_drops_replicas_everywhere(self, hba_proto):
        hba_proto.populate(f"/r/f{i}" for i in range(50))
        victim = hba_proto.node_ids()[0]
        hba_proto.remove_node(victim)
        for node in hba_proto.nodes.values():
            assert victim not in node.server.segment

    def test_remove_last_node_rejected(self, config):
        with PrototypeCluster(1, config, scheme="ghba") as proto:
            import pytest as _pytest

            with _pytest.raises(ValueError):
                proto.remove_node(proto.node_ids()[0])

    def test_remove_unknown_rejected(self, ghba_proto):
        with pytest.raises(KeyError):
            ghba_proto.remove_node(999)


class TestShutdown:
    def test_context_manager_stops_threads(self, config):
        with PrototypeCluster(4, config, scheme="ghba") as proto:
            nodes = list(proto.nodes.values())
        for node in nodes:
            assert not node.is_alive()
