"""Gateway under fault injection: degraded answers never poison the cache.

The fault-gateway contract (ISSUE 3, satellite 3):

- while a :class:`FaultPlan` partitions a group mid-run, lookups may come
  back ``degraded=True`` — the gateway must return them but **never**
  install them as leases;
- ``gateway_shed_total`` reconciles exactly with the admission
  controller's shed counts, split by cause;
- once the partition heals, the gateway converges back to correct,
  cacheable answers with zero stale reads throughout.
"""

import pytest

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.faults import FaultPlan, Partition, PlanFaultInjector
from repro.gateway import GatewayConfig, MetadataClient, Outcome


def _config(seed=33):
    return GHBAConfig(
        max_group_size=4,
        expected_files_per_mds=200,
        lru_capacity=128,
        lru_filter_bits=1 << 10,
        seed=seed,
    )


def _partitioned_stack(start_s=1.0, end_s=3.0, **gateway_overrides):
    """8 servers; one whole group islanded during [start_s, end_s)."""
    plan = FaultPlan(
        seed=33,
        partitions=(
            Partition(start_s=start_s, end_s=end_s, island=frozenset({0, 1, 2, 3})),
        ),
    )
    faults = PlanFaultInjector(plan)
    cluster = GHBACluster(8, _config(), seed=33, faults=faults)
    paths = [f"/ft/d{i % 4}/f{i}" for i in range(240)]
    cluster.populate(paths)
    cluster.synchronize_replicas(force=True)
    defaults = dict(rate_per_s=1e6, burst=1e4, lease_ttl_s=10.0)
    defaults.update(gateway_overrides)
    gateway = MetadataClient(cluster, GatewayConfig(**defaults))
    return cluster, gateway, paths, faults


class TestDegradedNeverCached:
    def test_partition_window_answers_are_not_installed(self):
        cluster, gateway, paths, faults = _partitioned_stack()
        # Tick 0 (healthy): warm a few leases.
        warm = paths[:8]
        faults.advance(0.0)
        gateway.lookup_many(warm, now=0.0)

        # Mid-partition: query *fresh* paths so every answer needs the
        # fleet.  Cross-island multicast legs are lost => degraded.
        faults.advance(2.0)
        fresh = paths[100:180]
        degraded_paths = []
        for response in gateway.lookup_many(fresh, now=2.0):
            assert response.outcome.is_answer
            if response.degraded:
                degraded_paths.append(response.path)
                # The contract: a degraded answer is served, never cached.
                assert response.path not in gateway.cache
        assert degraded_paths, "partition produced no degraded answers"
        uncached = cluster.metrics.get("gateway_degraded_uncached_total")
        assert uncached.value == len(degraded_paths)

        # Healthy leases installed before the partition are untouched.
        for path in warm:
            assert path in gateway.cache

    def test_degraded_negatives_never_become_negative_leases(self):
        cluster, gateway, paths, faults = _partitioned_stack()
        faults.advance(2.0)
        for response in gateway.lookup_many(paths[100:180], now=2.0):
            if response.degraded and response.home_id is None:
                # A lost multicast looks like "not found" — caching that
                # as a negative lease would be a stale-read factory.
                assert response.path not in gateway.cache

    def test_convergence_after_heal(self):
        cluster, gateway, paths, faults = _partitioned_stack(end_s=3.0)
        faults.advance(2.0)
        gateway.lookup_many(paths[100:180], now=2.0)
        # Partition heals; the same paths re-resolve, cache, and agree
        # with cluster ground truth.
        faults.advance(5.0)
        responses = gateway.lookup_many(paths[100:180], now=5.0)
        for response in responses:
            assert not response.degraded
            assert response.home_id == cluster.home_of(response.path)
            if response.outcome in (Outcome.SERVED, Outcome.BATCHED):
                assert response.path in gateway.cache
        # And now they hit.
        again = gateway.lookup_many(paths[100:110], now=5.5)
        assert all(r.from_cache for r in again)

    def test_batch_to_silenced_server_degrades_and_falls_through(self):
        cluster, gateway, paths, faults = _partitioned_stack()
        target = paths[0]
        faults.advance(0.0)
        first = gateway.lookup(target, now=0.0)
        home = first.home_id
        assert home is not None
        faults.silence(home)
        outcome = cluster.verify_batch(home, [target])
        assert outcome.degraded and outcome.found == 0
        # Through the client: the expired lease predicts the silenced
        # home; the batch degrades and the path falls through to a full
        # walk rather than being dropped.
        response = gateway.lookup(target, now=20.0)  # lease expired
        assert response.outcome is Outcome.SERVED
        faults.restore(home)


class TestShedReconciliation:
    def test_gateway_shed_total_matches_admission_stats(self):
        cluster, gateway, paths, faults = _partitioned_stack(
            rate_per_s=100.0, burst=4.0, queue_capacity=6,
            queue_deadline_s=0.05,
        )
        rejected = 0
        answered = 0
        faults.advance(0.0)
        for tick in range(12):
            now = tick * 0.01  # offered load far above 100/s
            for response in gateway.lookup_many(paths[:10], now=now):
                if response.outcome is Outcome.REJECTED:
                    rejected += 1
                else:
                    answered += 1
        # Drain: everything still queued either admits or sheds.
        for response in gateway.pump(10.0):
            if response.outcome is Outcome.REJECTED:
                rejected += 1
            else:
                answered += 1
        stats = gateway.admission.stats
        assert gateway.admission.queue_depth == 0
        assert rejected == stats.shed > 0
        assert answered == stats.admitted
        assert stats.admitted + stats.shed == stats.submitted
        shed_family = cluster.metrics.get("gateway_shed_total")
        assert shed_family.total() == stats.shed
        assert shed_family.get("-", "queue_full") == stats.shed_full
        assert shed_family.get("-", "deadline") == stats.shed_deadline
        assert gateway.shed_total() == stats.shed


class TestDeterminismUnderFaults:
    def test_partitioned_replay_is_reproducible(self):
        def run():
            cluster, gateway, paths, faults = _partitioned_stack()
            trace = []
            for tick in range(8):
                now = tick * 0.5
                faults.advance(now)
                responses = gateway.lookup_many(
                    paths[tick * 20 : tick * 20 + 20], now=now
                )
                trace.extend(
                    (r.path, r.outcome.value, r.home_id, r.degraded)
                    for r in responses
                )
            return trace, gateway.backend_queries, gateway.hit_rate()

        assert run() == run()
