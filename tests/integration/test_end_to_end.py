"""Integration tests: whole-system behaviour across modules."""

import pytest

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.core.query import QueryLevel
from repro.metadata.attributes import FileMetadata
from repro.metadata.namespace import Namespace
from repro.traces.profiles import HP_PROFILE, RES_PROFILE
from repro.traces.records import MetadataOp
from repro.traces.scaling import intensify
from repro.traces.synthetic import SyntheticTraceGenerator, generate_trace


@pytest.fixture
def config():
    return GHBAConfig(
        max_group_size=4,
        expected_files_per_mds=512,
        lru_capacity=256,
        lru_filter_bits=1 << 11,
        update_threshold_bits=48,
        seed=13,
    )


class TestTraceDrivenReplay:
    def test_replay_resolves_every_known_path(self, config):
        """Full pipeline: generator -> TIF -> cluster -> queries."""
        cluster = GHBACluster(12, config, seed=13)
        base = generate_trace(HP_PROFILE, 300, 600, seed=13)
        records = intensify(base, 2)
        generator_paths = {r.path for r in records}
        placement = cluster.populate(sorted(generator_paths))
        cluster.synchronize_replicas(force=True)
        checked = 0
        for record in records[::5]:
            if record.op is MetadataOp.RENAME:
                continue
            result = cluster.query(record.path)
            assert result.found
            assert result.home_id == placement[record.path]
            checked += 1
        assert checked > 100

    def test_locality_drives_l1_dominance(self, config):
        """A skewed repeat-heavy stream must be served mostly by L1."""
        cluster = GHBACluster(8, config, seed=3)
        generator = SyntheticTraceGenerator(RES_PROFILE, 200, seed=3)
        placement = cluster.populate(generator.paths)
        cluster.synchronize_replicas(force=True)
        for record in generator.generate(4_000):
            if record.path in placement:
                cluster.query(record.path)
        fractions = cluster.level_fractions()
        assert fractions.get("L1", 0.0) > 0.4
        assert fractions.get("L1", 0.0) + fractions.get("L2", 0.0) + (
            fractions.get("L3", 0.0)
        ) > 0.95


class TestNamespaceBackedCluster:
    def test_namespace_as_source_of_truth(self, config):
        """Build MDS content from a real namespace tree; rename and verify
        the metadata moves follow."""
        ns = Namespace()
        for i in range(60):
            ns.ensure_file(f"/proj/src/mod{i % 5}/file{i}.c")
        cluster = GHBACluster(6, config, seed=1)
        placement = {}
        for meta in ns.files():
            placement[meta.path] = cluster.insert_file(meta)
        cluster.synchronize_replicas(force=True)
        for path, home in list(placement.items())[:20]:
            assert cluster.query(path).home_id == home
        # Rename a directory in the namespace: old paths disappear from the
        # namespace; the metadata servers must be updated by re-inserting.
        moved = ns.rename("/proj/src/mod0", "/proj/src/renamed")
        assert moved > 1
        for meta in ns.files():
            if meta.path.startswith("/proj/src/renamed"):
                assert not cluster.query(meta.path).found or True


class TestMemoryPressureEffect:
    def test_hba_slower_than_ghba_under_pressure(self):
        """The Figure 8 mechanism end to end at miniature scale."""
        import dataclasses

        from repro.baselines.hba import HBACluster

        base = GHBAConfig(
            max_group_size=4,
            expected_files_per_mds=512,
            lru_capacity=64,
            lru_filter_bits=512,
            memory_mode="proportional",
            seed=2,
        )
        n = 12
        paths = [f"/mem/f{i}" for i in range(400)]
        # Measure HBA's unconstrained working set, then give both schemes
        # 60% of it — the regime where HBA's replica array spills but
        # G-HBA's (theta ~ N/M times smaller) largely fits.
        probe = HBACluster(n, base, seed=2)
        probe.populate(paths)
        working_set = sum(
            server.memory.total_bytes for server in probe.servers.values()
        ) / n
        config = dataclasses.replace(
            base, memory_budget_bytes=int(working_set * 0.6)
        )
        results = {}
        for name, cluster in (
            ("ghba", GHBACluster(n, config, seed=2)),
            ("hba", HBACluster(n, config, seed=2)),
        ):
            cluster.populate(paths)
            cluster.synchronize_replicas(force=True)
            for path in paths:
                cluster.query(path)
            results[name] = cluster.latency.mean
        assert results["hba"] > results["ghba"]


class TestDynamicWorkflow:
    def test_growth_then_shrink_under_traffic(self, config):
        """Interleave queries with reconfiguration, always correct."""
        cluster = GHBACluster(6, config, seed=4)
        paths = [f"/mix/f{i}" for i in range(200)]
        placement = cluster.populate(paths)
        cluster.synchronize_replicas(force=True)
        for round_index in range(3):
            cluster.add_server()
            for path in paths[::17]:
                assert cluster.query(path).home_id == placement[path]
            cluster.check_invariants()
        for round_index in range(3):
            victims = [
                sid for sid in cluster.server_ids()
            ]
            cluster.remove_server(victims[round_index])
            cluster.synchronize_replicas(force=True)
            for path in paths[::17]:
                result = cluster.query(path)
                assert result.found
            cluster.check_invariants()

    def test_new_files_after_growth_are_routable(self, config):
        cluster = GHBACluster(6, config, seed=5)
        cluster.populate(f"/old/f{i}" for i in range(100))
        cluster.synchronize_replicas(force=True)
        report = cluster.add_server()
        newcomer = report.server_id
        cluster.insert_file(
            FileMetadata(path="/new/on-newcomer", inode=1), home_id=newcomer
        )
        cluster.synchronize_replicas(force=True)
        result = cluster.query("/new/on-newcomer")
        assert result.home_id == newcomer
