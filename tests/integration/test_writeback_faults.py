"""Fault-path integration tests for write-back flushing (ISSUE 5).

At-most-once MUTATE_BATCH application under the prototype's lossy
transport (drops, duplicated retries, out-of-order first deliveries),
durable dedup across a node crash/restore, explicit loss at the barrier
on the GHBA simulation side, and bit-identical ``gateway_writeback_*``
counters for identical seed + fault plan (the determinism contract every
other layer of this repo honors).
"""

import pytest

from repro.core.config import GHBAConfig
from repro.core.cluster import GHBACluster
from repro.faults import FaultPlan, PlanFaultInjector
from repro.gateway import GatewayConfig, MetadataClient
from repro.metadata.attributes import FileMetadata
from repro.prototype.cluster import PrototypeCluster


@pytest.fixture
def config():
    return GHBAConfig(
        max_group_size=4,
        expected_files_per_mds=256,
        lru_capacity=64,
        lru_filter_bits=512,
        seed=21,
    )


def _mutation(version, op, path, inode=0):
    entry = {"version": version, "op": op, "path": path}
    if op == "create":
        entry["record"] = FileMetadata(path=path, inode=inode)
    return entry


class TestPrototypeAtMostOnce:
    def test_duplicate_batch_dedups(self, config):
        with PrototypeCluster(4, config, scheme="ghba", seed=21) as proto:
            node_id = proto.node_ids()[0]
            server = proto.nodes[node_id].server
            batch = [_mutation(1, "create", "/wb/once", inode=1)]
            first = proto.apply_mutation_batch(node_id, batch, origin=7)
            assert not first["degraded"]
            assert [o["deduped"] for o in first["outcomes"]] == [False]
            applied_before = server.writeback_applied
            # The transport's retry policy re-sends the identical batch.
            again = proto.apply_mutation_batch(node_id, batch, origin=7)
            assert [o["deduped"] for o in again["outcomes"]] == [True]
            assert server.writeback_applied == applied_before
            assert server.store.get("/wb/once") is not None

    def test_out_of_order_first_delivery_applies(self, config):
        """Regression: gateway versions are global, so a home can see a
        *higher* version before a lower one it has never seen.  The lower
        version is a first delivery, not a retry — it must apply."""
        with PrototypeCluster(4, config, scheme="ghba", seed=21) as proto:
            node_id = proto.node_ids()[0]
            server = proto.nodes[node_id].server
            high = proto.apply_mutation_batch(
                node_id, [_mutation(15, "create", "/wb/high", inode=2)],
                origin=7,
            )
            assert [o["deduped"] for o in high["outcomes"]] == [False]
            low = proto.apply_mutation_batch(
                node_id, [_mutation(6, "create", "/wb/low", inode=3)],
                origin=7,
            )
            assert [o["deduped"] for o in low["outcomes"]] == [False]
            assert server.store.get("/wb/low") is not None
            assert server.writeback_applied == 2

    def test_cumulative_ack_floor_prunes_and_dedups(self, config):
        with PrototypeCluster(4, config, scheme="ghba", seed=21) as proto:
            node_id = proto.node_ids()[0]
            server = proto.nodes[node_id].server
            proto.apply_mutation_batch(
                node_id, [_mutation(2, "create", "/wb/a", inode=4)], origin=7
            )
            # The client's floor reached 2: the cache entry is pruned but
            # a stray re-delivery of v2 still dedups via the floor.
            late = proto.apply_mutation_batch(
                node_id,
                [_mutation(2, "create", "/wb/a", inode=4)],
                origin=7,
                acked_version=2,
            )
            assert [o["deduped"] for o in late["outcomes"]] == [True]
            assert server.writeback_applied == 1
            assert server.writeback_outcomes.get(7) == {}

    def test_dedup_survives_crash_restore(self, config):
        """The floor and outcome cache ride the checkpoint: a node
        restored from disk must refuse to re-apply a retried batch it
        absorbed before crashing."""
        with PrototypeCluster(4, config, scheme="ghba", seed=21) as proto:
            node_id = proto.node_ids()[0]
            batch = [
                _mutation(3, "create", "/wb/durable", inode=5),
                _mutation(4, "delete", "/wb/durable-gone"),
            ]
            proto.apply_mutation_batch(node_id, batch, origin=9)
            proto.crash_node(node_id)
            proto.restore_node(node_id)
            server = proto.nodes[node_id].server
            assert server.store.get("/wb/durable") is not None
            retry = proto.apply_mutation_batch(node_id, batch, origin=9)
            assert [o["deduped"] for o in retry["outcomes"]] == [True, True]
            assert server.writeback_applied == 0  # nothing re-applied

    def test_lossy_transport_applies_exactly_once(self, config):
        """Under a dropping/duplicating schedule, retrying the identical
        batch until it acks yields exactly one application."""
        with PrototypeCluster(4, config, scheme="ghba", seed=21) as proto:
            plan = FaultPlan(
                seed=33, drop_rate=0.3, duplicate_rate=0.2, partitions=()
            )
            proto.transport.injector = PlanFaultInjector(plan)
            node_id = proto.node_ids()[1]
            server = proto.nodes[node_id].server
            batch = [_mutation(1, "create", "/wb/lossy", inode=6)]
            acked = False
            for attempt in range(12):
                result = proto.apply_mutation_batch(node_id, batch, origin=3)
                if not result["degraded"]:
                    acked = True
                    break
            assert acked, "batch never acked within the retry budget"
            assert server.writeback_applied == 1
            assert server.store.get("/wb/lossy") is not None


def _run_ghba_fault_scenario():
    """One deterministic write-back run under a silence window; returns
    the final ``gateway_writeback_*`` counter series."""
    injector = PlanFaultInjector(FaultPlan(seed=11))
    config = GHBAConfig(
        max_group_size=4,
        expected_files_per_mds=200,
        lru_capacity=128,
        lru_filter_bits=1 << 10,
        seed=11,
    )
    cluster = GHBACluster(5, config, seed=11, faults=injector)
    cluster.populate([f"/g/f{i}" for i in range(50)])
    cluster.synchronize_replicas(force=True)
    client = MetadataClient(
        cluster,
        GatewayConfig(
            rate_per_s=1e6,
            burst=1e4,
            lease_ttl_s=30.0,
            writeback=True,
            flush_max_pending=3,
            flush_age_s=0.2,
            flush_retry_limit=2,
            flush_retry_backoff_s=0.1,
            writeback_seed=11,
        ),
    )
    for i in range(6):
        client.create(f"/g/new{i}", now=0.05 * i, home_id=i % 5)
    injector.silence(2)
    for i in range(6, 12):
        client.create(f"/g/new{i}", now=0.05 * i, home_id=2)
    client.delete("/g/f0", now=0.7)
    injector.restore(2)
    client.flush_barrier(now=1.0)
    injector.silence(3)
    client.create("/g/doomed", now=1.1, home_id=3)
    client.flush_barrier(now=1.2)  # declares the loss explicitly
    snapshot = client.metrics.snapshot()
    counters = {
        name: family["series"]
        for name, family in snapshot.items()
        if name.startswith("gateway_writeback_")
    }
    fleet = {
        meta.path
        for server in cluster.servers.values()
        for meta in server.store.records()
    }
    return counters, fleet, [m.path for m in client.lost_mutations]


class TestGHBAFaultDeterminism:
    def test_losses_are_explicit_not_silent(self):
        counters, fleet, lost = _run_ghba_fault_scenario()
        assert lost == ["/g/doomed"]
        assert "/g/doomed" not in fleet
        assert counters["gateway_writeback_lost_total"][""] == 1.0
        # The silenced-window mutations retried to ack after recovery.
        for i in range(12):
            assert f"/g/new{i}" in fleet
        assert "/g/f0" not in fleet

    def test_counters_bit_identical_for_same_seed_and_plan(self):
        first, fleet_a, lost_a = _run_ghba_fault_scenario()
        second, fleet_b, lost_b = _run_ghba_fault_scenario()
        assert first == second
        assert fleet_a == fleet_b
        assert lost_a == lost_b
