"""Determinism: identical seeds must reproduce identical runs bit-for-bit.

Every experiment in EXPERIMENTS.md claims reproducibility from its seed;
these tests pin that property for the main moving parts.
"""

import pytest

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.experiments import fig11, fig12, table05
from repro.traces.profiles import HP_PROFILE
from repro.traces.synthetic import generate_trace


def _replay_run(seed):
    config = GHBAConfig(
        max_group_size=4,
        expected_files_per_mds=256,
        lru_capacity=64,
        lru_filter_bits=512,
        seed=seed,
    )
    cluster = GHBACluster(8, config, seed=seed)
    records = generate_trace(HP_PROFILE, 300, 1_500, seed=seed)
    placement = cluster.populate(sorted({r.path for r in records}))
    cluster.synchronize_replicas(force=True)
    outcomes = []
    for record in records:
        if record.path in placement:
            result = cluster.query(record.path)
            outcomes.append(
                (record.path, result.home_id, result.level.name,
                 round(result.latency_ms, 9), result.messages)
            )
    return outcomes, cluster.level_counter.as_dict()


class TestDeterminism:
    def test_trace_replay_identical_across_runs(self):
        first = _replay_run(seed=11)
        second = _replay_run(seed=11)
        assert first == second

    def test_different_seeds_differ(self):
        first, _ = _replay_run(seed=11)
        second, _ = _replay_run(seed=12)
        assert first != second

    def test_fig11_experiment_deterministic(self):
        a = fig11.run(server_counts=(20, 40)).rows
        b = fig11.run(server_counts=(20, 40)).rows
        assert a == b

    def test_fig12_experiment_deterministic(self):
        a = fig12.run(configs=(("HP", 20, 5),), num_updates=10).rows
        b = fig12.run(configs=(("HP", 20, 5),), num_updates=10).rows
        assert a == b

    def test_table05_experiment_deterministic(self):
        a = table05.run(server_counts=(20,), files_per_server=500).rows
        b = table05.run(server_counts=(20,), files_per_server=500).rows
        assert a == b

    def test_reconfiguration_deterministic(self):
        def churn(seed):
            config = GHBAConfig(
                max_group_size=3,
                expected_files_per_mds=64,
                lru_capacity=8,
                lru_filter_bits=64,
                seed=seed,
            )
            cluster = GHBACluster(6, config, seed=seed)
            log = []
            for _ in range(4):
                report = cluster.add_server()
                log.append(
                    (report.server_id, report.migrated_replicas,
                     report.messages, report.split)
                )
            for _ in range(3):
                victim = cluster.server_ids()[0]
                report = cluster.remove_server(victim)
                log.append(
                    (victim, report.migrated_replicas, report.messages,
                     report.merged)
                )
            return log

        assert churn(5) == churn(5)
