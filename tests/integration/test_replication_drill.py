"""Integration tests for cross-cluster replication (ISSUE 8).

The full drill (kill + promote + audit + redirect) in-process, standby
crash/restore durability through the checkpoint file, the MUTATE_BATCH
CDC hook on the prototype node, and the TCP smoke: the same protocol
over real localhost sockets.
"""

from __future__ import annotations

import argparse
import json

import pytest

from repro.metadata.attributes import FileMetadata
from repro.net.tcp import PortMap, TcpTransport
from repro.obs.registry import MetricsRegistry
from repro.prototype.transport import InProcessTransport
from repro.replication import (
    ChangeCapture,
    ReplicationShipper,
    StandbyEndpoint,
    StandbyNode,
    promote_standby,
)
from repro.replication.audit import diff_states, snapshot_state
from repro.replication.drill import run_drill


def _drill_args(**overrides):
    base = dict(
        transport="inproc",
        servers=3,
        files=120,
        ops=400,
        seed=11,
        dirs=6,
        kill_at=0.7,
        ship_every=16,
        batch_max=64,
        rate=500.0,
        chaos=False,
        redirect_ops=120,
        rpo_bound=-1,
        standby_checkpoint=None,
        json=None,
    )
    base.update(overrides)
    return argparse.Namespace(**base)


class TestDrillEndToEnd:
    def test_inproc_drill_passes(self, capsys, tmp_path):
        out_json = tmp_path / "bench.json"
        code = run_drill(_drill_args(json=str(out_json)))
        captured = capsys.readouterr().out
        assert code == 0
        assert "PASS" in captured
        assert "fenced=True" in captured
        document = json.loads(out_json.read_text())
        stats = document["replication"]
        assert stats["divergences"] == 0
        assert stats["lost_acked"] == 0
        assert stats["fenced_ok"] is True
        assert stats["redirect"]["mismatches"] == 0
        assert "_meta" in document

    def test_chaos_drill_still_zero_divergence(self, capsys):
        code = run_drill(_drill_args(chaos=True, seed=23))
        captured = capsys.readouterr().out
        assert code == 0
        assert "divergences=0 lost_acked=0" in captured

    def test_rpo_bound_enforced(self, capsys):
        # An impossible bound must flip the exit code, proving the gate
        # is wired to the measured RPO and not vacuous.
        args = _drill_args(ship_every=10_000, rpo_bound=0)
        code = run_drill(args)
        captured = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in captured


class TestStandbyCrashRestore:
    def test_restart_from_checkpoint_dedups_replays(self, tmp_path):
        """Kill the standby thread after an ack, restart it from its
        durable checkpoint, and replay the same batch: the restored
        endpoint must treat it as duplicates (persist-before-ack)."""
        from repro.core.cluster import GHBACluster
        from repro.core.config import GHBAConfig

        config = GHBAConfig(
            max_group_size=4, expected_files_per_mds=256,
            lru_capacity=64, lru_filter_bits=1 << 10, seed=7,
        )
        primary = GHBACluster(3, config, seed=7)
        primary.populate([f"/cr/d{i % 3}/f{i}" for i in range(30)])
        primary.synchronize_replicas(force=True)
        capture = ChangeCapture(keep_history=True)
        capture.attach(primary)

        ckpt = tmp_path / "standby.json"
        transport = InProcessTransport(default_timeout_s=5.0)
        node = StandbyNode(60, transport, checkpoint_path=str(ckpt))
        node.start()
        shipper = ReplicationShipper(capture, transport, 60, epoch=1)
        assert shipper.sync()["ok"]

        homes = set()
        for i in range(12):
            homes.add(
                primary.insert_file(
                    FileMetadata(path=f"/cr/new{i}", inode=400 + i)
                )
            )
        report = shipper.ship(now=1.0)
        assert report.acked_entries == 12
        floors_before = dict(node.endpoint.floors)
        node.stop()

        # Crash + restart: a fresh endpoint from the durable file.
        endpoint = StandbyEndpoint.load(
            ckpt, node_id=60, checkpoint_path=str(ckpt)
        )
        assert endpoint.floors == floors_before
        node2 = StandbyNode(60, transport, endpoint=endpoint)
        node2.start()
        try:
            # Replay the entire acked history: all duplicates.
            replayed = 0
            for home in homes:
                entries = [
                    e for e in capture.history if e.home_id == home
                ]
                from repro.replication.cdc import entry_to_wire
                from repro.prototype.messages import Message, MessageKind

                reply = transport.request(
                    60,
                    Message(
                        kind=MessageKind.REPL_SHIP,
                        sender=-50,
                        payload={
                            "home": home,
                            "epoch": 1,
                            "acked": 0,
                            "entries": [
                                entry_to_wire(e) for e in entries
                            ],
                        },
                    ),
                )
                assert reply.payload["applied"] == 0
                replayed += reply.payload["duplicates"]
            assert replayed == 12
            assert diff_states(
                snapshot_state(primary),
                snapshot_state(node2.endpoint.cluster),
            ) == []
        finally:
            node2.stop()


class TestPrototypeCdcHook:
    def test_mutate_batch_feeds_capture(self):
        """The MDSNode cdc hook captures exactly the applied mutations
        of a MUTATE_BATCH (arbitration-rejected ones never ship)."""
        from repro.core.config import GHBAConfig
        from repro.prototype.messages import Message, MessageKind
        from repro.prototype.node import MDSNode

        config = GHBAConfig(expected_files_per_mds=256, lru_capacity=64)
        transport = InProcessTransport(default_timeout_s=5.0)
        node = MDSNode(0, config, transport)
        capture = ChangeCapture()
        node.cdc = lambda op, path, record, vtime: capture.capture(
            op, path, home_id=0, record=record, vtime=vtime
        )
        node.start()
        try:
            meta = FileMetadata(path="/proto/a", inode=5)
            reply = transport.request(
                0,
                Message(
                    kind=MessageKind.MUTATE_BATCH,
                    sender=-9,
                    payload={
                        "origin": -9,
                        "acked": 0,
                        "mutations": [
                            {
                                "version": 1,
                                "op": "create",
                                "path": "/proto/a",
                                "record": meta,
                            },
                            {
                                "version": 2,
                                "op": "delete",
                                "path": "/proto/missing",
                                "record": None,
                            },
                        ],
                    },
                ),
            )
            outcomes = reply.payload["outcomes"]
            changed = [o for o in outcomes if o["changed"]]
            assert len(changed) == 1  # the no-op delete never applied
            ops = [(e.op, e.path) for e in capture.logs.get(0, [])]
            assert ops == [("create", "/proto/a")]
        finally:
            node.stop()


class TestTcpReplication:
    def test_ship_and_promote_over_sockets(self):
        portmap = PortMap.reserve([70])
        serve = TcpTransport(portmap, default_timeout_s=5.0)
        client = TcpTransport(portmap, default_timeout_s=5.0)
        node = StandbyNode(70, serve)
        node.start()
        try:
            from repro.core.cluster import GHBACluster
            from repro.core.config import GHBAConfig

            config = GHBAConfig(
                max_group_size=4, expected_files_per_mds=256,
                lru_capacity=64, lru_filter_bits=1 << 10, seed=3,
            )
            primary = GHBACluster(2, config, seed=3)
            primary.populate([f"/tcp/f{i}" for i in range(20)])
            primary.synchronize_replicas(force=True)
            capture = ChangeCapture(keep_history=True)
            capture.attach(primary)
            shipper = ReplicationShipper(capture, client, 70, epoch=1)
            assert shipper.sync()["ok"]
            for i in range(8):
                primary.insert_file(
                    FileMetadata(path=f"/tcp/new{i}", inode=500 + i)
                )
            report = shipper.ship(now=1.0)
            assert report.acked_entries == 8
            assert diff_states(
                snapshot_state(primary),
                snapshot_state(node.endpoint.cluster),
            ) == []
            promo = promote_standby(client, 70)
            assert promo["promoted"] is True
            primary.insert_file(FileMetadata(path="/tcp/late", inode=9))
            late = shipper.ship(now=2.0)
            assert late.fenced == 1
            assert node.endpoint.cluster.home_of("/tcp/late") is None
        finally:
            node.stop()
            serve.close()
            client.close()

    def test_tcp_drill_passes(self, capsys):
        code = run_drill(
            _drill_args(
                transport="tcp", files=80, ops=240, redirect_ops=80,
                seed=5,
            )
        )
        captured = capsys.readouterr().out
        assert code == 0
        assert "PASS" in captured
