"""Integration: the full trace pipeline through files.

generate (CLI) → intensify (CLI) → load from disk → replay against a live
cluster — the workflow a user following the README would run.
"""

import pytest

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.traces.__main__ import main as traces_main
from repro.traces.io import read_trace
from repro.traces.records import MetadataOp
from repro.traces.workloads import compute_stats


@pytest.fixture
def trace_file(tmp_path):
    base = tmp_path / "base.trace"
    scaled = tmp_path / "scaled.trace"
    assert traces_main(
        [
            "generate", "--profile", "INS", "--files", "300",
            "--ops", "1500", "--seed", "4", "--out", str(base),
        ]
    ) == 0
    assert traces_main(
        ["intensify", "--tif", "2", "--in", str(base), "--out", str(scaled)]
    ) == 0
    return scaled


class TestFileDrivenReplay:
    def test_replay_from_disk(self, trace_file):
        records = read_trace(trace_file)
        stats = compute_stats(records)
        assert stats.total_ops == 3_000
        assert stats.num_subtraces == 2

        config = GHBAConfig(
            max_group_size=4,
            expected_files_per_mds=256,
            lru_capacity=128,
            lru_filter_bits=1 << 10,
            seed=4,
        )
        cluster = GHBACluster(8, config, seed=4)
        placement = cluster.populate(sorted(stats.files))
        cluster.synchronize_replicas(force=True)
        resolved = 0
        for record in records:
            if record.op is MetadataOp.RENAME:
                continue
            result = cluster.query(record.path)
            assert result.found, record.path
            assert result.home_id == placement[record.path]
            resolved += 1
        assert resolved > 2_000
        # Locality carried through the file round trip: L1 dominates.
        fractions = cluster.level_fractions()
        assert fractions.get("L1", 0.0) > 0.3

    def test_subtraces_replay_onto_disjoint_namespaces(self, trace_file):
        records = read_trace(trace_file)
        base_paths = {r.path for r in records if r.subtrace == 0}
        scaled_paths = {r.path for r in records if r.subtrace == 1}
        assert base_paths and scaled_paths
        assert not (base_paths & scaled_paths)
