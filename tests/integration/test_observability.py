"""Integration tests: tracing and metrics against live clusters.

The central contract (DESIGN.md §7): a traced span reconstructs the exact
level path of its query, and its per-hop attributions sum to the
:class:`~repro.core.query.QueryResult` totals.
"""

import subprocess
import sys

import pytest

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.obs.export import prometheus_exposition
from repro.obs.report import render_report, server_hotspots
from repro.obs.trace import NULL_TRACER, CollectingTracer
from repro.prototype.cluster import PrototypeCluster

#: Resolution level -> the level walk the span must reconstruct.
EXPECTED_WALKS = {
    "L1": ["L1"],
    "L2": ["L1", "L2"],
    "L3": ["L1", "L2", "L3"],
    "L4": ["L1", "L2", "L3", "L4"],
    "L4-negative": ["L1", "L2", "L3", "L4"],
}


def _config(seed=7):
    return GHBAConfig(
        max_group_size=4,
        bits_per_file=16.0,
        expected_files_per_mds=512,
        lru_capacity=128,
        lru_filter_bits=1 << 10,
        lru_num_hashes=4,
        update_threshold_bits=32,
        seed=seed,
    )


@pytest.fixture
def traced_run():
    """A traced mixed workload: (cluster, tracer, ordered QueryResults)."""
    tracer = CollectingTracer()
    cluster = GHBACluster(10, _config(), seed=7, tracer=tracer)
    paths = [f"/fs/dir{i % 6}/file{i}" for i in range(600)]
    placement = cluster.populate(paths)
    cluster.synchronize_replicas(force=True)
    results = []
    for index, path in enumerate(paths[:120]):
        results.append(cluster.query(path))
        if index % 10 == 0:  # misses exercise the L4-negative walk
            results.append(cluster.query(f"/fs/missing/{index}"))
    for path in paths[:20]:  # repeats from one origin hit the warm L1
        results.append(cluster.query(path, origin_id=0))
        results.append(cluster.query(path, origin_id=0))
    return cluster, tracer, results, placement


class TestTracedQueries:
    def test_span_per_query_in_order(self, traced_run):
        _, tracer, results, _ = traced_run
        spans = tracer.finished_spans()
        assert len(spans) == len(results)
        assert [s.path for s in spans] == [r.path for r in results]

    def test_span_totals_reconcile_with_query_results(self, traced_run):
        _, tracer, results, _ = traced_run
        for span, result in zip(tracer.finished_spans(), results):
            assert span.level == result.level.label
            assert span.home_id == result.home_id
            assert span.origin_id == result.origin_id
            assert span.messages == result.messages
            assert span.false_forwards == result.false_forwards
            assert span.total_event_messages() == result.messages
            assert span.latency_ms == pytest.approx(result.latency_ms)
            assert span.total_event_latency_ms() == pytest.approx(
                result.latency_ms
            )

    def test_level_path_reconstructs_walk(self, traced_run):
        _, tracer, results, _ = traced_run
        for span, result in zip(tracer.finished_spans(), results):
            assert span.level_path() == EXPECTED_WALKS[result.level.label]

    def test_l3_query_emits_expected_hop_sequence(self, traced_run):
        _, tracer, results, _ = traced_run
        l3_clean = [
            span
            for span, result in zip(tracer.finished_spans(), results)
            if result.level.label == "L3" and result.false_forwards == 0
        ]
        assert l3_clean, "workload produced no clean L3 query"
        for span in l3_clean:
            assert [e.kind for e in span.events] == [
                "l1_probe",
                "l2_probe",
                "group_multicast",
                "forward",
                "verify",
            ]
            multicast = span.events[2]
            # The multicast hop owns the group fan-out messages.
            assert multicast.target is not None
            assert multicast.messages >= 2
            forward = span.events[3]
            assert forward.target == span.home_id
            assert forward.messages == 2

    def test_all_levels_exercised(self, traced_run):
        _, tracer, results, _ = traced_run
        levels = {r.level.label for r in results}
        assert {"L1", "L3", "L4-negative"} <= levels

    def test_null_tracer_collects_nothing(self):
        cluster = GHBACluster(6, _config(), seed=3)
        assert cluster.tracer is NULL_TRACER
        placement = cluster.populate(f"/fs/f{i}" for i in range(100))
        cluster.synchronize_replicas(force=True)
        result = cluster.query(next(iter(placement)))
        assert result.found


class TestMetricsIntegration:
    def test_per_level_counters_match_results(self, traced_run):
        cluster, _, results, _ = traced_run
        by_level = {}
        for result in results:
            label = result.level.label
            by_level[label] = by_level.get(label, 0) + 1
        assert cluster.level_counter.as_dict() == by_level
        assert cluster.total_messages == sum(r.messages for r in results)
        assert cluster.total_false_forwards == sum(
            r.false_forwards for r in results
        )

    def test_server_attribution_sums(self, traced_run):
        cluster, _, results, _ = traced_run
        served = cluster.metrics.get("ghba_server_queries_served_total")
        found = [r for r in results if r.found]
        assert served.total() == len(found)
        origin = cluster.metrics.get("ghba_server_origin_queries_total")
        assert origin.total() == len(results)

    def test_refresh_gauges_reflects_structure(self, traced_run):
        cluster, _, _, _ = traced_run
        cluster.refresh_gauges()
        assert cluster.metrics.get("ghba_servers").value == cluster.num_servers
        assert cluster.metrics.get("ghba_groups").value == cluster.num_groups
        files = cluster.metrics.get("ghba_server_files")
        assert len(files) == cluster.num_servers
        total = sum(child.value for _, child in files.children())
        assert total == sum(s.file_count for s in cluster.servers.values())

    def test_refresh_gauges_prunes_departed_server(self, traced_run):
        cluster, _, _, _ = traced_run
        cluster.refresh_gauges()
        victim = cluster.server_ids()[-1]
        cluster.remove_server(victim)
        cluster.refresh_gauges()
        files = cluster.metrics.get("ghba_server_files")
        assert len(files) == cluster.num_servers
        assert (str(victim),) not in dict(files.children())

    def test_exposition_covers_the_stack(self, traced_run):
        cluster, _, _, _ = traced_run
        cluster.refresh_gauges()
        text = prometheus_exposition(cluster.metrics)
        for family in (
            "ghba_queries_total",
            "ghba_query_latency_ms_bucket",
            "ghba_server_queries_served_total",
            "ghba_server_probes_total",
            "ghba_group_multicasts_total",
            "ghba_server_stale_bits",
        ):
            assert family in text

    def test_hotspot_and_report_render(self, traced_run):
        cluster, _, _, _ = traced_run
        hotspots = server_hotspots(cluster)
        assert hotspots
        assert sum(h.queries_served for h in hotspots) > 0
        shares = [h.query_share for h in hotspots]
        assert shares == sorted(shares, reverse=True)
        text = render_report(cluster, top=3)
        assert "health summary" in text
        assert "hotspots: servers" in text
        assert "hotspots: groups" in text


class TestPrototypeTracing:
    def test_prototype_spans_reconcile(self):
        tracer = CollectingTracer()
        with PrototypeCluster(
            8, _config(seed=3), scheme="ghba", seed=3, tracer=tracer
        ) as proto:
            paths = [f"/fs/d{i % 4}/f{i}" for i in range(60)]
            proto.populate(paths)
            outcomes = [proto.lookup(path) for path in paths[:30]]
        spans = tracer.finished_spans()
        assert len(spans) == len(outcomes)
        for span, outcome in zip(spans, outcomes):
            assert span.level == outcome.level.label
            assert span.home_id == outcome.home_id
            assert span.latency_ms == pytest.approx(
                outcome.virtual_latency_ms
            )
            assert span.total_event_latency_ms() == pytest.approx(
                outcome.virtual_latency_ms
            )
            assert span.total_event_messages() == span.messages
            assert span.level_path() == EXPECTED_WALKS[outcome.level.label]


class TestObsCli:
    def test_report_command(self, tmp_path):
        trace_out = tmp_path / "spans.jsonl"
        prom_out = tmp_path / "metrics.prom"
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro.obs",
                "report",
                "--servers", "10",
                "--files", "300",
                "--ops", "400",
                "--top", "3",
                "--trace-out", str(trace_out),
                "--prom-out", str(prom_out),
            ],
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert "hotspots: servers" in result.stdout
        assert "wrote" in result.stdout
        assert trace_out.exists() and trace_out.stat().st_size > 0
        assert "# TYPE ghba_queries_total counter" in prom_out.read_text()
