"""Smoke tests: every example script runs cleanly.

Examples are the repo's front door; they must never rot.  Each runs in a
subprocess (argument-reduced where the script supports it) and must exit 0
with its signature output present.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "invariants hold" in out
        assert "expected L1" in out

    def test_trace_replay_reduced(self):
        out = run_example(
            "trace_replay.py", "--ops", "4000", "--files", "1000", "--tif", "2"
        )
        assert "G-HBA:" in out and "HBA:" in out
        assert "mean latency" in out

    def test_cluster_reconfiguration(self):
        out = run_example("cluster_reconfiguration.py")
        assert "graceful degradation" in out
        assert "SPLIT" in out or "join" in out
        assert "MERGE" in out or "leave" in out

    def test_prototype_demo(self):
        out = run_example("prototype_demo.py")
        assert "misroutes:      0" in out
        assert "adding 3 nodes live" in out

    def test_optimal_group_size(self):
        out = run_example("optimal_group_size.py", "--servers", "30")
        assert "optimal M = 6" in out
        assert "Gamma" in out

    def test_operational_tour(self):
        out = run_example("operational_tour.py")
        assert "health summary" in out
        assert "after recovery" in out and "found=True" in out
        assert "restored cluster resolves" in out

    def test_chaos_tour(self):
        out = run_example("chaos_tour.py")
        assert "degraded=True" in out
        assert "verdict: PASS" in out
        assert "retry reconciliation" in out and "-> ok" in out
        assert "chaos tour complete" in out

    def test_observability_tour(self):
        out = run_example("observability_tour.py")
        assert "traced" in out and "queries" in out
        assert "deepest walk" in out
        assert "hotspots: servers" in out
        assert "# TYPE ghba_queries_total counter" in out
        assert "ghba_messages_total series" in out
