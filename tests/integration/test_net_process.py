"""Process-level smoke for the TCP substrate (excluded from tier-1).

These tests launch real ``python -m repro.net serve`` OS processes via
:class:`~repro.net.supervisor.ProcessSupervisor` and talk to them over
real sockets: fleet bring-up, graceful STOP, and the SIGKILL
crash/restart drill where the replacement process resumes from a
``--checkpoint`` document instead of an empty store.
"""

import pytest

from repro.core.checkpoint import snapshot_server
from repro.core.config import GHBAConfig
from repro.core.server import MetadataServer
from repro.metadata.attributes import FileMetadata
from repro.net.supervisor import (
    ProcessSupervisor,
    config_from_dict,
    config_to_dict,
)
from repro.net.tcp import PortMap, TcpTransport
from repro.prototype.messages import Message, MessageKind

pytestmark = pytest.mark.slow


def _config():
    return GHBAConfig(expected_files_per_mds=512, lru_capacity=64)


def _driver(portmap):
    return TcpTransport(
        portmap, default_timeout_s=5.0, connect_attempts=5
    )


class TestProcessSupervisor:
    def test_fleet_round_trip_and_graceful_stop(self, tmp_path):
        config = _config()
        portmap = PortMap.reserve([0, 1])
        with ProcessSupervisor(portmap, config, tmp_path) as sup:
            for node_id in (0, 1):
                sup.launch_mds(node_id)
            driver = _driver(portmap)
            try:
                sup.wait_ready(driver, [0, 1])
                ack = driver.request(
                    0,
                    Message(
                        kind=MessageKind.INSERT,
                        sender=-1,
                        payload={"meta": FileMetadata("/proc/a", inode=1)},
                    ),
                )
                assert ack.payload["ok"] is True
                verify = driver.request(
                    0,
                    Message(
                        kind=MessageKind.VERIFY,
                        sender=-1,
                        payload={"path": "/proc/a"},
                    ),
                )
                assert verify.payload["found"] is True
                # Graceful STOP: the child process exits cleanly.
                assert sup.stop_mds(0, driver) == 0
                assert sup.stop_mds(1, driver) == 0
            finally:
                driver.close()

    def test_sigkill_crash_then_restart_from_checkpoint(self, tmp_path):
        config = _config()
        portmap = PortMap.reserve([0])
        paths = [f"/proc/ckpt/{i}" for i in range(6)]
        with ProcessSupervisor(portmap, config, tmp_path) as sup:
            sup.launch_mds(0)
            driver = _driver(portmap)
            try:
                sup.wait_ready(driver, [0])
                for i, path in enumerate(paths):
                    driver.request(
                        0,
                        Message(
                            kind=MessageKind.INSERT,
                            sender=-1,
                            payload={"meta": FileMetadata(path, inode=i + 1)},
                        ),
                    )
                # Build the checkpoint document the way the faults drill
                # does: replay the same inserts into a local twin and
                # snapshot it.  (The child's in-memory store dies with
                # the SIGKILL; the checkpoint is the durable copy.)
                twin = MetadataServer(0, config)
                for i, path in enumerate(paths):
                    twin.insert_metadata(FileMetadata(path, inode=i + 1))
                checkpoint = snapshot_server(twin)

                sup.kill_mds(0)
                sup.launch_mds(0, checkpoint=checkpoint)
                sup.wait_ready(driver, [0])
                batch = driver.request(
                    0,
                    Message(
                        kind=MessageKind.VERIFY_BATCH,
                        sender=-1,
                        payload={"paths": paths + ["/proc/ckpt/ghost"]},
                    ),
                )
                found = batch.payload["found"]
                assert all(found[path] for path in paths)
                assert found["/proc/ckpt/ghost"] is False
            finally:
                driver.close()

    def test_config_round_trips_through_json(self):
        config = _config()
        clone = config_from_dict(config_to_dict(config))
        assert config_to_dict(clone) == config_to_dict(config)
