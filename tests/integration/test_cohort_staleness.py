"""Cohort staleness harness: the bound holds under seeded chaos.

The acceptance property of ISSUE 4: across seeded random interleavings
of mutations and reads spread over the members of a gateway cohort —
driven under fault plans that drop, delay, duplicate and partition the
invalidation traffic — **no cache-served read may trail the mutation
that invalidated it by more than** ``CohortConfig.staleness_bound_s``.

The harness (``run_cohort_scenario`` in ``tests/conftest.py``) audits
every answer with the same :class:`~repro.gateway.staleness.StalenessAuditor`
the ``bench --cohort`` CLI uses.  Two directions are pinned:

- positive: chaos-driven cohorts stay within the bound (and the runs
  are non-vacuous — the caches actually serve, and under partitions
  stale-within-bound reads are *observed*, proving the auditor sees
  real staleness rather than nothing);
- negative (satellite 3): a deliberately-broken cohort that never
  publishes invalidations MUST fail the checker — if it ever stops
  failing, the harness has gone blind.
"""

import pytest

from repro.faults import FaultPlan, Partition


def _drop_heavy_plan(seed):
    return FaultPlan(
        seed=seed,
        drop_rate=0.15,
        delay_rate=0.20,
        delay_ms_min=0.5,
        delay_ms_max=4.0,
        duplicate_rate=0.10,
    )


def _partition_plan(seed, start_s=0.6, end_s=1.4):
    # Island member 0 away from the rest mid-run; light loss around it.
    return FaultPlan(
        seed=seed,
        drop_rate=0.05,
        duplicate_rate=0.05,
        partitions=(Partition(start_s=start_s, end_s=end_s, island=(0,)),),
    )


class TestBoundHolds:
    def test_healthy_cohort_serves_within_bound(self, cohort_scenario):
        cohort, auditor = cohort_scenario(seed=1)
        assert auditor.ok, auditor.violating_reads[:5]
        assert auditor.stats.audited > 200
        assert auditor.stats.cache_served > 50
        # Invalidations actually flowed member-to-member.
        applied = sum(
            cohort.counter_snapshot()["gateway_cohort_applied_total"].values()
        )
        assert applied > 0

    @pytest.mark.parametrize("seed", [2, 9, 23])
    def test_drop_heavy_chaos_holds_bound(self, cohort_scenario, seed):
        cohort, auditor = cohort_scenario(seed=seed, plan=_drop_heavy_plan(seed))
        assert auditor.ok, auditor.violating_reads[:5]
        assert auditor.stats.cache_served > 50
        counters = cohort.counter_snapshot()
        assert sum(counters["gateway_cohort_gaps_total"].values()) > 0, (
            "15% drop rate never opened a sequence gap — vacuous run"
        )
        assert sum(counters["gateway_cohort_sync_records_total"].values()) > 0

    @pytest.mark.parametrize("seed", [4, 19])
    def test_partition_holds_bound_with_observed_staleness(
        self, cohort_scenario, seed
    ):
        cohort, auditor = cohort_scenario(
            seed=seed, plan=_partition_plan(seed), ops=1200
        )
        assert auditor.ok, auditor.violating_reads[:5]
        # Non-vacuous: the islanded member really served stale data —
        # inside the bound, which is exactly the protocol's contract.
        assert auditor.stats.stale > 0
        assert auditor.stats.max_staleness_s <= auditor.bound_s
        counters = cohort.counter_snapshot()
        assert sum(counters["gateway_cohort_peer_missing_total"].values()) > 0
        assert sum(counters["gateway_cohort_clamp_engaged_total"].values()) > 0
        # Degradation is temporary: every clamp engagement was released
        # once the partition healed and the cohort settled.
        assert sum(
            counters["gateway_cohort_clamp_released_total"].values()
        ) == sum(counters["gateway_cohort_clamp_engaged_total"].values())


class TestBrokenCohortFailsChecker:
    """Satellite 3: the checker must catch a cohort with publishing off."""

    def test_unpublished_mutations_violate_bound(self, cohort_scenario):
        cohort, auditor = cohort_scenario(
            seed=1, publish_invalidations=False, ops=1200
        )
        assert not auditor.ok, (
            "staleness checker passed a cohort that never publishes "
            "invalidations — the harness is blind"
        )
        assert auditor.stats.violations > 0
        worst = max(r.staleness_s for r in auditor.violating_reads)
        assert worst > auditor.bound_s
        # And the cohort really published nothing.
        counters = cohort.counter_snapshot()
        assert sum(counters["gateway_cohort_published_total"].values()) == 0

    def test_broken_cohort_detected_under_partition_too(self, cohort_scenario):
        cohort, auditor = cohort_scenario(
            seed=4,
            plan=_partition_plan(4),
            publish_invalidations=False,
            ops=1200,
        )
        assert not auditor.ok
        assert auditor.stats.violations > 0


@pytest.mark.slow
class TestSoak:
    @pytest.mark.parametrize("seed", [31, 47, 101])
    def test_long_chaos_soak_holds_bound(self, cohort_scenario, seed):
        plan = FaultPlan(
            seed=seed,
            drop_rate=0.10,
            delay_rate=0.15,
            delay_ms_min=0.5,
            delay_ms_max=5.0,
            duplicate_rate=0.10,
            partitions=(
                Partition(start_s=1.0, end_s=2.0, island=(0,)),
                Partition(start_s=3.0, end_s=4.0, island=(1, 2)),
            ),
        )
        cohort, auditor = cohort_scenario(
            seed=seed, size=4, plan=plan, ops=4000, rate_per_s=600.0
        )
        assert auditor.ok, auditor.violating_reads[:5]
        assert auditor.stats.cache_served > 200
