"""Cross-implementation equivalence: simulator vs. prototype.

The trace-driven simulator (`repro.core`) and the message-passing prototype
(`repro.prototype`) implement the same scheme; given identical populated
state they must agree on every routing decision.  This pins down protocol
drift between the two implementations.
"""

import pytest

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.core.query import QueryLevel
from repro.prototype.cluster import PrototypeCluster


@pytest.fixture
def config():
    return GHBAConfig(
        max_group_size=4,
        expected_files_per_mds=256,
        lru_capacity=64,
        lru_filter_bits=512,
        seed=33,
    )


class TestRoutingEquivalence:
    def test_same_homes_resolved(self, config):
        """Both implementations find the same (true) home for every path."""
        paths = [f"/eq/d{i % 5}/f{i}" for i in range(300)]
        sim = GHBACluster(10, config, seed=33)
        sim_placement = sim.populate(paths, policy="round_robin")
        sim.synchronize_replicas(force=True)
        with PrototypeCluster(10, config, scheme="ghba", seed=33) as proto:
            proto_placement = proto.populate(paths, policy="round_robin")
            # Round-robin placement from the same sorted server ids must
            # coincide exactly.
            assert proto_placement == sim_placement
            for path in paths[::13]:
                sim_result = sim.query(path, origin_id=0)
                proto_result = proto.lookup(path, origin_id=0)
                assert sim_result.home_id == proto_result.home_id

    def test_same_level_progression_for_cold_then_hot(self, config):
        """Both serve a repeat query from L1 after learning it."""
        paths = [f"/eq/f{i}" for i in range(100)]
        sim = GHBACluster(8, config, seed=7)
        sim.populate(paths, policy="round_robin")
        sim.synchronize_replicas(force=True)
        with PrototypeCluster(8, config, scheme="ghba", seed=7) as proto:
            proto.populate(paths, policy="round_robin")
            path = paths[0]
            sim.query(path, origin_id=1)
            proto.lookup(path, origin_id=1)
            proto.quiesce()
            assert sim.query(path, origin_id=1).level is QueryLevel.L1
            assert proto.lookup(path, origin_id=1).level is QueryLevel.L1

    def test_same_negative_verdicts(self, config):
        sim = GHBACluster(8, config, seed=7)
        sim.populate([f"/eq/f{i}" for i in range(50)], policy="round_robin")
        sim.synchronize_replicas(force=True)
        with PrototypeCluster(8, config, scheme="ghba", seed=7) as proto:
            proto.populate([f"/eq/f{i}" for i in range(50)], policy="round_robin")
            for ghost in ("/ghost/a", "/ghost/b"):
                assert not sim.query(ghost, origin_id=2).found
                assert not proto.lookup(ghost, origin_id=2).found

    def test_join_then_equivalent_routing(self, config):
        paths = [f"/eq/f{i}" for i in range(120)]
        sim = GHBACluster(9, config, seed=5)
        placement = sim.populate(paths, policy="round_robin")
        sim.synchronize_replicas(force=True)
        sim.add_server()
        with PrototypeCluster(9, config, scheme="ghba", seed=5) as proto:
            proto.populate(paths, policy="round_robin")
            proto.add_node()
            for path in paths[::17]:
                assert sim.query(path).home_id == placement[path]
                assert proto.lookup(path).home_id == placement[path]
