"""Property-based tests for the namespace tree."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metadata.namespace import Namespace, normalize_path

#: Path components drawn from a small alphabet to provoke collisions.
component = st.text(alphabet="abc", min_size=1, max_size=3)
rel_paths = st.lists(component, min_size=1, max_size=4).map(
    lambda parts: "/" + "/".join(parts)
)


class TestEnsureFileProperties:
    @given(paths=st.lists(rel_paths, max_size=25))
    def test_ensure_file_makes_every_path_resolvable(self, paths):
        ns = Namespace()
        created = []
        for path in paths:
            try:
                ns.ensure_file(path)
                created.append(path)
            except Exception:
                # A prefix may already exist as a file; that is legitimate.
                continue
        for path in created:
            assert ns.exists(path)

    @given(paths=st.lists(rel_paths, max_size=25, unique=True))
    def test_count_matches_walk(self, paths):
        ns = Namespace()
        for path in paths:
            try:
                ns.ensure_file(path)
            except Exception:
                continue
        assert len(ns) == sum(1 for _ in ns.walk())

    @given(paths=st.lists(rel_paths, max_size=20, unique=True))
    def test_inodes_unique(self, paths):
        ns = Namespace()
        for path in paths:
            try:
                ns.ensure_file(path)
            except Exception:
                continue
        inodes = [meta.inode for meta in ns.walk()]
        assert len(inodes) == len(set(inodes))


class TestRenameProperties:
    @given(
        sources=st.lists(component, min_size=1, max_size=3, unique=True),
        files_per_dir=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=50)
    def test_rename_preserves_subtree_population(self, sources, files_per_dir):
        ns = Namespace()
        directory = "/" + "/".join(sources)
        for i in range(files_per_dir):
            ns.ensure_file(f"{directory}/f{i}")
        before = len(ns)
        moved = ns.rename("/" + sources[0], "/renamed")
        assert len(ns) == before  # nothing created or lost
        assert moved >= 1 + files_per_dir if len(sources) == 1 else moved >= 1
        # Every file is reachable under the new prefix.
        suffix = "/".join(sources[1:])
        new_dir = "/renamed" + ("/" + suffix if suffix else "")
        for i in range(files_per_dir):
            assert ns.exists(f"{new_dir}/f{i}")

    @given(paths=st.lists(rel_paths, min_size=1, max_size=10, unique=True))
    def test_walk_paths_always_normalized(self, paths):
        ns = Namespace()
        for path in paths:
            try:
                ns.ensure_file(path)
            except Exception:
                continue
        for meta in ns.walk():
            assert meta.path == normalize_path(meta.path)


class TestRemoveProperties:
    @given(paths=st.lists(rel_paths, min_size=1, max_size=15, unique=True))
    def test_recursive_remove_of_root_children_empties_tree(self, paths):
        ns = Namespace()
        for path in paths:
            try:
                ns.ensure_file(path)
            except Exception:
                continue
        for name in ns.list_directory("/"):
            ns.remove("/" + name, recursive=True)
        assert len(ns) == 1  # only the root remains
