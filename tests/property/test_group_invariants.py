"""Property-based tests: cluster invariants under arbitrary reconfiguration.

The paper's correctness hinges on one structural invariant — every group
holds exactly one replica of every outside MDS (the "global mirror image").
These tests drive random join/leave/fail sequences and assert the invariant
plus query correctness after every step.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.metadata.attributes import FileMetadata


def tiny_config(max_group_size: int) -> GHBAConfig:
    return GHBAConfig(
        max_group_size=max_group_size,
        expected_files_per_mds=64,
        lru_capacity=8,
        lru_filter_bits=64,
        seed=1,
    )


#: A reconfiguration script: add, or remove/fail by victim index.
ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "fail"]),
        st.integers(min_value=0, max_value=30),
    ),
    max_size=12,
)


class TestReconfigurationInvariants:
    @given(
        initial=st.integers(min_value=2, max_value=12),
        max_group=st.integers(min_value=2, max_value=5),
        ops=ops_strategy,
    )
    @settings(max_examples=40, deadline=None)
    def test_mirror_invariant_survives_any_script(self, initial, max_group, ops):
        cluster = GHBACluster(initial, tiny_config(max_group), seed=3)
        cluster.check_invariants()
        for op, victim_index in ops:
            if op == "add":
                cluster.add_server()
            elif cluster.num_servers > 1:
                ids = cluster.server_ids()
                victim = ids[victim_index % len(ids)]
                if op == "remove":
                    cluster.remove_server(victim)
                else:
                    cluster.fail_server(victim)
            cluster.check_invariants()

    @given(
        max_group=st.integers(min_value=2, max_value=4),
        ops=ops_strategy,
    )
    @settings(max_examples=25, deadline=None)
    def test_graceful_removal_never_loses_files(self, max_group, ops):
        """With graceful removals (re-homing), every file stays findable."""
        cluster = GHBACluster(6, tiny_config(max_group), seed=5)
        paths = [f"/inv/f{i}" for i in range(30)]
        cluster.populate(paths)
        cluster.synchronize_replicas(force=True)
        for op, victim_index in ops:
            if op == "add":
                cluster.add_server()
            elif op == "remove" and cluster.num_servers > 1:
                ids = cluster.server_ids()
                cluster.remove_server(ids[victim_index % len(ids)])
            # ("fail" excluded: crash-failures legitimately lose files)
            cluster.synchronize_replicas(force=True)
        for path in paths:
            result = cluster.query(path)
            assert result.found, path
            assert result.home_id == cluster.home_of(path)

    @given(
        initial=st.integers(min_value=2, max_value=10),
        max_group=st.integers(min_value=2, max_value=5),
        num_adds=st.integers(min_value=0, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_group_sizes_bounded_and_merged(self, initial, max_group, num_adds):
        """No group exceeds M, and no two groups could merge further."""
        cluster = GHBACluster(initial, tiny_config(max_group), seed=7)
        for _ in range(num_adds):
            cluster.add_server()
        sizes = sorted(g.size for g in cluster.groups.values())
        assert all(size <= max_group for size in sizes)
        if len(sizes) >= 2:
            # The merge rule: the two smallest groups must not fit together.
            assert sizes[0] + sizes[1] > max_group

    @given(
        ops=ops_strategy,
        max_group=st.integers(min_value=2, max_value=4),
    )
    @settings(max_examples=25, deadline=None)
    def test_replica_balance_within_every_group(self, ops, max_group):
        cluster = GHBACluster(8, tiny_config(max_group), seed=9)
        for op, victim_index in ops:
            if op == "add":
                cluster.add_server()
            elif cluster.num_servers > 1:
                ids = cluster.server_ids()
                victim = ids[victim_index % len(ids)]
                if op == "remove":
                    cluster.remove_server(victim)
                else:
                    cluster.fail_server(victim)
        for group in cluster.groups.values():
            # Light-weight migration keeps members within a couple of
            # replicas of each other.
            assert group.load_imbalance() <= 2
