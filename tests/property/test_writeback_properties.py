"""Property tests: write-back buffering vs an in-memory oracle (ISSUE 5).

No hypothesis in the toolchain, so this is a seeded ``random.Random``
harness with explicit shrinking: each seed generates a random mutation /
lookup / barrier sequence, replays it through a write-back gateway over a
real :class:`GHBACluster`, and maintains an **acknowledgement oracle** —
an in-memory namespace updated only when the flush engine acknowledges a
mutation (never at enqueue).  Invariants checked:

- after the final barrier the fleet's namespace equals the oracle exactly
  (acked mutations are durable, unacked ones are visible as pending);
- every overlay answer (read-your-writes) matches the buffer's pending
  intent at that instant;
- nothing is silently lost (no faults here, so zero losses expected).

On failure the harness greedily shrinks the op sequence to a minimal
still-failing subsequence before asserting, so the report is actionable.
"""

import random

import pytest

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.gateway import GatewayConfig, MetadataClient, Outcome

SEEDS = range(24)

NUM_SERVERS = 5
SEED_PATHS = [f"/p/d{i % 4}/f{i}" for i in range(60)]


def _build_client(seed):
    config = GHBAConfig(
        max_group_size=4,
        expected_files_per_mds=200,
        lru_capacity=128,
        lru_filter_bits=1 << 10,
        seed=seed,
    )
    cluster = GHBACluster(NUM_SERVERS, config, seed=seed)
    cluster.populate(SEED_PATHS)
    cluster.synchronize_replicas(force=True)
    client = MetadataClient(
        cluster,
        GatewayConfig(
            rate_per_s=1e6,
            burst=1e4,
            lease_ttl_s=30.0,
            writeback=True,
            flush_max_pending=4,
            flush_age_s=0.3,
            writeback_seed=seed,
        ),
    )
    return cluster, client


def _generate_ops(seed, length=120):
    """A reproducible op list; each op carries its own timestamp so any
    subsequence replays deterministically during shrinking."""
    rng = random.Random(seed)
    pool = list(SEED_PATHS)
    ops = []
    now = 0.0
    serial = 0
    for _ in range(length):
        now += rng.random() * 0.08
        roll = rng.random()
        if roll < 0.30:
            serial += 1
            path = (
                rng.choice(pool)
                if rng.random() < 0.3
                else f"/p/new/{seed}_{serial}"
            )
            pool.append(path)
            ops.append(("create", path, now))
        elif roll < 0.55:
            ops.append(("delete", rng.choice(pool), now))
        elif roll < 0.85:
            ops.append(("lookup", rng.choice(pool), now))
        elif roll < 0.93:
            ops.append(("barrier", "", now))
        else:
            victim = rng.choice(pool)
            target = victim + ".moved"
            ops.append(("rename", (victim, target), now))
            pool.append(target)
    ops.append(("barrier", "", now + 1.0))
    return ops


def _oracle_rename(oracle, old_prefix, new_prefix):
    moved = [
        path
        for path in oracle
        if path == old_prefix or path.startswith(old_prefix + "/")
    ]
    for path in moved:
        oracle.discard(path)
        oracle.add(new_prefix + path[len(old_prefix):])


def _run(seed, ops):
    """Replay ``ops``; return a failure description or ``None``."""
    cluster, client = _build_client(seed)
    oracle = set(SEED_PATHS)
    failures = []

    def on_ack(mutation, outcome):
        if outcome is None:
            failures.append(f"unexpected loss of {mutation.path}")
            return
        if outcome.applied:
            if mutation.op == "create":
                oracle.add(mutation.path)
            else:
                oracle.discard(mutation.path)
        elif outcome.conflict:
            # The backend won the race: mirror its live state.
            if cluster.home_of(mutation.path) is None:
                oracle.discard(mutation.path)
            else:
                oracle.add(mutation.path)

    client.add_ack_listener(on_ack)
    for op, arg, now in ops:
        if op == "create":
            client.create(arg, now)
        elif op == "delete":
            response = client.delete(arg, now)
            if response.outcome not in (
                Outcome.BUFFERED,
                Outcome.NEGATIVE_HIT,
            ):
                # Passthrough delete: applied synchronously, not acked.
                oracle.discard(arg)
        elif op == "lookup":
            response = client.lookup(arg, now)
            if response.from_overlay:
                pending = client.writeback.get(arg)
                if pending is None:
                    failures.append(f"overlay answer without intent: {arg}")
                else:
                    wants = pending.op == "create"
                    has = response.record is not None
                    if wants != has:
                        failures.append(
                            f"overlay mismatch at {arg}: pending "
                            f"{pending.op} answered found={has}"
                        )
        elif op == "barrier":
            client.flush_barrier(now)
        elif op == "rename":
            old, new = arg
            client.rename(old, new, now)
            _oracle_rename(oracle, old, new)
        if failures:
            return failures[0]
    if client.lost_mutations:
        return f"{len(client.lost_mutations)} mutations reported lost"
    fleet = {
        meta.path
        for server in cluster.servers.values()
        for meta in server.store.records()
    }
    if fleet != oracle:
        extra = sorted(fleet - oracle)[:3]
        missing = sorted(oracle - fleet)[:3]
        return f"fleet != oracle (extra={extra}, missing={missing})"
    return None


def _shrink(seed, ops, failure):
    """Greedy delta-debug: drop ops while the failure reproduces."""
    current = list(ops)
    shrunk = True
    while shrunk and len(current) > 1:
        shrunk = False
        for index in range(len(current) - 1, -1, -1):
            candidate = current[:index] + current[index + 1:]
            if candidate and _run(seed, candidate) is not None:
                current = candidate
                shrunk = True
                break
    return current


@pytest.mark.parametrize("seed", SEEDS)
def test_random_sequences_converge_to_oracle(seed):
    ops = _generate_ops(seed)
    failure = _run(seed, ops)
    if failure is not None:
        minimal = _shrink(seed, ops, failure)
        pytest.fail(
            f"seed {seed}: {failure}\nminimal failing sequence "
            f"({len(minimal)} ops): {minimal}"
        )


def test_shrinker_finds_minimal_sequences():
    """The shrinker itself works: an artificial always-failing predicate
    reduces to a single op (guards against a shrinker that silently
    stops shrinking and reports giant sequences)."""
    ops = _generate_ops(99, length=30)
    # A sequence that ends with a create and never flushes would leave
    # fleet != oracle only if acks were broken; instead exercise _shrink
    # directly against a synthetic failure function via monkey substitution.
    calls = []

    def fake_run(seed, candidate):
        calls.append(len(candidate))
        # Fails whenever the sequence still contains any delete op.
        return (
            "synthetic"
            if any(op == "delete" for op, _, _ in candidate)
            else None
        )

    if not any(op == "delete" for op, _, _ in ops):
        pytest.skip("sequence has no delete")
    global _run
    original = _run
    _run = fake_run
    try:
        minimal = _shrink(99, ops, "synthetic")
    finally:
        _run = original
    assert len(minimal) == 1
    assert minimal[0][0] == "delete"
