"""Property-based tests: query correctness over random cluster shapes.

For any (N, M, population) the cluster must route every known path to its
true home and return definite negatives for unknown paths — the scheme's
end-to-end contract.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.core.query import QueryLevel


def build_cluster(num_servers, max_group, seed):
    config = GHBAConfig(
        max_group_size=max_group,
        expected_files_per_mds=128,
        lru_capacity=32,
        lru_filter_bits=256,
        seed=seed,
    )
    return GHBACluster(num_servers, config, seed=seed)


class TestQueryContract:
    @given(
        num_servers=st.integers(min_value=1, max_value=14),
        max_group=st.integers(min_value=1, max_value=6),
        num_files=st.integers(min_value=0, max_value=80),
        seed=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_known_path_routes_to_true_home(
        self, num_servers, max_group, num_files, seed
    ):
        cluster = build_cluster(num_servers, max_group, seed)
        placement = cluster.populate(
            f"/prop/f{i}" for i in range(num_files)
        )
        cluster.synchronize_replicas(force=True)
        cluster.check_invariants()
        for path, home in placement.items():
            result = cluster.query(path)
            assert result.found
            assert result.home_id == home

    @given(
        num_servers=st.integers(min_value=1, max_value=12),
        max_group=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=30),
    )
    @settings(max_examples=25, deadline=None)
    def test_unknown_paths_are_definite_negatives(
        self, num_servers, max_group, seed
    ):
        cluster = build_cluster(num_servers, max_group, seed)
        cluster.populate(f"/prop/f{i}" for i in range(40))
        cluster.synchronize_replicas(force=True)
        for i in range(10):
            result = cluster.query(f"/ghost/{seed}/{i}")
            assert not result.found
            assert result.level is QueryLevel.NEGATIVE

    @given(
        num_servers=st.integers(min_value=2, max_value=12),
        max_group=st.integers(min_value=2, max_value=5),
        origin_index=st.integers(min_value=0, max_value=50),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=25, deadline=None)
    def test_answer_independent_of_origin(
        self, num_servers, max_group, origin_index, seed
    ):
        """Any entry MDS yields the same home — the decentralization claim."""
        cluster = build_cluster(num_servers, max_group, seed)
        placement = cluster.populate(f"/prop/f{i}" for i in range(30))
        cluster.synchronize_replicas(force=True)
        path, home = sorted(placement.items())[0]
        origin = cluster.server_ids()[origin_index % num_servers]
        result = cluster.query(path, origin_id=origin)
        assert result.home_id == home

    @given(
        num_servers=st.integers(min_value=2, max_value=10),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=20, deadline=None)
    def test_latency_and_messages_non_negative_and_bounded(
        self, num_servers, seed
    ):
        cluster = build_cluster(num_servers, 4, seed)
        placement = cluster.populate(f"/prop/f{i}" for i in range(20))
        cluster.synchronize_replicas(force=True)
        for path in list(placement)[:5]:
            result = cluster.query(path)
            assert result.latency_ms >= 0
            # Worst case: L1 forward + L2 forward + L3 + L4 + final forward.
            assert result.messages <= 4 * num_servers + 8
