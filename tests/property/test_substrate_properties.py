"""Property-based tests for the store, memory model and event engine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metadata.attributes import FileMetadata
from repro.metadata.store import MetadataStore
from repro.sim.engine import Simulator
from repro.sim.memory import MemoryModel


class TestStoreModelConformance:
    """The tiered store must behave exactly like a dict, regardless of the
    memory budget — tiering may move records, never lose or corrupt them."""

    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "remove"]),
                st.integers(min_value=0, max_value=12),
            ),
            max_size=60,
        ),
        budget=st.one_of(st.none(), st.integers(min_value=0, max_value=2_000)),
    )
    @settings(max_examples=60)
    def test_matches_dict_model(self, ops, budget):
        store = MetadataStore(memory_budget_bytes=budget)
        model = {}
        for op, key_index in ops:
            path = f"/store/k{key_index}"
            if op == "put":
                meta = FileMetadata(path=path, inode=key_index)
                store.put(meta)
                model[path] = meta
            elif op == "get":
                assert store.get(path) == model.get(path)
            else:
                assert store.remove(path, missing_ok=True) == (
                    model.pop(path, None) is not None
                )
            assert len(store) == len(model)
        for path, meta in model.items():
            assert store.get(path) == meta

    @given(budget=st.integers(min_value=0, max_value=5_000))
    @settings(max_examples=30)
    def test_memory_tier_never_exceeds_budget(self, budget):
        store = MetadataStore(memory_budget_bytes=budget)
        for i in range(30):
            store.put(FileMetadata(path=f"/b/k{i}", inode=i))
        assert store.memory_bytes <= max(
            budget, FileMetadata(path="/b/k0", inode=0).size_bytes()
        )


class TestMemoryModelProperties:
    @given(
        consumers=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),  # bytes
                st.integers(min_value=0, max_value=3),       # priority
            ),
            min_size=1,
            max_size=8,
        ),
        budget=st.one_of(st.none(), st.integers(min_value=0, max_value=30_000)),
        mode=st.sampled_from(["priority", "proportional"]),
    )
    @settings(max_examples=80)
    def test_residency_invariants(self, consumers, budget, mode):
        model = MemoryModel(budget_bytes=budget, mode=mode)
        for index, (size, priority) in enumerate(consumers):
            model.set_consumer(f"c{index}", size, priority)
        resident_bytes = 0.0
        for name, size, fraction in model.snapshot():
            assert 0.0 <= fraction <= 1.0
            resident_bytes += size * fraction
        if budget is not None:
            assert resident_bytes <= budget + 1e-6
        else:
            assert resident_bytes == model.total_bytes

    @given(
        sizes=st.lists(
            st.integers(min_value=1, max_value=1_000), min_size=2, max_size=6
        ),
        budget=st.integers(min_value=0, max_value=3_000),
    )
    @settings(max_examples=60)
    def test_priority_mode_orders_residency(self, sizes, budget):
        """A higher-priority (lower value) consumer is never less resident
        than a lower-priority one."""
        model = MemoryModel(budget_bytes=budget, mode="priority")
        for index, size in enumerate(sizes):
            model.set_consumer(f"c{index}", size, priority=index)
        fractions = [model.resident_fraction(f"c{i}") for i in range(len(sizes))]
        for earlier, later in zip(fractions, fractions[1:]):
            assert earlier >= later - 1e-9


class TestEngineProperties:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            max_size=40,
        )
    )
    @settings(max_examples=60)
    def test_execution_order_is_sorted_by_time(self, delays):
        sim = Simulator()
        fired = []
        for index, delay in enumerate(delays):
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
            max_size=25,
        ),
        cutoff=st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_run_until_partitions_events_exactly(self, delays, cutoff):
        sim = Simulator()
        fired = []
        for delay in delays:
            sim.schedule(delay, lambda d=delay: fired.append(d))
        sim.run_until(cutoff)
        assert sorted(fired) == sorted(d for d in delays if d <= cutoff)
        assert sim.pending == sum(1 for d in delays if d > cutoff)

    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
            max_size=30,
        )
    )
    @settings(max_examples=40)
    def test_two_runs_identical(self, delays):
        """Determinism: two engines fed the same schedule fire identically."""
        logs = []
        for _ in range(2):
            sim = Simulator()
            log = []
            for index, delay in enumerate(delays):
                sim.schedule(delay, lambda i=index: log.append((sim.now, i)))
            sim.run()
            logs.append(log)
        assert logs[0] == logs[1]
