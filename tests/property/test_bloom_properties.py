"""Property-based tests for Bloom filters and their algebra."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.algebra import (
    bit_difference,
    bloom_intersection,
    bloom_union,
    bloom_xor,
)
from repro.bloom.bitvector import BitVector
from repro.bloom.bloom_filter import BloomFilter

items_strategy = st.lists(
    st.text(min_size=1, max_size=24), max_size=60, unique=True
)


def build(items, seed=0):
    bloom = BloomFilter(1024, 5, seed)
    bloom.update(items)
    return bloom


class TestNoFalseNegatives:
    @given(items=items_strategy)
    def test_every_inserted_item_is_found(self, items):
        bloom = build(items)
        assert all(bloom.query(item) for item in items)

    @given(items=items_strategy)
    def test_replica_agrees_with_original(self, items):
        bloom = build(items)
        replica = bloom.copy()
        assert all(replica.query(item) for item in items)
        assert replica == bloom

    @given(items=items_strategy)
    def test_serialization_round_trip(self, items):
        bloom = build(items)
        assert BloomFilter.from_bytes(bloom.to_bytes()) == bloom


class TestAlgebraLaws:
    @given(a=items_strategy, b=items_strategy)
    def test_union_is_exact(self, a, b):
        """Property 1: OR of filters equals the filter of the union."""
        assert bloom_union(build(a), build(b)) == build(list(set(a) | set(b)))

    @given(a=items_strategy, b=items_strategy)
    def test_union_commutes(self, a, b):
        assert bloom_union(build(a), build(b)) == bloom_union(build(b), build(a))

    @given(a=items_strategy, b=items_strategy, c=items_strategy)
    def test_union_associates(self, a, b, c):
        left = bloom_union(bloom_union(build(a), build(b)), build(c))
        right = bloom_union(build(a), bloom_union(build(b), build(c)))
        assert left == right

    @given(a=items_strategy, b=items_strategy)
    def test_intersection_has_no_false_negatives(self, a, b):
        """Property 2: every common member is found in the AND filter."""
        inter = bloom_intersection(build(a), build(b))
        for item in set(a) & set(b):
            assert inter.query(item)

    @given(a=items_strategy, b=items_strategy)
    def test_intersection_bits_superset_of_direct(self, a, b):
        inter = bloom_intersection(build(a), build(b))
        direct = build(list(set(a) & set(b)))
        assert direct.bits.is_subset_of(inter.bits)

    @given(a=items_strategy, b=items_strategy)
    def test_xor_consistent_with_bitvectors(self, a, b):
        fa, fb = build(a), build(b)
        assert bloom_xor(fa, fb).bits == (fa.bits ^ fb.bits)

    @given(a=items_strategy)
    def test_xor_self_is_empty(self, a):
        assert bloom_xor(build(a), build(a)).bits.popcount() == 0

    @given(a=items_strategy, b=items_strategy)
    def test_bit_difference_is_metric_like(self, a, b):
        fa, fb = build(a), build(b)
        assert bit_difference(fa, fb) == bit_difference(fb, fa)
        assert bit_difference(fa, fa) == 0

    @given(a=items_strategy, b=items_strategy, c=items_strategy)
    def test_bit_difference_triangle_inequality(self, a, b, c):
        fa, fb, fc = build(a), build(b), build(c)
        assert bit_difference(fa, fc) <= (
            bit_difference(fa, fb) + bit_difference(fb, fc)
        )


class TestBitVectorLaws:
    @given(
        bits=st.lists(st.integers(min_value=0, max_value=255), max_size=40),
        size=st.just(256),
    )
    def test_popcount_matches_set_bits(self, bits, size):
        vector = BitVector(size)
        for bit in bits:
            vector.set(bit)
        assert vector.popcount() == len(set(bits))

    @given(
        a_bits=st.sets(st.integers(min_value=0, max_value=127)),
        b_bits=st.sets(st.integers(min_value=0, max_value=127)),
    )
    def test_or_and_xor_match_set_semantics(self, a_bits, b_bits):
        a, b = BitVector(128), BitVector(128)
        for bit in a_bits:
            a.set(bit)
        for bit in b_bits:
            b.set(bit)
        assert {i for i in range(128) if (a | b).get(i)} == a_bits | b_bits
        assert {i for i in range(128) if (a & b).get(i)} == a_bits & b_bits
        assert {i for i in range(128) if (a ^ b).get(i)} == a_bits ^ b_bits

    @given(
        a_bits=st.sets(st.integers(min_value=0, max_value=63)),
        b_bits=st.sets(st.integers(min_value=0, max_value=63)),
    )
    def test_hamming_distance_is_xor_popcount(self, a_bits, b_bits):
        a, b = BitVector(64), BitVector(64)
        for bit in a_bits:
            a.set(bit)
        for bit in b_bits:
            b.set(bit)
        assert a.hamming_distance(b) == (a ^ b).popcount()
