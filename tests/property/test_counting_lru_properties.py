"""Property-based tests for counting filters and the LRU array."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bloom.arrays import LRUBloomFilterArray
from repro.bloom.counting import CountingBloomFilter


class TestCountingFilterProperties:
    @given(
        items=st.lists(st.text(min_size=1, max_size=16), max_size=40, unique=True)
    )
    def test_add_all_then_remove_all_restores_emptiness(self, items):
        cbf = CountingBloomFilter(2048, 4)
        for item in items:
            cbf.add(item)
        for item in items:
            cbf.remove(item)
        assert cbf.num_items == 0
        assert cbf.fill_ratio() == 0.0

    @given(
        keep=st.lists(st.text(min_size=1, max_size=12), max_size=30, unique=True),
        drop=st.lists(st.text(min_size=1, max_size=12), max_size=30, unique=True),
    )
    def test_removals_never_cause_false_negatives(self, keep, drop):
        """Items still in the set must survive any sequence of deletions."""
        keep_set = set(keep) - set(drop)
        cbf = CountingBloomFilter(4096, 4)
        for item in set(keep) | set(drop):
            cbf.add(item)
        for item in drop:
            cbf.remove(item)
        assert all(cbf.query(item) for item in keep_set)

    @given(
        items=st.lists(st.text(min_size=1, max_size=12), max_size=30, unique=True)
    )
    def test_projection_to_plain_filter_preserves_membership(self, items):
        cbf = CountingBloomFilter(2048, 4)
        for item in items:
            cbf.add(item)
        bloom = cbf.to_bloom_filter()
        assert all(bloom.query(item) for item in items)


#: Operation stream for the LRU model check.
lru_ops = st.lists(
    st.tuples(
        st.sampled_from(["record", "invalidate", "touch"]),
        st.integers(min_value=0, max_value=15),  # item index
        st.integers(min_value=0, max_value=4),   # home id
    ),
    max_size=80,
)


class TestLRUModelConformance:
    @given(ops=lru_ops, capacity=st.integers(min_value=1, max_value=8))
    @settings(max_examples=60)
    def test_matches_reference_lru(self, ops, capacity):
        """The Bloom-backed LRU must track a plain OrderedDict LRU exactly
        (ground truth; the Bloom filters may add false positives on query
        but `peek` must be exact)."""
        lru = LRUBloomFilterArray(capacity, filter_bits=1024, num_hashes=4)
        model: "OrderedDict[str, int]" = OrderedDict()
        for op, item_index, home in ops:
            item = f"/item{item_index}"
            if op == "record":
                if item in model and model[item] != home:
                    del model[item]
                model.pop(item, None)
                model[item] = home
                if len(model) > capacity:
                    model.popitem(last=False)
                lru.record(item, home)
            elif op == "invalidate":
                expected = model.pop(item, None) is not None
                assert lru.invalidate(item) == expected
            else:  # touch
                if item in model:
                    model.move_to_end(item)
                lru.touch(item)
            assert len(lru) == len(model)
            for key, value in model.items():
                assert lru.peek(key) == value

    @given(ops=lru_ops)
    @settings(max_examples=40)
    def test_entries_always_queryable(self, ops):
        """No false negatives: every live entry must hit its home filter."""
        lru = LRUBloomFilterArray(8, filter_bits=2048, num_hashes=4)
        live = {}
        for op, item_index, home in ops:
            item = f"/item{item_index}"
            if op == "record":
                lru.record(item, home)
                live[item] = home
                while len(live) > len(lru._entries):
                    # mirror evictions
                    gone = next(
                        k for k in live if lru.peek(k) is None
                    )
                    del live[gone]
            elif op == "invalidate":
                lru.invalidate(item)
                live.pop(item, None)
        live = {k: v for k, v in live.items() if lru.peek(k) is not None}
        for item, home in live.items():
            assert home in lru.query(item).hits
