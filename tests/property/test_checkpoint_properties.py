"""Property-based tests: checkpoint round trips over random clusters."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import checkpoint
from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig


class TestCheckpointRoundTrip:
    @given(
        num_servers=st.integers(min_value=1, max_value=10),
        max_group=st.integers(min_value=1, max_value=4),
        num_files=st.integers(min_value=0, max_value=60),
        reconfigs=st.integers(min_value=0, max_value=3),
        seed=st.integers(min_value=0, max_value=15),
    )
    @settings(max_examples=25, deadline=None)
    def test_snapshot_restore_preserves_everything(
        self, num_servers, max_group, num_files, reconfigs, seed
    ):
        config = GHBAConfig(
            max_group_size=max_group,
            expected_files_per_mds=128,
            lru_capacity=16,
            lru_filter_bits=128,
            seed=seed,
        )
        cluster = GHBACluster(num_servers, config, seed=seed)
        placement = cluster.populate(
            f"/ckpt/f{i}" for i in range(num_files)
        )
        cluster.synchronize_replicas(force=True)
        for _ in range(reconfigs):
            cluster.add_server()
        restored = checkpoint.restore(checkpoint.snapshot(cluster))
        # Structure is identical...
        assert restored.num_servers == cluster.num_servers
        assert restored.num_groups == cluster.num_groups
        assert restored.replicas_per_server() == (
            cluster.replicas_per_server()
        )
        # ...and every routing decision matches the original placement.
        for path, home in placement.items():
            result = restored.query(path)
            assert result.found
            assert result.home_id == home

    @given(
        num_servers=st.integers(min_value=1, max_value=8),
        seed=st.integers(min_value=0, max_value=15),
    )
    @settings(max_examples=15, deadline=None)
    def test_double_round_trip_is_stable(self, num_servers, seed):
        config = GHBAConfig(
            max_group_size=3,
            expected_files_per_mds=64,
            lru_capacity=8,
            lru_filter_bits=64,
            seed=seed,
        )
        cluster = GHBACluster(num_servers, config, seed=seed)
        cluster.populate(f"/ckpt/f{i}" for i in range(20))
        cluster.synchronize_replicas(force=True)
        once = checkpoint.snapshot(cluster)
        twice = checkpoint.snapshot(checkpoint.restore(once))
        assert once == twice
