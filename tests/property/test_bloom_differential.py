"""Differential oracle: packed bloom substrate vs the frozen per-bit one.

The ISSUE 9 rebuild moved every filter in ``repro.bloom`` onto packed
big-int bitsets with memoized probe masks.  The refactor's contract is
*observational invisibility*: for any op sequence, the new substrate must
agree with the old per-bit implementation bit-for-bit — query answers,
popcounts, algebra results, counter arrays, item counts, and the
serialized wire form.  ``tests/_reference_bloom.py`` is a frozen copy of
the pre-packed implementation; this suite replays random op sequences
through both and diffs everything after every step.

No hypothesis in the toolchain, so this is the repo's standard seeded
``random.Random`` harness with greedy shrinking (pattern per
``tests/property/test_writeback_properties.py``): ops carry all their
randomness, so any subsequence replays deterministically, and a failure
is first reduced to a minimal still-failing subsequence.

Covered per sequence:

- plain filter ``add`` / ``query`` / ``contains_many`` / ``clear``;
- the Section 3.4 algebra (union / intersection / XOR) and the
  XOR-threshold update rule (``bit_difference`` / ``needs_update``);
- counting filter ``add`` / ``discard`` / ``query`` / ``count_estimate``
  / ``to_bloom_filter`` with counter saturation (1-, 2- and 4-bit
  counters) and the packed non-zero mirror invariant;
- serialization: ``to_bytes`` byte-identical to the reference wire form,
  ``from_bytes`` round trips, and the zlib transfer path of
  ``repro.bloom.compressed``.
"""

import random

import pytest

from repro.bloom.algebra import (
    bit_difference,
    bloom_intersection,
    bloom_union,
    bloom_xor,
    needs_update,
)
from repro.bloom.bloom_filter import BloomFilter
from repro.bloom.compressed import compress_filter, decompress_filter
from repro.bloom.counting import CountingBloomFilter

from tests._reference_bloom import (
    RefBloomFilter,
    RefCountingBloomFilter,
    RefHashFamily,
)

SEEDS = range(30)

#: Geometries sampled per seed.  Deliberately includes word-boundary and
#: non-byte-aligned sizes: 61/64/65 straddle one machine word, 509 is a
#: prime that is not a multiple of 8.
GEOMETRIES = [
    (61, 3),
    (64, 4),
    (65, 2),
    (128, 1),
    (509, 5),
    (1024, 8),
]
HASH_SEEDS = [-2, 0, 1, 7, 12345]
COUNTER_BITS = [1, 2, 4]


def _gen_item(rng, serial):
    """Mixed item types — the hash family accepts str, bytes and int."""
    roll = rng.random()
    if roll < 0.6:
        return f"/d{rng.randrange(6)}/f{serial}"
    if roll < 0.8:
        return bytes([rng.randrange(256) for _ in range(rng.randrange(0, 9))])
    return rng.randrange(-(1 << 40), 1 << 40)


def _generate_ops(seed, length=90):
    """A reproducible op list; every op carries its own randomness."""
    rng = random.Random(seed)
    num_bits, num_hashes = GEOMETRIES[rng.randrange(len(GEOMETRIES))]
    hash_seed = HASH_SEEDS[rng.randrange(len(HASH_SEEDS))]
    counter_bits = COUNTER_BITS[rng.randrange(len(COUNTER_BITS))]
    header = ("geometry", (num_bits, num_hashes, hash_seed, counter_bits))

    inserted = []
    ops = [header]
    for serial in range(length):
        item = (
            rng.choice(inserted)
            if inserted and rng.random() < 0.4
            else _gen_item(rng, serial)
        )
        roll = rng.random()
        if roll < 0.22:
            ops.append(("add", (rng.randrange(2), item)))
            inserted.append(item)
        elif roll < 0.40:
            ops.append(("query", (rng.randrange(2), item)))
        elif roll < 0.50:
            ops.append(("cadd", item))
            inserted.append(item)
        elif roll < 0.58:
            ops.append(("cdiscard", item))
        elif roll < 0.64:
            ops.append(("cquery", item))
        elif roll < 0.68:
            ops.append(("cestimate", item))
        elif roll < 0.78:
            kind = ("union", "intersect", "xor")[rng.randrange(3)]
            dest = rng.choice((None, 0, 1))
            ops.append(("algebra", (kind, dest)))
        elif roll < 0.84:
            ops.append(("threshold", rng.randrange(0, 12)))
        elif roll < 0.88:
            batch = [
                rng.choice(inserted) if inserted and rng.random() < 0.5
                else _gen_item(rng, serial * 100 + extra)
                for extra in range(rng.randrange(1, 6))
            ]
            ops.append(("batch", (rng.randrange(2), batch)))
        elif roll < 0.93:
            ops.append(("serialize", rng.randrange(2)))
        elif roll < 0.96:
            ops.append(("cbloom", None))
        elif roll < 0.98:
            ops.append(("clear", rng.randrange(2)))
        else:
            ops.append(("cclear", None))
    return ops


class _Mirror:
    """The live pair + counting filter and their reference twins."""

    def __init__(self, num_bits, num_hashes, hash_seed, counter_bits):
        self.live = [
            BloomFilter(num_bits, num_hashes, hash_seed) for _ in range(2)
        ]
        self.ref = [
            RefBloomFilter(num_bits, num_hashes, hash_seed) for _ in range(2)
        ]
        self.clive = CountingBloomFilter(
            num_bits, num_hashes, hash_seed, counter_bits=counter_bits
        )
        self.cref = RefCountingBloomFilter(
            num_bits, num_hashes, hash_seed, counter_bits=counter_bits
        )
        self.ref_family = RefHashFamily(num_hashes, num_bits, hash_seed)

    def check_state(self):
        """Full bit-for-bit state diff — run after every op."""
        for which in range(2):
            live, ref = self.live[which], self.ref[which]
            if live.bits.to_bytes() != ref.bits.to_bytes():
                return f"filter {which} bit vectors diverged"
            if live.bits.popcount() != ref.bits.popcount():
                return f"filter {which} popcounts diverged"
            if live.num_items != ref.num_items:
                return (
                    f"filter {which} num_items {live.num_items} "
                    f"!= ref {ref.num_items}"
                )
        if self.clive.counters() != self.cref.counters():
            return "counting filter counter arrays diverged"
        if self.clive.num_items != self.cref.num_items:
            return (
                f"counting num_items {self.clive.num_items} "
                f"!= ref {self.cref.num_items}"
            )
        # The packed non-zero mirror must agree with the per-counter truth.
        nonzero = self.clive.nonzero_value
        for index, count in enumerate(self.clive.counters()):
            if bool(nonzero & (1 << index)) != (count > 0):
                return f"non-zero mirror wrong at counter {index}"
        if nonzero >> self.clive.num_counters:
            return "non-zero mirror has bits beyond num_counters"
        return None


def _apply(mirror, op, arg):
    """Apply one op to both sides; return a failure string or None."""
    if op == "add":
        which, item = arg
        live_indices = mirror.live[which].hash_family.indices(item)
        ref_indices = mirror.ref_family.indices(item)
        if live_indices != ref_indices:
            return f"hash indices diverged for {item!r}"
        mirror.live[which].add(item)
        mirror.ref[which].add(item)
    elif op == "query":
        which, item = arg
        got = mirror.live[which].query(item)
        want = mirror.ref[which].query(item)
        if got != want:
            return f"query({item!r}) -> {got}, ref says {want}"
        if (item in mirror.live[which]) != want:
            return f"__contains__({item!r}) disagrees with query"
    elif op == "cadd":
        mirror.clive.add(arg)
        mirror.cref.add(arg)
    elif op == "cdiscard":
        got = mirror.clive.discard(arg)
        want = mirror.cref.discard(arg)
        if got != want:
            return f"counting discard({arg!r}) -> {got}, ref says {want}"
    elif op == "cquery":
        got = mirror.clive.query(arg)
        want = mirror.cref.query(arg)
        if got != want:
            return f"counting query({arg!r}) -> {got}, ref says {want}"
    elif op == "cestimate":
        got = mirror.clive.count_estimate(arg)
        want = mirror.cref.count_estimate(arg)
        if got != want:
            return f"count_estimate({arg!r}) -> {got}, ref says {want}"
    elif op == "algebra":
        kind, dest = arg
        live_fn = {
            "union": bloom_union,
            "intersect": bloom_intersection,
            "xor": bloom_xor,
        }[kind]
        ref_fn = {
            "union": RefBloomFilter.union,
            "intersect": RefBloomFilter.intersection,
            "xor": RefBloomFilter.xor,
        }[kind]
        live_out = live_fn(mirror.live[0], mirror.live[1])
        ref_out = ref_fn(mirror.ref[0], mirror.ref[1])
        if live_out.bits.to_bytes() != ref_out.bits.to_bytes():
            return f"{kind} bit vectors diverged"
        if live_out.num_items != ref_out.num_items:
            return (
                f"{kind} num_items {live_out.num_items} "
                f"!= ref {ref_out.num_items}"
            )
        if dest is not None:
            mirror.live[dest] = live_out
            mirror.ref[dest] = ref_out
    elif op == "threshold":
        got = bit_difference(mirror.live[0], mirror.live[1])
        want = mirror.ref[0].bits.hamming_distance(mirror.ref[1].bits)
        if got != want:
            return f"bit_difference -> {got}, ref hamming {want}"
        if needs_update(mirror.live[0], mirror.live[1], arg) != (want > arg):
            return f"needs_update(threshold={arg}) disagrees with ref"
    elif op == "batch":
        which, items = arg
        got = mirror.live[which].contains_many(items)
        want = [mirror.ref[which].query(item) for item in items]
        if got != want:
            return f"contains_many mismatch: {got} vs ref {want}"
        cgot = mirror.clive.contains_many(items)
        cwant = [mirror.cref.query(item) for item in items]
        if cgot != cwant:
            return f"counting contains_many mismatch: {cgot} vs ref {cwant}"
    elif op == "serialize":
        live = mirror.live[arg]
        raw = live.to_bytes()
        if raw != mirror.ref[arg].to_bytes():
            return f"filter {arg} wire bytes differ from reference"
        restored = BloomFilter.from_bytes(raw)
        if restored != live or restored.num_items != live.num_items:
            return f"filter {arg} from_bytes round trip lost state"
        thawed = decompress_filter(compress_filter(live))
        if thawed != live or thawed.num_items != live.num_items:
            return f"filter {arg} compressed round trip lost state"
    elif op == "cbloom":
        live_proj = mirror.clive.to_bloom_filter()
        ref_proj = mirror.cref.to_bloom_filter()
        if live_proj.bits.to_bytes() != ref_proj.bits.to_bytes():
            return "to_bloom_filter projections diverged"
        if live_proj.num_items != ref_proj.num_items:
            return "to_bloom_filter num_items diverged"
    elif op == "clear":
        mirror.live[arg].clear()
        mirror.ref[arg].clear()
    elif op == "cclear":
        mirror.clive.clear()
        mirror.cref.clear()
    else:  # pragma: no cover - generator and runner must stay in sync
        return f"unknown op {op!r}"
    return None


def _run(seed, ops):
    """Replay ``ops``; return a failure description or ``None``."""
    if not ops or ops[0][0] != "geometry":
        return None  # shrinking dropped the header; nothing to replay
    mirror = _Mirror(*ops[0][1])
    for step, (op, arg) in enumerate(ops[1:], start=1):
        failure = _apply(mirror, op, arg)
        if failure is None:
            failure = mirror.check_state()
        if failure is not None:
            return f"step {step} {op}: {failure}"
    return None


def _shrink(seed, ops):
    """Greedy delta-debug: drop ops while the failure reproduces.

    The geometry header (op 0) is pinned — a sequence without it is
    vacuously passing, so the shrinker only considers real ops.
    """
    current = list(ops)
    shrunk = True
    while shrunk and len(current) > 2:
        shrunk = False
        for index in range(len(current) - 1, 0, -1):
            candidate = current[:index] + current[index + 1:]
            if _run(seed, candidate) is not None:
                current = candidate
                shrunk = True
                break
    return current


@pytest.mark.parametrize("seed", SEEDS)
def test_packed_substrate_matches_reference(seed):
    ops = _generate_ops(seed)
    failure = _run(seed, ops)
    if failure is not None:
        minimal = _shrink(seed, ops)
        pytest.fail(
            f"seed {seed}: {failure}\nminimal failing sequence "
            f"({len(minimal)} ops): {minimal}"
        )


def test_remove_raises_in_lockstep():
    """KeyError parity: removing an absent item fails on both sides."""
    live = CountingBloomFilter(128, 3, seed=5)
    ref = RefCountingBloomFilter(128, 3, seed=5)
    for filt in (live, ref):
        filt.add("/present")
    with pytest.raises(KeyError):
        live.remove("/definitely-absent")
    with pytest.raises(KeyError):
        ref.remove("/definitely-absent")
    live.remove("/present")
    ref.remove("/present")
    assert live.counters() == ref.counters()


def test_shrinker_pins_geometry_and_minimizes():
    """The shrinker reduces a synthetic failure to header + one op."""
    ops = _generate_ops(7, length=40)
    assert ops[0][0] == "geometry"
    target = next(
        (index for index, (op, _) in enumerate(ops) if op == "cadd"), None
    )
    if target is None:
        pytest.skip("sequence has no cadd")
    global _run
    original = _run

    def fake_run(seed, candidate):
        return (
            "synthetic"
            if any(op == "cadd" for op, _ in candidate)
            else None
        )

    _run = fake_run
    try:
        minimal = _shrink(7, ops)
    finally:
        _run = original
    assert len(minimal) == 2
    assert minimal[0][0] == "geometry"
    assert minimal[1][0] == "cadd"
