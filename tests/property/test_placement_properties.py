"""Property-based tests for the hash placement/metadata baselines."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.hash_metadata import HashMetadataCluster
from repro.baselines.hash_placement import HashPlacementGroup


class TestHashPlacementProperties:
    @given(
        members=st.sets(
            st.integers(min_value=0, max_value=100), min_size=1, max_size=8
        ),
        replicas=st.sets(
            st.integers(min_value=200, max_value=400), max_size=40
        ),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=50)
    def test_every_replica_lands_on_a_member(self, members, replicas, seed):
        group = HashPlacementGroup(sorted(members), seed=seed)
        group.place_all(sorted(replicas))
        member_set = set(group.members)
        for replica_id in replicas:
            assert group.host_of(replica_id) in member_set

    @given(
        members=st.sets(
            st.integers(min_value=0, max_value=50), min_size=2, max_size=6
        ),
        replicas=st.sets(
            st.integers(min_value=100, max_value=180), min_size=5, max_size=40
        ),
        newcomer=st.integers(min_value=60, max_value=99),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=40)
    def test_join_migration_count_matches_reassignments(
        self, members, replicas, newcomer, seed
    ):
        group = HashPlacementGroup(sorted(members), seed=seed)
        group.place_all(sorted(replicas))
        before = {r: group.host_of(r) for r in replicas}
        migrated = group.add_member(newcomer)
        moved = sum(
            1 for r in replicas if group.host_of(r) != before[r]
        )
        assert migrated == moved
        # Placement stays consistent with the hash function.
        for r in replicas:
            assert group.host_of(r) == group.target_of(r)

    @given(
        replicas=st.sets(
            st.integers(min_value=100, max_value=400),
            min_size=30,
            max_size=80,
        ),
        seed=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=20)
    def test_hashing_spreads_load(self, replicas, seed):
        group = HashPlacementGroup(list(range(4)), seed=seed)
        group.place_all(sorted(replicas))
        counts = [len(group.replicas_on(m)) for m in group.members]
        assert max(counts) <= len(replicas)  # sanity
        assert min(counts) >= 0
        # No member hosts everything (overwhelming probability).
        assert max(counts) < len(replicas)


class TestHashMetadataProperties:
    @given(
        num_servers=st.integers(min_value=1, max_value=10),
        paths=st.sets(
            st.text(alphabet="abcdef", min_size=1, max_size=6).map(
                lambda s: "/h/" + s
            ),
            max_size=40,
        ),
        seed=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=40)
    def test_lookup_always_finds_inserted(self, num_servers, paths, seed):
        cluster = HashMetadataCluster(num_servers, seed=seed)
        cluster.populate(sorted(paths))
        for path in paths:
            meta = cluster.lookup(path)
            assert meta is not None and meta.path == path

    @given(
        paths=st.sets(
            st.text(alphabet="abc", min_size=1, max_size=5).map(
                lambda s: "/h/" + s
            ),
            min_size=1,
            max_size=30,
        ),
        growth=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=30)
    def test_resizes_never_lose_records(self, paths, growth, seed):
        cluster = HashMetadataCluster(3, seed=seed)
        cluster.populate(sorted(paths))
        for _ in range(growth):
            cluster.add_server()
        cluster.remove_server()
        assert cluster.file_count == len(paths)
        for path in paths:
            assert cluster.lookup(path) is not None
