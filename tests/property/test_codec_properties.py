"""Property tests for the wire codec: random payloads round-trip
bit-identically; random corruption never escapes ``CodecError``.

No hypothesis dependency — seeded ``random.Random`` generators in the
style of the write-back property suite, so failures replay exactly.
"""

import random

import pytest

from repro.bloom.bloom_filter import BloomFilter
from repro.metadata.attributes import FileKind, FileMetadata
from repro.net.codec import CodecError, decode_frame, encode_frame
from repro.prototype.messages import Message, MessageKind


def _random_scalar(rng):
    roll = rng.random()
    if roll < 0.15:
        return None
    if roll < 0.30:
        return rng.random() < 0.5
    if roll < 0.50:
        magnitude = rng.choice([2 ** 8, 2 ** 32, 2 ** 63])
        return rng.randint(-magnitude, magnitude)
    if roll < 0.65:
        # round/struct keeps NaN out (NaN != NaN breaks equality checks).
        return rng.choice([0.0, -1.5, 3.14159, 1e18, -2.0 ** 52])
    if roll < 0.85:
        length = rng.randint(0, 12)
        return "".join(
            rng.choice("abz/._-é漢☃") for _ in range(length)
        )
    return bytes(rng.randrange(256) for _ in range(rng.randint(0, 16)))


def _random_metadata(rng):
    if rng.random() < 0.3:
        return FileMetadata(
            path="/ln/" + str(rng.randrange(1000)),
            inode=rng.randrange(2 ** 48),
            kind=FileKind.SYMLINK,
            symlink_target="/t/" + str(rng.randrange(1000)),
        )
    return FileMetadata(
        path="/f/" + str(rng.randrange(1000)),
        inode=rng.randrange(2 ** 48),
        kind=rng.choice([FileKind.REGULAR, FileKind.DIRECTORY]),
        size=rng.randrange(2 ** 40),
        uid=rng.randrange(2 ** 16),
        gid=rng.randrange(2 ** 16),
        mode=rng.randrange(2 ** 12),
        atime=rng.random() * 1e6,
        mtime=rng.random() * 1e6,
        ctime=rng.random() * 1e6,
        nlink=rng.randrange(1, 8),
    )


def _random_bloom(rng):
    bloom = BloomFilter(
        num_bits=rng.choice([64, 256, 1024]),
        num_hashes=rng.randint(1, 5),
        seed=rng.randrange(100),
    )
    for _ in range(rng.randint(0, 10)):
        bloom.add("/k/" + str(rng.randrange(1000)))
    return bloom


def _random_value(rng, depth):
    if depth > 0 and rng.random() < 0.35:
        if rng.random() < 0.5:
            return [
                _random_value(rng, depth - 1)
                for _ in range(rng.randint(0, 4))
            ]
        return {
            f"k{idx}_{rng.randrange(100)}": _random_value(rng, depth - 1)
            for idx in range(rng.randint(0, 4))
        }
    roll = rng.random()
    if roll < 0.08:
        return _random_metadata(rng)
    if roll < 0.12:
        return _random_bloom(rng)
    return _random_scalar(rng)


def _random_message(rng):
    return Message(
        kind=rng.choice(list(MessageKind)),
        sender=rng.randint(-10, 40),
        payload={
            f"f{idx}": _random_value(rng, depth=3)
            for idx in range(rng.randint(0, 5))
        },
        request_id=rng.randrange(1, 2 ** 32),
        arrival_vtime=rng.random() * 1e4,
        trace=(
            (rng.randrange(2 ** 63), rng.randrange(2 ** 32), rng.randrange(64))
            if rng.random() < 0.5
            else None
        ),
    )


@pytest.mark.parametrize("seed", range(12))
def test_random_messages_roundtrip_bit_identically(seed):
    rng = random.Random(seed)
    for _ in range(40):
        message = _random_message(rng)
        expects_reply = rng.random() < 0.5
        frame = encode_frame(message, expects_reply)
        decoded, decoded_expects = decode_frame(frame)
        assert decoded_expects is expects_reply
        assert decoded.kind is message.kind
        assert decoded.sender == message.sender
        assert decoded.request_id == message.request_id
        assert decoded.arrival_vtime == message.arrival_vtime
        assert decoded.trace == message.trace
        # The canonical-form contract: re-encoding the decoded message
        # reproduces the original frame bit for bit.
        assert encode_frame(decoded, decoded_expects) == frame


@pytest.mark.parametrize("seed", range(8))
def test_corrupted_frames_never_escape_codec_error(seed):
    """Flip/truncate/extend random frames: the decoder must either raise
    ``CodecError`` or return a well-formed Message — nothing else."""
    rng = random.Random(1000 + seed)
    for _ in range(60):
        frame = bytearray(encode_frame(_random_message(rng), True))
        mutation = rng.random()
        if mutation < 0.4 and frame:
            for _ in range(rng.randint(1, 4)):
                frame[rng.randrange(len(frame))] ^= 1 << rng.randrange(8)
        elif mutation < 0.7:
            frame = frame[: rng.randrange(len(frame) + 1)]
        elif mutation < 0.9:
            frame += bytes(
                rng.randrange(256) for _ in range(rng.randint(1, 8))
            )
        else:
            frame = bytearray(
                rng.randrange(256) for _ in range(rng.randint(0, 64))
            )
        try:
            decoded, expects = decode_frame(bytes(frame))
        except CodecError:
            continue
        assert isinstance(decoded, Message)
        assert isinstance(decoded.payload, dict)
        assert isinstance(expects, bool)


def test_garbage_prefixes_fail_fast():
    rng = random.Random(99)
    for _ in range(200):
        blob = bytes(rng.randrange(256) for _ in range(rng.randint(0, 32)))
        try:
            decode_frame(blob)
        except CodecError:
            continue
        # Only a blob that accidentally forms a full valid frame may
        # decode; with random magic bytes that is effectively impossible.
        pytest.fail(f"garbage decoded: {blob!r}")
