"""Property tests: CDC replication vs a dict oracle (ISSUE 8).

No hypothesis in the toolchain, so this is a seeded ``random.Random``
harness with explicit shrinking (same shape as the write-back property
suite).  Each seed generates a random sequence of primary mutations and
hostile delivery events — dropped batches, duplicated batches, reordered
batches (gap injection), and standby crash/restores through the durable
checkpoint document — replayed through the real protocol objects
(:class:`ChangeCapture` → ``apply_ship`` on a :class:`StandbyEndpoint`).

Invariants:

- **exact convergence**: after a faultless final drain the standby's
  namespace equals the primary's, record for record;
- **at-most-once**: the standby's per-home applied counts equal the
  number of unique post-sync sequences — duplicates and replays after a
  crash/restore never re-apply;
- **floor monotonicity**: acks never regress, across crashes included.

On failure the op sequence is greedily shrunk to a minimal
still-failing subsequence before asserting.
"""

import json
import random

import pytest

from repro.core import checkpoint as core_checkpoint
from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.metadata.attributes import FileMetadata
from repro.replication import ChangeCapture, StandbyEndpoint
from repro.replication.audit import diff_states, snapshot_state
from repro.replication.cdc import entry_to_wire

SEEDS = range(20)

NUM_SERVERS = 4
SEED_PATHS = [f"/pr/d{i % 4}/f{i}" for i in range(40)]


def _build_primary(seed):
    config = GHBAConfig(
        max_group_size=4,
        expected_files_per_mds=200,
        lru_capacity=128,
        lru_filter_bits=1 << 10,
        seed=seed,
    )
    cluster = GHBACluster(NUM_SERVERS, config, seed=seed)
    cluster.populate(SEED_PATHS)
    cluster.synchronize_replicas(force=True)
    return cluster


def _generate_ops(seed, length=90):
    """A reproducible op list; any subsequence replays deterministically
    during shrinking (every op is self-contained)."""
    rng = random.Random(seed)
    ops = []
    serial = 0
    gen = 0
    for _ in range(length):
        roll = rng.random()
        if roll < 0.34:
            serial += 1
            ops.append(("create", serial, rng.randrange(1 << 30)))
        elif roll < 0.46:
            ops.append(("delete", rng.randrange(1 << 30), 0))
        elif roll < 0.52:
            gen += 1
            ops.append(("rename", rng.randrange(4), gen))
        elif roll < 0.70:
            ops.append(("ship", rng.randrange(1 << 30), "ok"))
        elif roll < 0.78:
            ops.append(("ship", rng.randrange(1 << 30), "drop"))
        elif roll < 0.86:
            ops.append(("ship", rng.randrange(1 << 30), "dup"))
        elif roll < 0.94:
            ops.append(("ship", rng.randrange(1 << 30), "reorder"))
        else:
            ops.append(("crash", 0, 0))
    return ops


def _ship_once(capture, standby, floors, home, mode):
    """Deliver one batch under ``mode``; returns a failure string or
    ``None``.  ``floors`` is the primary-side (shipper) ack map."""
    floor = floors.get(home, 0)
    entries = capture.pending(home, floor)[:16]
    if not entries:
        return None
    wire = [entry_to_wire(e) for e in entries]
    if mode == "drop":
        return None  # the batch never arrives; floor stays put
    if mode == "reorder" and len(wire) > 1:
        wire = wire[1:] + wire[:1]  # head arrives last: a gap
    deliveries = 2 if mode == "dup" else 1
    for _ in range(deliveries):
        reply = standby.apply_ship(
            {"home": home, "epoch": 1, "acked": floor, "entries": wire}
        )
        if reply.get("fenced"):
            return f"unexpected fencing on home {home}"
        new_floor = int(reply["acked"])
        if new_floor < floors.get(home, 0):
            return (
                f"ack regressed on home {home}: "
                f"{floors.get(home, 0)} -> {new_floor}"
            )
        if new_floor > floors.get(home, 0):
            floors[home] = new_floor
            capture.truncate(home, new_floor)
    return None


def _run(seed, ops):
    """Replay ``ops``; return a failure description or ``None``."""
    primary = _build_primary(seed)
    capture = ChangeCapture(keep_history=True)
    capture.attach(primary)
    standby = StandbyEndpoint(restore_seed=seed)
    base_seqs = {h: capture.last_seq(h) for h in capture.homes()}
    standby.apply_sync(
        {
            "epoch": 1,
            "checkpoint": json.dumps(core_checkpoint.snapshot(primary)),
            "base_seqs": base_seqs,
        }
    )
    floors = dict(base_seqs)
    dirs = {k: f"/pr/d{k}" for k in range(4)}

    for op, a, b in ops:
        if op == "create":
            primary.insert_file(
                FileMetadata(path=f"/pr/new/{seed}_{a}", inode=10_000 + a)
            )
        elif op == "delete":
            live = sorted(snapshot_state(primary))
            if live:
                primary.delete_file(live[a % len(live)])
        elif op == "rename":
            old = dirs[a]
            new = f"/pr/d{a}-g{b}"
            if primary.rename_subtree(old, new):
                dirs[a] = new
        elif op == "ship":
            homes = capture.homes()
            if not homes:
                continue
            failure = _ship_once(
                capture, standby, floors, homes[a % len(homes)], b
            )
            if failure:
                return failure
        elif op == "crash":
            # Durable round-trip through the checkpoint document: the
            # restored endpoint must dedup any replay that follows.
            document = json.loads(json.dumps(standby.checkpoint_doc()))
            standby = StandbyEndpoint.restore_doc(
                document, restore_seed=seed
            )

    # Faultless final drain: every pending entry ships in order.
    for _ in range(10_000):
        remaining = capture.pending_total(floors)
        if remaining == 0:
            break
        for home in capture.homes():
            failure = _ship_once(capture, standby, floors, home, "ok")
            if failure:
                return failure
    else:
        return "drain never converged"

    divergences = diff_states(
        snapshot_state(primary), snapshot_state(standby.cluster)
    )
    if divergences:
        return f"standby != primary after drain: {divergences[:3]}"
    # At-most-once: unique post-sync seqs, applied exactly once.  The
    # applied counter survives crashes (it rides the checkpoint doc).
    expected_applies = sum(
        capture.last_seq(h) - base_seqs.get(h, 0) for h in capture.homes()
    )
    if standby.applied_total != expected_applies:
        return (
            f"applied_total {standby.applied_total} != unique entries "
            f"{expected_applies} (double- or under-apply)"
        )
    return None


def _shrink(seed, ops):
    """Greedy delta-debug: drop ops while the failure reproduces."""
    current = list(ops)
    shrunk = True
    while shrunk and len(current) > 1:
        shrunk = False
        for index in range(len(current) - 1, -1, -1):
            candidate = current[:index] + current[index + 1:]
            if candidate and _run(seed, candidate) is not None:
                current = candidate
                shrunk = True
                break
    return current


@pytest.mark.parametrize("seed", SEEDS)
def test_hostile_delivery_converges_exactly_once(seed):
    ops = _generate_ops(seed)
    failure = _run(seed, ops)
    if failure is not None:
        minimal = _shrink(seed, ops)
        pytest.fail(
            f"seed {seed}: {failure}\nminimal failing sequence "
            f"({len(minimal)} ops): {minimal}"
        )


def test_oracle_is_not_vacuous():
    """A standby that skips an apply must be caught by the checker:
    replay a run but lie about one home's floor (mimicking an ack for
    an entry that was never applied)."""
    primary = _build_primary(3)
    capture = ChangeCapture(keep_history=True)
    capture.attach(primary)
    standby = StandbyEndpoint(restore_seed=3)
    standby.apply_sync(
        {
            "epoch": 1,
            "checkpoint": json.dumps(core_checkpoint.snapshot(primary)),
            "base_seqs": {h: capture.last_seq(h) for h in capture.homes()},
        }
    )
    home = primary.insert_file(FileMetadata(path="/pr/skipped", inode=1))
    # Never ship it; the states must now differ and diff_states says so.
    divergences = diff_states(
        snapshot_state(primary), snapshot_state(standby.cluster)
    )
    assert any("/pr/skipped" in d for d in divergences)
