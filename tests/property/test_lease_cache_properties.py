"""Property tests for :class:`repro.gateway.cache.GatewayCache`.

ISSUE 4 satellite 1: seeded random operation sequences (plain
``random.Random`` — no new dependencies) drive the cache alongside a
trivially-correct model dict, checking after every step that

    every fresh cache answer ⊆ the model

i.e. whatever the cache serves as a hit must be exactly what the model
says the last authoritative write for that path was.  The cache may
*forget* (LRU eviction, TTL expiry, invalidation) — the model never
does — so the subset direction is the safety property: the cache must
never *remember wrong*.

The path alphabet is chosen to provoke the classic subtree traps:
``/a/b`` vs ``/a/bc`` share a string prefix but are not ancestor and
descendant, so ``invalidate_subtree("/a/b")`` must kill the former and
spare the latter.
"""

import itertools
import random

import pytest

from repro.gateway.cache import GatewayCache

#: Small component pool with deliberate prefix collisions (b vs bc,
#: c vs ca) so random subtree invalidations exercise the boundary.
COMPONENTS = ("a", "b", "bc", "c", "ca", "d")


def _paths(max_depth=3):
    out = []
    for depth in range(1, max_depth + 1):
        for combo in itertools.product(COMPONENTS, repeat=depth):
            out.append("/" + "/".join(combo))
    return out


PATHS = _paths()


def _subtree_victims(model, prefix):
    return [
        path
        for path in model
        if path == prefix or path.startswith(prefix + "/")
    ]


def _check_subset(cache, model, now, label):
    """Every fresh cache answer must match the model exactly."""
    for path in PATHS:
        entry = cache.peek(path)
        if entry is None or not entry.fresh(now):
            continue  # forgotten or expired: always allowed
        assert path in model, f"{label}: cache serves deleted {path!r}"
        want_home, want_negative = model[path]
        assert entry.negative == want_negative, (
            f"{label}: polarity mismatch for {path!r}"
        )
        if not want_negative:
            assert entry.home_id == want_home, (
                f"{label}: stale home for {path!r}"
            )


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 1337])
def test_cache_never_remembers_wrong(seed):
    rng = random.Random(seed)
    cache = GatewayCache(capacity=32, lease_ttl_s=5.0, negative_ttl_s=1.0)
    model = {}  # path -> (home_id, negative)
    now = 0.0
    for step in range(600):
        now += rng.random() * 0.5
        op = rng.random()
        path = rng.choice(PATHS)
        if op < 0.40:  # authoritative positive write (create/refresh)
            home = rng.randrange(8)
            cache.put(path, home, record=None, now=now, hot=rng.random() < 0.1)
            model[path] = (home, False)
        elif op < 0.55:  # authoritative negative (path proven absent)
            cache.put_negative(path, now)
            model[path] = (None, True)
        elif op < 0.75:  # exact-path invalidation (delete/create event)
            cache.invalidate(path)
            model.pop(path, None)
        elif op < 0.90:  # subtree invalidation (rename event)
            prefix = rng.choice(PATHS)
            cache.invalidate_subtree(prefix)
            for victim in _subtree_victims(model, prefix):
                del model[victim]
        else:  # read probe: a hit must agree with the model
            lookup = cache.get(path, now)
            if lookup.hit:
                assert path in model, f"hit on deleted {path!r}"
                want_home, want_negative = model[path]
                assert lookup.negative == want_negative
                if not want_negative:
                    assert lookup.home_id == want_home
        _check_subset(cache, model, now, f"seed={seed} step={step}")


@pytest.mark.parametrize("seed", [3, 11])
def test_subtree_invalidation_respects_component_boundary(seed):
    """Random rename storms never bleed across /a/b vs /a/bc."""
    rng = random.Random(seed)
    # Capacity exceeds len(PATHS): no LRU eviction, so presence is exact.
    cache = GatewayCache(capacity=512, lease_ttl_s=100.0)
    model = {}
    now = 1.0
    for path in PATHS:
        home = rng.randrange(8)
        cache.put(path, home, record=None, now=now)
        model[path] = (home, False)
    for _ in range(100):
        prefix = rng.choice(PATHS)
        cache.invalidate_subtree(prefix)
        for victim in _subtree_victims(model, prefix):
            del model[victim]
        # Survivors must still be served, victims must be gone.
        for path, (home, _negative) in model.items():
            entry = cache.peek(path)
            assert entry is not None and entry.home_id == home
        assert len(cache) == len(model)


@pytest.mark.parametrize("seed", [0, 9])
def test_clamp_bounds_every_lease(seed):
    """While clamped, no lease — old, refreshed, pinned — outlives the
    clamp; after release, new leases get full TTLs again."""
    rng = random.Random(seed)
    cache = GatewayCache(capacity=64, lease_ttl_s=50.0, hot_lease_ttl_s=200.0)
    now = 0.0
    for _ in range(40):
        cache.put(rng.choice(PATHS), rng.randrange(8), None, now,
                  hot=rng.random() < 0.3)
    clamp_s = 0.25
    cache.clamp_ttl(clamp_s, now)
    for step in range(200):
        now += rng.random() * 0.05
        limit = now + clamp_s
        path = rng.choice(PATHS)
        draw = rng.random()
        if draw < 0.4:
            cache.put(path, rng.randrange(8), None, now,
                      hot=rng.random() < 0.3)
        elif draw < 0.6:
            cache.put_negative(path, now)
        elif draw < 0.8:
            cache.pin(path, now)
        for candidate in PATHS:
            entry = cache.peek(candidate)
            if entry is not None:
                assert entry.expires_at <= limit + 1e-9, (
                    f"seed={seed} step={step}: {candidate!r} outlives clamp"
                )
    cache.release_ttl_clamp()
    entry = cache.put("/a", 1, None, now)
    assert entry.expires_at == pytest.approx(now + 50.0)
