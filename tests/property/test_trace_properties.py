"""Property-based tests for trace generation and TIF intensification."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.profiles import PROFILES
from repro.traces.records import MetadataOp
from repro.traces.scaling import intensify
from repro.traces.synthetic import generate_trace
from repro.traces.workloads import compute_stats

profile_names = st.sampled_from(sorted(PROFILES))


class TestGeneratorProperties:
    @given(
        profile_name=profile_names,
        num_files=st.integers(min_value=10, max_value=300),
        num_ops=st.integers(min_value=0, max_value=400),
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_op_count_and_monotone_time(
        self, profile_name, num_files, num_ops, seed
    ):
        records = generate_trace(
            PROFILES[profile_name], num_files, num_ops, seed=seed
        )
        assert len(records) == num_ops
        times = [r.timestamp for r in records]
        assert times == sorted(times)

    @given(
        profile_name=profile_names,
        seed=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=20, deadline=None)
    def test_closes_never_precede_their_open(self, profile_name, seed):
        records = generate_trace(PROFILES[profile_name], 80, 300, seed=seed)
        open_balance = {}
        for record in records:
            if record.op is MetadataOp.OPEN:
                open_balance[record.path] = open_balance.get(record.path, 0) + 1
            elif record.op is MetadataOp.CLOSE:
                assert open_balance.get(record.path, 0) > 0
                open_balance[record.path] -= 1


class TestIntensifyProperties:
    @given(
        tif=st.integers(min_value=1, max_value=6),
        num_ops=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_histogram_scales_exactly(self, tif, num_ops, seed):
        """Paper Section 4: the op histogram is preserved, intensity x TIF."""
        base = generate_trace(PROFILES["HP"], 50, num_ops, seed=seed)
        scaled = intensify(base, tif)
        base_stats = compute_stats(base)
        scaled_stats = compute_stats(scaled)
        for op in MetadataOp:
            assert scaled_stats.count(op) == tif * base_stats.count(op)
        assert scaled_stats.duration == base_stats.duration

    @given(tif=st.integers(min_value=2, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_subtrace_namespaces_pairwise_disjoint(self, tif):
        base = generate_trace(PROFILES["INS"], 50, 150, seed=3)
        scaled = intensify(base, tif)
        namespaces = {}
        for record in scaled:
            namespaces.setdefault(record.subtrace, set()).add(record.path)
        subtraces = sorted(namespaces)
        assert subtraces == list(range(tif))
        for i in subtraces:
            for j in subtraces:
                if i < j:
                    assert not (namespaces[i] & namespaces[j])

    @given(
        tif=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=10),
    )
    @settings(max_examples=20, deadline=None)
    def test_output_sorted_by_timestamp(self, tif, seed):
        base = generate_trace(PROFILES["RES"], 40, 120, seed=seed)
        times = [r.timestamp for r in intensify(base, tif)]
        assert times == sorted(times)
