"""Property tests: per-tenant admission vs a weighted max-min oracle.

No hypothesis in the toolchain, so this is a seeded ``random.Random``
harness with explicit shrinking (the pattern of
``test_writeback_properties.py``): each seed generates a random sequence
of demand ticks — per tick, each tenant wants 0..8 tokens at a random
virtual instant — and replays it through a
:class:`FairAdmissionController` with a zero-capacity queue, so every
tick's outcome is exactly the allocator's split of that instant's
refilled tokens.  Invariants checked against the max-min oracle on every
tick:

- **weighted floor** — a tenant with unmet demand never receives less
  than ``min(demand, floor(tokens * w / W))``, its weighted share of
  the tick's tokens among demanding tenants;
- **work conservation** — admissions total exactly
  ``min(tokens, total demand)``: tokens idle tenants do not claim are
  spent on the hungry, never parked;
- **demand bound** — no tenant is ever granted more than it asked;
- **explicit sheds** — everything not admitted sheds with cause
  ``queue_full`` (capacity 0), and the running stats reconcile exactly
  (``submitted == admitted + shed``, per tenant and in aggregate).

On failure the harness greedily shrinks the tick sequence to a minimal
still-failing subsequence before asserting, so the report is actionable.
"""

import random
from collections import Counter

import pytest

from repro.gateway.admission import (
    SHED_QUEUE_FULL,
    FairAdmissionController,
)

SEEDS = range(24)

TENANTS = ["a", "b", "c", "d"]
WEIGHTS = {"a": 1.0, "b": 1.0, "c": 2.0, "d": 0.5}


def _generate_ticks(seed, length=80):
    """A reproducible demand schedule; each tick carries its own
    timestamp so any subsequence replays deterministically while
    shrinking."""
    rng = random.Random(seed)
    ticks = []
    now = 0.0
    for _ in range(length):
        now += 0.02 + rng.random() * 0.1
        demands = {}
        for tenant in TENANTS:
            if rng.random() < 0.7:
                count = rng.randrange(0, 9)
                if count:
                    demands[tenant] = count
        ticks.append((now, demands))
    return ticks


def _run(seed, ticks):
    """Replay ``ticks``; return a failure description or ``None``."""
    controller = FairAdmissionController(
        rate_per_s=40.0,
        burst=8.0,
        queue_capacity=0,
        weights=WEIGHTS,
    )
    for now, demands in ticks:
        items = [
            (tenant, f"{tenant}{index}")
            for tenant in sorted(demands)
            for index in range(demands[tenant])
        ]
        tokens = int(controller.bucket.tokens(now))
        result = controller.submit_tick(items, now)
        admitted = Counter(tenant for tenant, _ in result.admitted)
        total_demand = sum(demands.values())
        expected = min(tokens, total_demand)
        if sum(admitted.values()) != expected:
            return (
                f"work conservation broken at t={now:.3f}: admitted "
                f"{sum(admitted.values())} of min(tokens={tokens}, "
                f"demand={total_demand})"
            )
        total_weight = sum(WEIGHTS[t] for t in demands)
        for tenant, demand in demands.items():
            floor = min(
                demand, int(tokens * WEIGHTS[tenant] / total_weight)
            )
            if admitted[tenant] < floor:
                return (
                    f"floor violated at t={now:.3f}: {tenant} got "
                    f"{admitted[tenant]} < floor {floor} "
                    f"(demand {demand}, tokens {tokens})"
                )
            if admitted[tenant] > demand:
                return (
                    f"over-grant at t={now:.3f}: {tenant} got "
                    f"{admitted[tenant]} for demand {demand}"
                )
        for tenant, _, cause in result.shed:
            if cause != SHED_QUEUE_FULL:
                return (
                    f"unexpected shed cause {cause!r} at t={now:.3f} "
                    f"(capacity-0 queue only sheds {SHED_QUEUE_FULL!r})"
                )
    stats = controller.stats
    if stats.admitted + stats.shed != stats.submitted:
        return (
            f"aggregate reconciliation broken: {stats.admitted} + "
            f"{stats.shed} != {stats.submitted}"
        )
    for tenant in controller.tenants():
        tenant_stats = controller.tenant_stats(tenant)
        if (
            tenant_stats.admitted + tenant_stats.shed
            != tenant_stats.submitted
        ):
            return (
                f"tenant {tenant} reconciliation broken: "
                f"{tenant_stats.admitted} + {tenant_stats.shed} != "
                f"{tenant_stats.submitted}"
            )
    return None


def _shrink(seed, ticks, failure):
    """Greedy delta-debug: drop ticks while the failure reproduces."""
    current = list(ticks)
    shrunk = True
    while shrunk and len(current) > 1:
        shrunk = False
        for index in range(len(current) - 1, -1, -1):
            candidate = current[:index] + current[index + 1:]
            if candidate and _run(seed, candidate) is not None:
                current = candidate
                shrunk = True
                break
    return current


@pytest.mark.parametrize("seed", SEEDS)
def test_random_demand_respects_max_min_oracle(seed):
    ticks = _generate_ticks(seed)
    failure = _run(seed, ticks)
    if failure is not None:
        minimal = _shrink(seed, ticks, failure)
        pytest.fail(
            f"seed {seed}: {failure}\nminimal failing schedule "
            f"({len(minimal)} ticks): {minimal}"
        )


def test_idle_tenants_redistribute_to_the_hungry():
    """Work conservation in the directed case: with three of four
    tenants idle, the demanding tenant takes the whole tick's tokens —
    not just its own quarter-share."""
    controller = FairAdmissionController(
        rate_per_s=40.0, burst=8.0, queue_capacity=0, weights=WEIGHTS
    )
    # Register every tenant so the controller knows the idle ones exist.
    for tenant in TENANTS:
        controller.set_weight(tenant, WEIGHTS[tenant])
    result = controller.submit_tick(
        [("d", f"d{i}") for i in range(8)], 0.0
    )
    assert len(result.admitted) == 8  # full burst, weight 0.5 or not
    assert not result.shed


def test_shrinker_finds_minimal_schedules():
    """The shrinker itself works: a synthetic always-failing predicate
    reduces to a single tick (guards against a shrinker that silently
    stops shrinking and reports giant schedules)."""
    ticks = _generate_ticks(99, length=30)
    target = [t for t in ticks if "c" in t[1]]
    if not target:
        pytest.skip("schedule never demands from tenant c")

    def fake_run(seed, candidate):
        return (
            "synthetic"
            if any("c" in demands for _, demands in candidate)
            else None
        )

    global _run
    original = _run
    _run = fake_run
    try:
        minimal = _shrink(99, ticks, "synthetic")
    finally:
        _run = original
    assert len(minimal) == 1
    assert "c" in minimal[0][1]
