"""Shared fixtures: small, fast cluster configurations."""

from __future__ import annotations

import pytest

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig


@pytest.fixture
def small_config() -> GHBAConfig:
    """A configuration sized for fast tests."""
    return GHBAConfig(
        max_group_size=4,
        bits_per_file=16.0,
        expected_files_per_mds=512,
        lru_capacity=128,
        lru_filter_bits=1 << 10,
        lru_num_hashes=4,
        update_threshold_bits=32,
        seed=7,
    )


@pytest.fixture
def small_cluster(small_config: GHBAConfig) -> GHBACluster:
    """A 10-server cluster in groups of <= 4, unpopulated."""
    return GHBACluster(10, small_config, seed=7)


@pytest.fixture
def populated_cluster(small_cluster: GHBACluster):
    """A populated, synchronized cluster plus its placement map."""
    paths = [f"/fs/dir{i % 6}/file{i}" for i in range(600)]
    placement = small_cluster.populate(paths)
    small_cluster.synchronize_replicas(force=True)
    return small_cluster, placement
