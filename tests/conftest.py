"""Shared fixtures: small, fast cluster configurations."""

from __future__ import annotations

import random

import pytest

from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig


@pytest.fixture
def small_config() -> GHBAConfig:
    """A configuration sized for fast tests."""
    return GHBAConfig(
        max_group_size=4,
        bits_per_file=16.0,
        expected_files_per_mds=512,
        lru_capacity=128,
        lru_filter_bits=1 << 10,
        lru_num_hashes=4,
        update_threshold_bits=32,
        seed=7,
    )


@pytest.fixture
def small_cluster(small_config: GHBAConfig) -> GHBACluster:
    """A 10-server cluster in groups of <= 4, unpopulated."""
    return GHBACluster(10, small_config, seed=7)


@pytest.fixture
def populated_cluster(small_cluster: GHBACluster):
    """A populated, synchronized cluster plus its placement map."""
    paths = [f"/fs/dir{i % 6}/file{i}" for i in range(600)]
    placement = small_cluster.populate(paths)
    small_cluster.synchronize_replicas(force=True)
    return small_cluster, placement


def run_cohort_scenario(
    seed,
    size=3,
    plan=None,
    ops=800,
    rate_per_s=400.0,
    publish_invalidations=True,
    lookup_fraction=0.80,
):
    """Deterministic cohort simulator (ISSUE 4 test harness).

    Interleaves seeded random lookups and mutations across the members
    of a :class:`~repro.gateway.cohort.GatewayCohort` driven under
    ``plan``, auditing every answer with the same
    :class:`~repro.gateway.staleness.StalenessAuditor` the bench uses.
    Returns ``(cohort, auditor)`` after a quiescing settle.

    Everything — trace, fault draws, protocol schedule — derives from
    ``seed``, so two calls with equal arguments must produce
    bit-identical counters (the determinism test pins exactly that).
    """
    from repro.faults import PlanFaultInjector
    from repro.gateway import CohortConfig, GatewayConfig, GatewayCohort
    from repro.gateway.staleness import StalenessAuditor

    config = GHBAConfig(
        max_group_size=4,
        expected_files_per_mds=200,
        lru_capacity=256,
        lru_filter_bits=1 << 11,
        seed=seed,
    )
    cluster = GHBACluster(8, config, seed=seed)
    live = [f"/fs/d{i % 8}/f{i}" for i in range(200)]
    hot = list(live[:40])
    cluster.populate(live)
    cluster.synchronize_replicas(force=True)

    cohort_config = CohortConfig(
        publish_invalidations=publish_invalidations,
        gateway=GatewayConfig(lease_ttl_s=60.0, cache_capacity=1024),
    )
    faults = (
        PlanFaultInjector(plan, metrics=cluster.metrics)
        if plan is not None
        else None
    )
    cohort = GatewayCohort(cluster, size, cohort_config, faults=faults)
    auditor = StalenessAuditor(cluster, cohort_config.staleness_bound_s)

    rng = random.Random(seed)
    step_s = cohort_config.heartbeat_interval_s / 2.0
    now = 0.0
    next_step = 0.0
    serial = 0
    # Old names of recently-mutated paths.  Reading these is what makes
    # staleness *observable*: a member still holding the old lease will
    # serve it until the invalidation (or the clamp) kills it.
    ghosts = []
    for _ in range(ops):
        now += rng.expovariate(rate_per_s)
        while next_step <= now:
            for member_id, responses in cohort.step(next_step).items():
                for response in responses:
                    auditor.audit(response, next_step, member_id)
            next_step += step_s
        member = cohort.members[rng.randrange(size)]
        draw = rng.random()
        if draw < lookup_fraction or not live:
            probe = rng.random()
            if ghosts and probe < 0.25:
                target = rng.choice(ghosts)
            elif hot and probe < 0.85:
                target = rng.choice(hot)
            else:
                target = rng.choice(live)
            auditor.audit(member.lookup(target, now), now, member.member_id)
        elif draw < lookup_fraction + 0.08:
            serial += 1
            path = f"/fs/d{serial % 8}/new{serial}"
            member.create(path, now)
            auditor.note_mutation("create", path, now)
            live.append(path)
        elif draw < lookup_fraction + 0.16 and live:
            # Prefer hot victims: they are cached at every member, so a
            # delete exercises remote invalidation where it matters.
            pool = hot if hot and rng.random() < 0.5 else live
            victim = pool[rng.randrange(len(pool))]
            live.remove(victim)
            if victim in hot:
                hot.remove(victim)
            member.delete(victim, now)
            auditor.note_mutation("delete", victim, now)
            ghosts.append(victim)
        elif live:
            pool = hot if hot and rng.random() < 0.5 else live
            source = pool[rng.randrange(len(pool))]
            index = live.index(source)
            renamed = source + ".r"
            member.rename(source, renamed, now)
            auditor.note_mutation("rename", source, now, new_path=renamed)
            live[index] = renamed
            if source in hot:
                hot[hot.index(source)] = renamed
            ghosts.append(source)
        del ghosts[:-32]  # only recent mutations are interesting probes
    end = cohort.settle(now)
    for member_id, responses in cohort.step(end).items():
        for response in responses:
            auditor.audit(response, end, member_id)
    return cohort, auditor


@pytest.fixture
def cohort_scenario():
    """The scenario driver as a fixture, shared across integration tests."""
    return run_cohort_scenario
