"""Frozen per-bit reference Bloom implementation (the differential oracle).

This is a verbatim-semantics copy of the pre-packed substrate
(``repro.bloom`` as of PR 8): a ``bytearray``-backed :class:`RefBitVector`
probed one bit at a time, plus the plain and counting Bloom filters built
on it.  The live substrate was rebuilt on packed big-int bitsets (ISSUE 9);
the property suite in ``tests/property/test_bloom_differential.py`` replays
random op sequences through both implementations and requires bit-for-bit
agreement — state, popcounts, query answers, algebra results, and the
serialized wire form.

Do NOT "fix" or modernize this module: its value is that it does not
change.  It deliberately has no dependency on ``repro.bloom`` internals —
only the hash construction is shared by contract (blake2b double hashing),
re-implemented here so a hashing regression in the live tree cannot hide.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Iterator, List, Tuple


def _digest64(data: bytes, salt: bytes) -> int:
    return int.from_bytes(
        hashlib.blake2b(data, digest_size=8, key=salt).digest(), "big"
    )


class RefHashFamily:
    """Kirsch-Mitzenmacher double hashing, identical to the live family."""

    __slots__ = ("num_hashes", "num_bits", "seed", "_salt1", "_salt2")

    def __init__(self, num_hashes: int, num_bits: int, seed: int = 0) -> None:
        self.num_hashes = num_hashes
        self.num_bits = num_bits
        self.seed = seed
        self._salt1 = seed.to_bytes(8, "big", signed=True) + b"\x01"
        self._salt2 = seed.to_bytes(8, "big", signed=True) + b"\x02"

    def _encode(self, item: object) -> bytes:
        if isinstance(item, bytes):
            return item
        if isinstance(item, str):
            return item.encode("utf-8")
        if isinstance(item, int):
            return item.to_bytes(16, "big", signed=True)
        raise TypeError(f"items must be str, bytes or int, got {type(item).__name__}")

    def indices(self, item: object) -> List[int]:
        data = self._encode(item)
        h1 = _digest64(data, self._salt1)
        h2 = _digest64(data, self._salt2) | 1
        m = self.num_bits
        return [(h1 + i * h2) % m for i in range(self.num_hashes)]

    def parameters(self) -> Tuple[int, int, int]:
        return (self.num_hashes, self.num_bits, self.seed)


class RefBitVector:
    """The pre-packed bit vector: a ``bytearray``, one bit per probe."""

    __slots__ = ("_num_bits", "_bytes")

    def __init__(self, num_bits: int) -> None:
        if num_bits <= 0:
            raise ValueError(f"num_bits must be positive, got {num_bits}")
        self._num_bits = num_bits
        self._bytes = bytearray((num_bits + 7) // 8)

    @property
    def num_bits(self) -> int:
        return self._num_bits

    def _check_index(self, index: int) -> int:
        if index < 0:
            index += self._num_bits
        if not 0 <= index < self._num_bits:
            raise IndexError(
                f"bit index {index} out of range for vector of {self._num_bits} bits"
            )
        return index

    def get(self, index: int) -> bool:
        index = self._check_index(index)
        return bool(self._bytes[index >> 3] & (1 << (index & 7)))

    def set(self, index: int) -> None:
        index = self._check_index(index)
        self._bytes[index >> 3] |= 1 << (index & 7)

    def clear(self, index: int) -> None:
        index = self._check_index(index)
        self._bytes[index >> 3] &= ~(1 << (index & 7)) & 0xFF

    def __len__(self) -> int:
        return self._num_bits

    def __iter__(self) -> Iterator[bool]:
        for i in range(self._num_bits):
            yield self.get(i)

    def reset(self) -> None:
        for i in range(len(self._bytes)):
            self._bytes[i] = 0

    def popcount(self) -> int:
        return sum(bin(byte).count("1") for byte in self._bytes)

    def fill_ratio(self) -> float:
        return self.popcount() / self._num_bits

    def copy(self) -> "RefBitVector":
        clone = RefBitVector(self._num_bits)
        clone._bytes[:] = self._bytes
        return clone

    def _check_compatible(self, other: "RefBitVector") -> None:
        if not isinstance(other, RefBitVector):
            raise TypeError(f"expected RefBitVector, got {type(other).__name__}")
        if other._num_bits != self._num_bits:
            raise ValueError(
                "bit vectors have different lengths: "
                f"{self._num_bits} vs {other._num_bits}"
            )

    def __or__(self, other: "RefBitVector") -> "RefBitVector":
        self._check_compatible(other)
        result = RefBitVector(self._num_bits)
        result._bytes[:] = bytes(a | b for a, b in zip(self._bytes, other._bytes))
        return result

    def __and__(self, other: "RefBitVector") -> "RefBitVector":
        self._check_compatible(other)
        result = RefBitVector(self._num_bits)
        result._bytes[:] = bytes(a & b for a, b in zip(self._bytes, other._bytes))
        return result

    def __xor__(self, other: "RefBitVector") -> "RefBitVector":
        self._check_compatible(other)
        result = RefBitVector(self._num_bits)
        result._bytes[:] = bytes(a ^ b for a, b in zip(self._bytes, other._bytes))
        return result

    def hamming_distance(self, other: "RefBitVector") -> int:
        self._check_compatible(other)
        return sum(bin(a ^ b).count("1") for a, b in zip(self._bytes, other._bytes))

    def is_subset_of(self, other: "RefBitVector") -> bool:
        self._check_compatible(other)
        return all((a & ~b) == 0 for a, b in zip(self._bytes, other._bytes))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RefBitVector):
            return NotImplemented
        return self._num_bits == other._num_bits and self._bytes == other._bytes

    def __hash__(self) -> int:
        return hash((self._num_bits, bytes(self._bytes)))

    def to_bytes(self) -> bytes:
        return bytes(self._bytes)

    @classmethod
    def from_bytes(cls, num_bits: int, payload: bytes) -> "RefBitVector":
        expected = (num_bits + 7) // 8
        if len(payload) != expected:
            raise ValueError(
                f"payload has {len(payload)} bytes, expected {expected} "
                f"for {num_bits} bits"
            )
        vector = cls(num_bits)
        vector._bytes[:] = payload
        return vector


class RefBloomFilter:
    """The pre-packed plain Bloom filter (per-bit probes)."""

    __slots__ = ("_bits", "_hashes", "_num_items")

    def __init__(self, num_bits: int, num_hashes: int, seed: int = 0) -> None:
        self._bits = RefBitVector(num_bits)
        self._hashes = RefHashFamily(num_hashes, num_bits, seed)
        self._num_items = 0

    @property
    def num_bits(self) -> int:
        return self._bits.num_bits

    @property
    def num_hashes(self) -> int:
        return self._hashes.num_hashes

    @property
    def seed(self) -> int:
        return self._hashes.seed

    @property
    def num_items(self) -> int:
        return self._num_items

    @property
    def bits(self) -> RefBitVector:
        return self._bits

    def add(self, item: object) -> None:
        for index in self._hashes.indices(item):
            self._bits.set(index)
        self._num_items += 1

    def update(self, items: Iterable[object]) -> None:
        for item in items:
            self.add(item)

    def query(self, item: object) -> bool:
        return all(self._bits.get(index) for index in self._hashes.indices(item))

    def __contains__(self, item: object) -> bool:
        return self.query(item)

    def clear(self) -> None:
        self._bits.reset()
        self._num_items = 0

    def fill_ratio(self) -> float:
        return self._bits.fill_ratio()

    def copy(self) -> "RefBloomFilter":
        clone = RefBloomFilter(self.num_bits, self.num_hashes, self.seed)
        clone._bits = self._bits.copy()
        clone._num_items = self._num_items
        return clone

    def to_bytes(self) -> bytes:
        header = (
            self.num_bits.to_bytes(8, "big")
            + self.num_hashes.to_bytes(4, "big")
            + self.seed.to_bytes(8, "big", signed=True)
            + self._num_items.to_bytes(8, "big")
        )
        return header + self._bits.to_bytes()

    @classmethod
    def from_bytes(cls, payload: bytes) -> "RefBloomFilter":
        if len(payload) < 28:
            raise ValueError("payload too short for a BloomFilter header")
        num_bits = int.from_bytes(payload[0:8], "big")
        num_hashes = int.from_bytes(payload[8:12], "big")
        seed = int.from_bytes(payload[12:20], "big", signed=True)
        num_items = int.from_bytes(payload[20:28], "big")
        bloom = cls(num_bits, num_hashes, seed)
        bloom._bits = RefBitVector.from_bytes(num_bits, payload[28:])
        bloom._num_items = num_items
        return bloom

    def _with_bits(self, bits: RefBitVector, num_items: int) -> "RefBloomFilter":
        result = RefBloomFilter(self.num_bits, self.num_hashes, self.seed)
        result._bits = bits
        result._num_items = num_items
        return result

    def union(self, other: "RefBloomFilter") -> "RefBloomFilter":
        return self._with_bits(self._bits | other._bits, self._num_items + other._num_items)

    def intersection(self, other: "RefBloomFilter") -> "RefBloomFilter":
        return self._with_bits(
            self._bits & other._bits, min(self._num_items, other._num_items)
        )

    def xor(self, other: "RefBloomFilter") -> "RefBloomFilter":
        return self._with_bits(
            self._bits ^ other._bits, abs(self._num_items - other._num_items)
        )


class RefCountingBloomFilter:
    """The pre-packed counting Bloom filter (list of saturating counters)."""

    __slots__ = ("_counters", "_hashes", "_num_items", "_max_count")

    def __init__(
        self,
        num_counters: int,
        num_hashes: int,
        seed: int = 0,
        counter_bits: int = 4,
    ) -> None:
        self._counters: List[int] = [0] * num_counters
        self._hashes = RefHashFamily(num_hashes, num_counters, seed)
        self._num_items = 0
        self._max_count = (1 << counter_bits) - 1

    @property
    def num_counters(self) -> int:
        return len(self._counters)

    @property
    def num_items(self) -> int:
        return self._num_items

    def counters(self) -> List[int]:
        return list(self._counters)

    def add(self, item: object) -> None:
        for index in self._hashes.indices(item):
            if self._counters[index] < self._max_count:
                self._counters[index] += 1
        self._num_items += 1

    def remove(self, item: object) -> None:
        indices = self._hashes.indices(item)
        if any(self._counters[i] == 0 for i in indices):
            raise KeyError(f"item not present in counting filter: {item!r}")
        for index in indices:
            if self._counters[index] < self._max_count:
                self._counters[index] -= 1
        self._num_items = max(0, self._num_items - 1)

    def discard(self, item: object) -> bool:
        try:
            self.remove(item)
        except KeyError:
            return False
        return True

    def query(self, item: object) -> bool:
        return all(self._counters[i] > 0 for i in self._hashes.indices(item))

    def count_estimate(self, item: object) -> int:
        return min(self._counters[i] for i in self._hashes.indices(item))

    def clear(self) -> None:
        for i in range(len(self._counters)):
            self._counters[i] = 0
        self._num_items = 0

    def to_bloom_filter(self) -> RefBloomFilter:
        bloom = RefBloomFilter(self.num_counters, self._hashes.num_hashes, self._hashes.seed)
        for index, count in enumerate(self._counters):
            if count > 0:
                bloom.bits.set(index)
        bloom._num_items = self._num_items
        return bloom
