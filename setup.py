"""Legacy setup shim: enables editable installs without the wheel package."""

from setuptools import setup

setup()
