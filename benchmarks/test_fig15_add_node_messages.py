"""Figure 15: messages exchanged when adding new nodes to the prototype.

Paper: adding a node to HBA exchanges Bloom filters with every existing MDS
(~2N messages each, ~1200 cumulative for 10 adds at 60 nodes); G-HBA
multicasts the newcomer's replica to one node per group plus a light
intra-group migration, saving severalfold.  Messages are counted on the
wire by the prototype transport.
"""

from repro.experiments import fig15


def test_fig15_add_node_messages(run_once):
    result = run_once(fig15.run, initial_nodes=20, group_size=7, additions=10)
    print()
    print(result.format())

    # HBA: the k-th add exchanges 2 * (N + k - 1) messages.
    for index, row in enumerate(result.rows):
        expected = 2 * (20 + index)
        assert row["hba_messages"] == expected

    last = result.rows[-1]
    # Cumulative savings: G-HBA well below HBA overall.
    assert last["ghba_cumulative"] < 0.7 * last["hba_cumulative"]
    # Cheap joins (no split) are far below the HBA exchange.
    cheap_joins = [
        row["ghba_messages"]
        for row in result.rows
        if row["ghba_messages"] < row["hba_messages"] / 2
    ]
    assert len(cheap_joins) >= 5
