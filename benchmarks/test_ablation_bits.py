"""Ablation: Bloom filter bit/file ratio (paper §2.3's memory-for-accuracy
argument, DESIGN.md §4).

Raising m/n must collapse false forwards roughly as Equation 1 predicts,
at a linear memory cost — and G-HBA's per-MDS memory at 16 bits/file stays
below HBA's at 8 (the paper's affordability point).
"""

from repro.experiments import ablation_bits


def test_ablation_bit_ratio(run_once):
    result = run_once(
        ablation_bits.run, bit_ratios=(4.0, 8.0, 16.0), num_queries=4_000
    )
    print()
    print(result.format(float_digits=5))
    rows = {row["bits_per_file"]: row for row in result.rows}

    # False routing collapses as the ratio rises (Eq. 1's direction).
    assert rows[4.0]["false_forward_rate"] > 10 * (
        rows[16.0]["false_forward_rate"]
    )
    assert rows[4.0]["false_forward_rate"] > rows[8.0]["false_forward_rate"]
    # ...and latency follows (false forwards cost a wasted round trip).
    assert rows[16.0]["mean_latency_ms"] < rows[4.0]["mean_latency_ms"]
    # Memory grows linearly with the ratio.
    assert rows[16.0]["filter_bytes"] == 4 * rows[4.0]["filter_bytes"]

    # The affordability claim: G-HBA's replica array at 16 bits/file costs
    # less per MDS than a flat BFA/HBA array at 8 bits/file (same N, same
    # files per server) — (theta + 1) filters vs. N filters.
    params = result.params
    n, m = params["num_servers"], 4
    theta = (n - m) // m
    ghba16_filters = (theta + 1) * rows[16.0]["filter_bytes"]
    hba8_filters = n * rows[8.0]["filter_bytes"]
    assert ghba16_filters < hba8_filters
