"""Table 5: relative memory overhead per MDS, normalized to BFA8.

Paper values: BFA16 = 2.0 exactly; HBA = 1.0002..1.0010 (BFA8 + a tiny LRU
array); G-HBA = 0.2002 at N=20 falling to 0.1121 at N=100 — roughly
(theta + 1)/N at the optimal M.
"""

import pytest

from repro.experiments import table05
from repro.experiments.table05 import PAPER_GHBA


def test_table05_memory_overhead(run_once):
    result = run_once(
        table05.run,
        server_counts=(20, 40, 60, 80, 100),
        files_per_server=2_000,
    )
    print()
    print(result.format(float_digits=4))

    for row in result.rows:
        # BFA16 doubles BFA8 exactly.
        assert row["bfa16"] == pytest.approx(2.0, rel=0.01)
        # HBA = full mirror + small LRU: just above 1.
        assert 1.0 < row["hba"] < 1.1
        # G-HBA lands near the paper's value (same M-per-N policy; our
        # optimal M differs from the paper's by at most 1, which shifts
        # the ratio slightly).
        assert row["ghba"] == pytest.approx(row["paper_ghba"], rel=0.25)
        assert row["ghba"] < 0.25

    # Overhead falls with N (the paper's key scaling claim).  The trend is
    # monotone up to a small tolerance: when the optimal M stalls between
    # two N values (both 80 and 100 use M=9) the balanced group partition
    # can nudge the mean theta up by a fraction of a replica.
    ghba_column = [row["ghba"] for row in result.rows]
    for earlier, later in zip(ghba_column, ghba_column[1:]):
        assert later <= earlier * 1.10
    assert ghba_column[-1] < ghba_column[0] * 0.75
