"""Tables 3-4: intensified workload statistics (regeneration + claims)."""

import pytest

from repro.experiments import tables_traces
from repro.experiments.tables_traces import PAPER_TIF


def test_tables_3_and_4_scaled_traces(run_once):
    result = run_once(
        tables_traces.run, base_files=1_500, base_ops=4_000, tif_scale=0.2
    )
    print()
    print(result.format())
    by_trace = {row["trace"]: row for row in result.rows}
    assert set(by_trace) == {"HP", "INS", "RES"}

    # TIF scale-up multiplies intensity exactly while preserving the op mix
    # (the paper's Section 4 invariant).
    for trace, row in by_trace.items():
        assert row["tif"] == max(1, int(PAPER_TIF[trace] * 0.2))
        assert row["total_ops"] == row["tif"] * row["base_total_ops"]
        assert row["stat_fraction"] == pytest.approx(
            row["base_stat_fraction"], abs=1e-9
        )

    # Table 3's signature: RES is stat-dominated, far beyond INS.
    assert by_trace["RES"]["stat_fraction"] > 0.75
    assert by_trace["RES"]["stat_fraction"] > by_trace["INS"]["stat_fraction"]
    assert by_trace["INS"]["stat_fraction"] > by_trace["HP"]["stat_fraction"]

    # Open and close counts are near-equal in every trace (Tables 3-4).
    for row in by_trace.values():
        assert row["close"] <= row["open"]
        assert row["close"] >= row["open"] * 0.7
