"""Ablation: cooperative L1 caching (paper §7, DESIGN.md §4).

Pushing resolved mappings to group peers must raise the L1 hit share and
cut latency; the hint messages are partially offset by the group
multicasts they avoid.
"""

from repro.experiments import ablation_cooperative


def test_ablation_cooperative_caching(run_once):
    result = run_once(
        ablation_cooperative.run, fanouts=(0, 2, 4), num_ops=8_000
    )
    print()
    print(result.format())
    rows = {row["fanout"]: row for row in result.rows}

    # Cooperation raises L1 monotonically and lowers latency.
    assert rows[2]["l1"] > rows[0]["l1"] + 0.05
    assert rows[4]["l1"] > rows[2]["l1"]
    assert rows[4]["mean_latency_ms"] < rows[0]["mean_latency_ms"]
    # The avoided L3 multicasts offset part of the hint cost: messages per
    # query grow by far less than the fanout would naively suggest.
    per_query_0 = rows[0]["total_messages"] / rows[0]["queries"]
    per_query_2 = rows[2]["total_messages"] / rows[2]["queries"]
    assert per_query_2 < per_query_0 + 2  # naive cost would be +2 exactly
    # Fewer queries reach the group multicast level.
    assert rows[4]["l3"] < rows[0]["l3"]
