"""Figure 6: normalized throughput vs. group size M.

Paper: Gamma(M) is unimodal with optima M=6 (HP/INS) and M=5 (RES) at
N=30, and M=9 for all three traces at N=100.
"""

from repro.experiments import fig06
from repro.experiments.fig06 import PAPER_OPTIMA


def test_fig06_normalized_throughput(run_once):
    result = run_once(fig06.run, server_counts=(30, 100), max_group_size=15)
    print()
    for (trace, n), paper_m in sorted(PAPER_OPTIMA.items()):
        rows = result.filter(trace=trace, num_servers=n)
        measured = rows[0]["optimal_m"]
        print(f"{trace:>4} N={n:<4} optimal M={measured} (paper {paper_m})")
        # Band: within +/-1 of every published optimum.
        assert abs(measured - paper_m) <= 1

    # Unimodal shape: Gamma rises to the peak then falls.
    for trace in ("HP", "INS", "RES"):
        for n in (30, 100):
            gammas = [
                row["gamma"] for row in result.filter(trace=trace, num_servers=n)
            ]
            peak = gammas.index(max(gammas))
            assert all(gammas[i] <= gammas[i + 1] for i in range(peak))
            assert all(
                gammas[i] >= gammas[i + 1]
                for i in range(peak, len(gammas) - 1)
            )

    # RES's heavier offered load pulls its N=30 optimum below HP's.
    res30 = result.filter(trace="RES", num_servers=30)[0]["optimal_m"]
    hp30 = result.filter(trace="HP", num_servers=30)[0]["optimal_m"]
    assert res30 <= hp30
