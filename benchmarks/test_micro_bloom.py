"""Micro-benchmarks: the Bloom filter substrate's hot paths.

Not a paper figure — these quantify the constant factors underneath every
experiment: single-filter probes, wide-array probes with the shared-index
optimization, counting-filter churn and the XOR staleness check.
"""

from repro.bloom.algebra import bit_difference
from repro.bloom.arrays import BloomFilterArray, LRUBloomFilterArray
from repro.bloom.bloom_filter import BloomFilter
from repro.bloom.counting import CountingBloomFilter


def _populated_filter(seed=0, items=2_000):
    bloom = BloomFilter.with_capacity(items, bits_per_item=16.0, seed=seed)
    bloom.update(f"/bench/d{i % 7}/f{i}" for i in range(items))
    return bloom


def test_bloom_filter_add(benchmark):
    bloom = BloomFilter.with_capacity(100_000, bits_per_item=16.0)
    counter = iter(range(10_000_000))

    def add():
        bloom.add(f"/bench/file{next(counter)}")

    benchmark(add)


def test_bloom_filter_query(benchmark):
    bloom = _populated_filter()
    assert benchmark(bloom.query, "/bench/d1/f1") is True


def test_bloom_array_query_30_replicas(benchmark):
    """One L2-style probe across 30 same-family replicas."""
    array = BloomFilterArray()
    for home in range(30):
        bloom = BloomFilter.with_capacity(2_000, bits_per_item=16.0)
        bloom.update(f"/mds{home}/f{i}" for i in range(500))
        array.add_replica(home, bloom)
    result = benchmark(array.query, "/mds7/f123")
    assert result.unique_hit == 7


def test_lru_array_record_and_query(benchmark):
    lru = LRUBloomFilterArray(capacity=4_096, filter_bits=1 << 14)
    for i in range(4_000):
        lru.record(f"/hot/f{i}", i % 30)

    def probe():
        lru.query("/hot/f100")

    benchmark(probe)


def test_counting_filter_add_remove(benchmark):
    cbf = CountingBloomFilter(1 << 16, 6)
    counter = iter(range(10_000_000))

    def churn():
        item = f"/churn/{next(counter)}"
        cbf.add(item)
        cbf.remove(item)

    benchmark(churn)


def test_xor_staleness_check(benchmark):
    """The Section 3.4 update-rule comparison over 32k-bit filters."""
    live = _populated_filter(seed=1)
    replica = live.copy()
    live.update(f"/drift/{i}" for i in range(50))
    difference = benchmark(bit_difference, live, replica)
    assert difference > 0
