"""Compressed replica transfer (related-work extension, Mitzenmacher 2002).

G-HBA ships filter replicas on every update and reconfiguration; this
bench quantifies the DEFLATE saving at the repository's standard filter
geometry and benchmarks the compress/decompress hot path.
"""

from repro.bloom.bloom_filter import BloomFilter
from repro.bloom.compressed import (
    compress_filter,
    decompress_filter,
    transfer_cost_report,
)


def _replica(load_fraction: float) -> BloomFilter:
    capacity = 10_000
    bloom = BloomFilter.with_capacity(capacity, bits_per_item=16.0)
    bloom.update(f"/x/f{i}" for i in range(int(capacity * load_fraction)))
    return bloom


def test_compress_replica_roundtrip(benchmark):
    bloom = _replica(load_fraction=0.3)

    def roundtrip():
        return decompress_filter(compress_filter(bloom))

    restored = benchmark(roundtrip)
    assert restored == bloom


def test_transfer_savings_by_load(run_once):
    print()
    ratios = []
    reports = run_once(
        lambda: [transfer_cost_report(_replica(l)) for l in (0.05, 0.25, 0.5, 1.0)]
    )
    for load, report in zip((0.05, 0.25, 0.5, 1.0), reports):
        ratios.append(report.ratio)
        print(
            f"load={load:>4}: fill={report.fill_ratio:.3f} "
            f"raw={report.raw_bytes}B compressed={report.compressed_bytes}B "
            f"ratio={report.ratio:.3f} "
            f"(entropy floor {report.entropy_bound_bytes}B)"
        )
        # DEFLATE always lands at or above the entropy floor.
        assert report.compressed_bytes >= report.entropy_bound_bytes
    # Lighter filters compress strictly better; a fresh (low-load) replica
    # ships at a fraction of its raw size.
    assert ratios == sorted(ratios)
    assert ratios[0] < 0.35
