"""Figure 10: average latency vs. ops under the INS trace.

Paper: same mechanism as Figures 8-9 at memory sizes 900/600/400 MB.
"""

from repro.experiments import fig08_10
from repro.experiments.fig08_10 import final_latency

FRACTIONS = (1.25, 0.7, 0.45)


def test_fig10_latency_ins(run_once):
    result = run_once(
        fig08_10.run,
        "INS",
        memory_fractions=FRACTIONS,
        num_servers=24,
        group_size=6,
        num_files=6_000,
        num_ops=18_000,
    )
    print()
    print(result.format())
    ample, _, tight = FRACTIONS
    assert final_latency(result, "hba", ample) <= (
        final_latency(result, "ghba", ample) * 1.5
    )
    assert final_latency(result, "hba", tight) > (
        2.0 * final_latency(result, "ghba", tight)
    )
    hba_finals = [final_latency(result, "hba", f) for f in FRACTIONS]
    assert hba_finals == sorted(hba_finals)
