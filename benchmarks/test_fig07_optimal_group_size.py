"""Figure 7: optimal group size M vs. number of MDSs.

Paper: optima of roughly {10: 3, 30: 6, 60: 7, 100: 9, 150: 11, 200: 14} —
M grows slowly (~sqrt N) and the M/N ratio falls from 0.3 to 0.07.
"""

from repro.experiments import fig07
from repro.experiments.fig07 import PAPER_OPTIMA


def test_fig07_optimal_group_size(run_once):
    result = run_once(fig07.run)
    print()
    print(result.format())
    for row in result.rows:
        paper_m = row["paper_optimal_m"]
        for trace in ("hp", "ins", "res"):
            measured = row[f"optimal_m_{trace}"]
            assert abs(measured - paper_m) <= 1, (
                f"N={row['num_servers']} {trace}: {measured} vs paper {paper_m}"
            )

    # M grows with N; the M/N ratio falls (the paper's annotation row).
    hp_optima = [row["optimal_m_hp"] for row in result.rows]
    assert hp_optima == sorted(hp_optima)
    ratios = [row["ratio_hp"] for row in result.rows]
    assert ratios[0] > ratios[-1]
    assert ratios[0] >= 0.2  # ~0.3 in the paper at N=10
    assert ratios[-1] <= 0.1  # ~0.07 in the paper at N=200

    # "M is not very sensitive to the workloads studied" — per-N spread <= 1.
    for row in result.rows:
        values = [row["optimal_m_hp"], row["optimal_m_ins"], row["optimal_m_res"]]
        assert max(values) - min(values) <= 1
