#!/usr/bin/env python
"""CI gate: packed-bitset throughput floors + same-seed determinism diff.

Compares the freshly regenerated ``BENCH_throughput.json`` (written by
``benchmarks/test_micro_query_throughput.py``) against the checked-in
pre-overhaul baseline ``benchmarks/seed_throughput.json`` and fails the
build when the speedup of the ISSUE 9 hot-path rebuild regresses below
the floors.

Honest numbers: on the machine that produced both artifacts, the rebuild
measured **4.3x** on ``ghba_query`` mean OPS (3 255 → 13 989 ops/s) and
**5.0x** on the p50 (298.9 µs → 60.2 µs); the end-to-end mean carries an
irreducible scheduler-noise outlier tax that medians do not.  The ISSUE's
aspirational 10x target was not reachable without shrinking the workload's
mandated per-query semantics (pinned counters, RNG draws, the full L1-L4
walk), so the gate floors are set from the *measured* multiples with
margin for cross-machine noise, not from the aspiration — see
EXPERIMENTS.md ("Hot-path overhaul") for the before/after table.

The second half of the gate replays the bench workload twice with the
same seed and requires bit-identical outcomes and counters: the perf
work is only acceptable while it stays observationally invisible.

Run from the repo root (after the throughput benchmarks):

    PYTHONPATH=src python -m pytest benchmarks/test_micro_query_throughput.py -q
    PYTHONPATH=src python benchmarks/check_throughput_gate.py
"""

from __future__ import annotations

import hashlib
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SEED_PATH = REPO_ROOT / "benchmarks" / "seed_throughput.json"
BENCH_PATH = REPO_ROOT / "BENCH_throughput.json"

#: entry -> (min mean-OPS speedup, min p50 speedup) vs the seed artifact.
#: Floors sit well under the multiples measured on the reference machine
#: (in comments) so a noisy CI runner does not flake the gate, but far
#: above 1.0 so losing the packed-bitset fast path cannot pass.
FLOORS = {
    "ghba_query": (3.0, 3.5),      # measured 4.3x mean, 5.0x p50
    "ghba_hot_path": (4.0, 4.0),   # measured 5.9x mean, 6.8x p50
    "hba_query": (2.0, 2.0),       # measured 3.4x mean, 3.4x p50
    # The gateway p50 is dominated by lease-cache hits the overhaul
    # barely touches (measured 1.0-1.3x run to run), so its p50 floor
    # is a no-regression guard, not a speedup claim.
    "gateway_lookup": (1.5, 0.9),  # measured 2.2x mean
}

DETERMINISM_QUERIES = 3_000


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError:
        sys.exit(
            f"missing {path.name}: run the throughput benchmarks first "
            "(see module docstring)"
        )


def check_speedups() -> list:
    seed = _load(SEED_PATH)
    bench = _load(BENCH_PATH)
    failures = []
    print(f"{'entry':<16} {'seed':>10} {'now':>10} {'mean x':>7} "
          f"{'p50 x':>7}  floors")
    for entry, (mean_floor, p50_floor) in FLOORS.items():
        if entry not in bench:
            failures.append(f"{entry}: missing from {BENCH_PATH.name}")
            continue
        before, after = seed[entry], bench[entry]
        mean_x = before["mean_ms"] / after["mean_ms"]
        p50_x = before["p50_ms"] / after["p50_ms"]
        print(
            f"{entry:<16} {before['ops_per_s']:>10.0f} "
            f"{after['ops_per_s']:>10.0f} {mean_x:>7.2f} {p50_x:>7.2f}"
            f"  >={mean_floor}/{p50_floor}"
        )
        if mean_x < mean_floor:
            failures.append(
                f"{entry}: mean speedup {mean_x:.2f}x below floor "
                f"{mean_floor}x"
            )
        if p50_x < p50_floor:
            failures.append(
                f"{entry}: p50 speedup {p50_x:.2f}x below floor {p50_floor}x"
            )
    return failures


def _run_workload() -> str:
    """One seeded pass of the bench workload; returns a state digest.

    Mirrors the ``ghba_query`` benchmark setup exactly (30 servers, the
    group-size-6 config, 6 000 paths, forced replica sync), then replays
    the first DETERMINISM_QUERIES lookups and hashes every observable:
    per-query outcome tuples and the full ghba_* counter dump.
    """
    from repro.core.cluster import GHBACluster
    from repro.core.config import GHBAConfig

    config = GHBAConfig(
        max_group_size=6,
        expected_files_per_mds=1_000,
        lru_capacity=2_000,
        lru_filter_bits=1 << 12,
        seed=9,
    )
    cluster = GHBACluster(30, config, seed=9)
    paths = [f"/tp/d{i % 11}/f{i}" for i in range(6_000)]
    cluster.populate(paths)
    cluster.synchronize_replicas(force=True)

    outcomes = []
    for index in range(DETERMINISM_QUERIES):
        result = cluster.query(paths[index % len(paths)])
        outcomes.append(
            [
                result.home_id,
                result.level.name,
                round(result.latency_ms, 9),
                result.messages,
                result.false_forwards,
            ]
        )
    counters = {}
    for family in cluster.metrics.families():
        if family.kind == "counter" and family.name.startswith("ghba_"):
            series = family.as_dict()
            if series:
                counters[family.name] = dict(sorted(series.items()))
    payload = json.dumps(
        {"outcomes": outcomes, "counters": counters},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def check_determinism() -> list:
    first = _run_workload()
    second = _run_workload()
    print(f"determinism digest: {first}")
    if first != second:
        return [
            "same-seed replays diverged: "
            f"{first[:16]}... vs {second[:16]}..."
        ]
    return []


def main() -> int:
    failures = check_speedups()
    failures += check_determinism()
    if failures:
        print("\nTHROUGHPUT GATE FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("throughput gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
