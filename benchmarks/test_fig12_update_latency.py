"""Figure 12: latency of updating stale replicas, HBA vs. G-HBA.

Paper: an HBA update multicasts to all N - 1 MDSs; G-HBA updates one MDS
per group, cutting both messages (~M-fold) and latency, at N = 30
(M = 5 or 6) and N = 100 (M = 9) for all three traces.
"""

from repro.experiments import fig12


def test_fig12_update_latency(run_once):
    result = run_once(fig12.run, num_updates=40, files_per_update=5)
    print()
    print(result.format())

    for row in result.rows:
        n, m = row["num_servers"], row["group_size"]
        # HBA reaches every other MDS.
        assert row["hba_avg_messages"] == n - 1
        # G-HBA reaches ~one MDS per other group (IDBFA false positives may
        # add the odd dropped message).
        groups = -(-n // m)  # ceil
        assert row["ghba_avg_messages"] <= groups + 2
        assert row["ghba_avg_messages"] >= groups - 1
        # Latency: G-HBA's narrower multicast is strictly faster.
        assert row["ghba_avg_latency_ms"] < row["hba_avg_latency_ms"]

    # The gap widens with N (the paper's scalability argument).
    small = next(r for r in result.rows if r["num_servers"] == 30)
    large = next(r for r in result.rows if r["num_servers"] == 100)
    gap_small = small["hba_avg_latency_ms"] / small["ghba_avg_latency_ms"]
    gap_large = large["hba_avg_latency_ms"] / large["ghba_avg_latency_ms"]
    assert gap_large > gap_small
