"""Scalability sweep: the 'ultra large-scale' asymptotics, measured.

HBA's per-MDS cost grows linearly with N on every axis; G-HBA's grows
~ sqrt(N) (theta = (N - M*)/M* with M* ~ sqrt(N)), so the gap widens with
scale — the paper's core argument for exabyte-scale systems.
"""

from repro.experiments import scalability


def test_scalability_sweep(run_once):
    result = run_once(scalability.run, server_counts=(20, 40, 80, 160))
    print()
    print(result.format())
    rows = result.rows
    first, last = rows[0], rows[-1]
    growth = last["num_servers"] / first["num_servers"]  # 8x

    # HBA scales linearly on every axis.
    assert last["hba_probes_per_lookup"] == growth * (
        first["hba_probes_per_lookup"]
    )
    assert last["hba_update_messages"] / first["hba_update_messages"] > (
        growth * 0.9
    )
    assert last["hba_join_replicas"] / first["hba_join_replicas"] > growth * 0.9

    # G-HBA scales sublinearly (≈ sqrt): an 8x system costs well under
    # 8x per MDS on every axis.
    for column in (
        "ghba_probes_per_lookup",
        "ghba_update_messages",
        "ghba_join_replicas",
        "ghba_bytes_per_mds",
    ):
        ratio = last[column] / first[column]
        assert ratio < growth * 0.75, (column, ratio)

    # The absolute gap widens with N on every axis.
    for n_index in range(len(rows)):
        row = rows[n_index]
        assert row["ghba_probes_per_lookup"] < row["hba_probes_per_lookup"]
        assert row["ghba_update_messages"] < row["hba_update_messages"]
        assert row["ghba_bytes_per_mds"] < row["hba_bytes_per_mds"]
    gap_first = first["hba_bytes_per_mds"] / first["ghba_bytes_per_mds"]
    gap_last = last["hba_bytes_per_mds"] / last["ghba_bytes_per_mds"]
    assert gap_last > gap_first
