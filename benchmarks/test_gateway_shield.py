"""Gateway shield benchmark: backend-query reduction with zero stale reads.

The acceptance experiment for the gateway tier (:mod:`repro.gateway`): a
seeded Zipfian workload replayed through the gateway must send **at least
2x fewer** queries to the MDS fleet than direct cluster access, while every
cache-served answer matches the live cluster at read time (the bench audits
each one — zero stale reads is asserted, not sampled).

Runs the same harness as ``python -m repro.gateway bench`` and emits
``BENCH_gateway.json`` at the repo root.
"""

import argparse

import pytest

from repro.gateway.__main__ import run_bench

from _bench_json import update_bench_json


def _bench_args(**overrides):
    defaults = dict(
        servers=20,
        group_size=5,
        files=2_000,
        ops=4_000,
        clients=8,
        profile="HP",
        seed=7,
        cache_capacity=4096,
        lease_ttl_s=5.0,
        rate_per_s=2000.0,
        hot_threshold=32,
        top=5,
        chaos=False,
        chaos_start_s=0.5,
        chaos_window_s=1.0,
        json=None,
    )
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


@pytest.fixture(scope="module")
def shield_stats():
    # One replay shared by the whole module.  No pytest-benchmark here:
    # the interesting numbers (reduction, hit rate, virtual latency) are
    # deterministic simulation outputs, not wall-clock timings.
    stats = run_bench(_bench_args())
    stats.pop("_gateway")
    return stats


def test_backend_query_reduction(shield_stats):
    """Gateway sends >= 2x fewer queries to the fleet than direct access."""
    assert shield_stats["backend_queries"] > 0
    assert shield_stats["direct_queries"] >= shield_stats["lookups_submitted"]
    assert shield_stats["backend_reduction"] >= 2.0, shield_stats


def test_zero_stale_reads(shield_stats):
    """Every cache-served answer matched the live cluster at read time."""
    assert shield_stats["stale_reads"] == 0
    assert shield_stats["home_mismatches"] == 0


def test_shed_accounting(shield_stats):
    """Nothing vanished: answers + sheds + still-queued cover submissions."""
    answered = sum(
        count
        for outcome, count in shield_stats["outcomes"].items()
        if outcome not in ("rejected", "queued")
    )
    assert answered + shield_stats["shed"] >= shield_stats["lookups_submitted"]


def test_bench_json_emitted(shield_stats):
    target = update_bench_json(
        "BENCH_gateway.json",
        "gateway_shield",
        {
            "hit_rate": shield_stats["hit_rate"],
            "backend_reduction": shield_stats["backend_reduction"],
            "backend_queries": shield_stats["backend_queries"],
            "direct_queries": shield_stats["direct_queries"],
            "shed_rate": shield_stats["shed_rate"],
            "stale_reads": shield_stats["stale_reads"],
            "p50_ms": shield_stats["p50_ms"],
            "p99_ms": shield_stats["p99_ms"],
            "direct_p50_ms": shield_stats["direct_p50_ms"],
            "direct_p99_ms": shield_stats["direct_p99_ms"],
            "seed": shield_stats["seed"],
            "ops": shield_stats["ops"],
        },
    )
    assert target.exists()
