"""Figure 8: average latency vs. ops under the HP trace, three memory sizes.

Paper: with ample memory (1.2 GB) HBA slightly outperforms G-HBA; as the
budget shrinks (800 MB, 500 MB) HBA's latency climbs steeply (replica array
spills to disk) while G-HBA stays low.  Memory budgets here are fractions of
HBA's working set (see DESIGN.md §2 and EXPERIMENTS.md for the mapping).
"""

from repro.experiments import fig08_10
from repro.experiments.fig08_10 import final_latency

FRACTIONS = (1.25, 0.75, 0.45)


def test_fig08_latency_hp(run_once):
    result = run_once(
        fig08_10.run,
        "HP",
        memory_fractions=FRACTIONS,
        num_servers=24,
        group_size=6,
        num_files=6_000,
        num_ops=18_000,
    )
    print()
    print(result.format())

    ample, medium, tight = FRACTIONS
    # Ample memory: HBA resolves everything locally and wins (slightly).
    assert final_latency(result, "hba", ample) <= (
        final_latency(result, "ghba", ample) * 1.5
    )
    # Tight memory: the crossover — HBA degrades hard, G-HBA stays low.
    assert final_latency(result, "hba", tight) > (
        2.0 * final_latency(result, "ghba", tight)
    )
    # HBA's own degradation across budgets is monotone and severe.
    hba_finals = [final_latency(result, "hba", f) for f in FRACTIONS]
    assert hba_finals[0] < hba_finals[1] < hba_finals[2]
    assert hba_finals[2] > 5 * hba_finals[0]
    # G-HBA's latency under the tightest budget grows with op count far
    # more gently than HBA's.
    ghba_rows = result.filter(scheme="ghba", memory_fraction=tight)
    hba_rows = result.filter(scheme="hba", memory_fraction=tight)
    ghba_growth = ghba_rows[-1]["avg_latency_ms"] - ghba_rows[0]["avg_latency_ms"]
    hba_growth = hba_rows[-1]["avg_latency_ms"] - hba_rows[0]["avg_latency_ms"]
    assert hba_growth > ghba_growth
