"""Machine-readable benchmark summaries (``BENCH_*.json``).

Benchmarks in this directory call :func:`update_bench_json` to merge one
named entry into a JSON artifact at the repo root (``BENCH_throughput.json``,
``BENCH_gateway.json``, ...).  Each file maps entry name → flat stats dict,
so future PRs can diff perf numbers without scraping pytest-benchmark's
console table.

The artifacts are regenerated on every run (entries merge by name; a file
survives partial runs).  Timing-derived fields (ops/sec) vary with the host;
everything derived from the deterministic simulation (hit rates, query
counts, virtual-latency percentiles) is stable across machines.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Process start (module import) time: ``run_metadata`` reports how long
#: the benchmark run had been going when the artifact was written.
_RUN_START = time.time()

_GIT_REV: Optional[str] = None


def _git_rev() -> str:
    """Short git revision of the repo, "" when unavailable (no git,
    tarball checkout, sandboxed runner)."""
    global _GIT_REV
    if _GIT_REV is None:
        try:
            proc = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                cwd=REPO_ROOT,
                capture_output=True,
                text=True,
                timeout=5,
            )
            _GIT_REV = proc.stdout.strip() if proc.returncode == 0 else ""
        except (OSError, subprocess.SubprocessError):
            _GIT_REV = ""
    return _GIT_REV


def run_metadata() -> Dict[str, object]:
    """Provenance stamped into every ``BENCH_*.json`` under ``"_meta"``.

    Answers "which machine/toolchain/revision produced these numbers"
    when two artifacts are diffed across PRs.  Wall-clock fields vary by
    host and run; everything else is stable for a given checkout.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "git_rev": _git_rev(),
        "run_duration_s": round(time.time() - _RUN_START, 3),
        "written_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def percentile(values: List[float], p: float) -> float:
    """Nearest-rank percentile (p in [0, 100]); 0.0 on empty input."""
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(p / 100.0 * (len(ordered) - 1))))
    return ordered[index]


def benchmark_entry(benchmark) -> Dict[str, float]:
    """Flatten a pytest-benchmark fixture's stats into a JSON-safe dict.

    Call *after* the ``benchmark(...)`` run.  Percentiles come from the
    raw per-round timings, which pytest-benchmark's summary table omits.
    """
    stats = benchmark.stats.stats
    data = list(getattr(stats, "sorted_data", []) or [])
    return {
        "ops_per_s": round(stats.ops, 2),
        "mean_ms": round(stats.mean * 1000, 6),
        "p50_ms": round(percentile(data, 50) * 1000, 6),
        "p99_ms": round(percentile(data, 99) * 1000, 6),
        "rounds": stats.rounds,
    }


def update_bench_json(
    filename: str,
    entry_name: str,
    entry: Dict[str, object],
    root: Optional[Path] = None,
) -> Path:
    """Merge ``entry`` under ``entry_name`` into ``<root>/<filename>``."""
    target = (root or REPO_ROOT) / filename
    payload: Dict[str, Dict[str, object]] = {}
    if target.exists():
        try:
            payload = json.loads(target.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, OSError):
            payload = {}
    if not isinstance(payload, dict):
        payload = {}
    payload[entry_name] = entry
    payload["_meta"] = run_metadata()
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target
