"""Ablation: the XOR update-threshold rule (DESIGN.md §4, decision 4).

Threshold 0 keeps replicas perfectly fresh at maximal message cost; larger
thresholds trade update traffic for stale-replica escapes to L4.
"""

from repro.experiments import ablation_updates


def test_ablation_update_threshold(run_once):
    result = run_once(
        ablation_updates.run,
        thresholds=(0, 64, 256, 1024),
        num_servers=20,
        group_size=5,
        churn_rounds=30,
    )
    print()
    print(result.format())

    eager = result.rows[0]
    lazy = result.rows[-1]
    # Eager updates: many messages, zero staleness escapes.
    assert eager["stale_escape_rate"] == 0.0
    assert eager["update_messages"] > 0
    # Lazy updates: traffic collapses, staleness appears.
    assert lazy["update_messages"] < eager["update_messages"] / 2
    assert lazy["stale_escape_rate"] > 0.3
    # Messages are monotonically non-increasing in the threshold.
    messages = [row["update_messages"] for row in result.rows]
    assert messages == sorted(messages, reverse=True)
