"""Cohort benchmark: invalidation multicast vs N independent gateways.

The acceptance experiment for the distributed gateway cohort
(:mod:`repro.gateway.cohort`): on one seeded trace, replayed under a
seeded fault plan (drops, delays, duplicates, a mid-run partition), the
multicast-coherent cohort must send **at least 1.5x fewer** queries to
the MDS fleet than N independent gateways offering the *same* staleness
bound — and the auditor must observe **zero** staleness-bound violations
on either deployment.

Runs the same harness as ``python -m repro.gateway bench --cohort N``
and emits ``BENCH_cohort.json`` at the repo root.
"""

import argparse

import pytest

from repro.gateway.__main__ import run_cohort_bench

from _bench_json import update_bench_json


def _cohort_args(**overrides):
    defaults = dict(
        servers=20,
        group_size=5,
        files=3_000,
        ops=20_000,
        clients=8,
        profile="HP",
        seed=7,
        cache_capacity=4096,
        lease_ttl_s=30.0,
        rate_per_s=2000.0,
        hot_threshold=32,
        top=5,
        chaos=False,
        cohort=4,
        heartbeat_s=0.05,
        suspect_after_s=0.15,
        ttl_clamp_s=0.10,
        trace_rate=150.0,
        chaos_start_s=0.5,
        chaos_window_s=1.0,
        json=None,
    )
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


@pytest.fixture(scope="module")
def cohort_stats():
    # One replay shared by the whole module; everything asserted below is
    # a deterministic simulation output, not a wall-clock timing.
    return run_cohort_bench(_cohort_args())


def test_backend_query_reduction(cohort_stats):
    """Cohort sends >= 1.5x fewer fleet queries than independents."""
    assert cohort_stats["backend_queries_cohort"] > 0
    assert cohort_stats["backend_reduction"] >= 1.5, cohort_stats


def test_zero_staleness_violations(cohort_stats):
    """No audited read was staler than the advertised bound — either side."""
    assert cohort_stats["violations"] == 0
    assert cohort_stats["independent_violations"] == 0


def test_protocol_exercised_under_faults(cohort_stats):
    """The fault plan actually stressed the protocol (non-vacuous run)."""
    assert cohort_stats["invalidations_published"] > 0
    assert cohort_stats["invalidations_applied"] > 0
    assert cohort_stats["gaps_detected"] > 0, "drops never opened a seq gap"
    assert cohort_stats["sync_records_recovered"] > 0
    assert cohort_stats["peer_outages"] > 0, "partition never suspected a peer"
    assert cohort_stats["clamp_engagements"] > 0


def test_bench_json_emitted(cohort_stats):
    target = update_bench_json(
        "BENCH_cohort.json",
        "gateway_cohort",
        {
            "cohort": cohort_stats["cohort"],
            "seed": cohort_stats["seed"],
            "ops": cohort_stats["ops"],
            "staleness_bound_s": cohort_stats["staleness_bound_s"],
            "violations": cohort_stats["violations"],
            "independent_violations": cohort_stats["independent_violations"],
            "staleness_p99_s": cohort_stats["cohort_audit"]["staleness_p99_s"],
            "staleness_max_s": cohort_stats["cohort_audit"]["staleness_max_s"],
            "backend_queries_cohort": cohort_stats["backend_queries_cohort"],
            "backend_queries_independent": cohort_stats[
                "backend_queries_independent"
            ],
            "backend_reduction": cohort_stats["backend_reduction"],
            "invalidation_messages": cohort_stats["invalidation_messages"],
            "cohort_hit_rate": cohort_stats["cohort_hit_rate"],
            "independent_hit_rate": cohort_stats["independent_hit_rate"],
        },
    )
    assert target.exists()


@pytest.mark.slow
def test_soak_larger_cohort_holds_bound():
    """Soak variant: a wider cohort on a longer trace still holds the bound."""
    stats = run_cohort_bench(_cohort_args(cohort=6, ops=40_000, seed=11))
    assert stats["violations"] == 0
    assert stats["independent_violations"] == 0
    assert stats["backend_reduction"] >= 1.5, stats
