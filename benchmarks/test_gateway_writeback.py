"""Gateway write-back benchmark: batched mutations, zero acknowledged loss.

The acceptance experiment for the write-back buffer (:mod:`repro.gateway.
writeback`): one seeded trace replayed twice — write-through (every
create/delete a unicast round trip) and write-back (buffered, absorbed,
flushed as ``MUTATE_BATCH``) — through identical fleets, crash windows and
create placements.  Write-back must send **at least 1.5x fewer** mutation
RPCs while the end-of-run namespace matches the acknowledgement oracle
exactly in both modes: every acknowledged mutation is durable, every loss
is explicit, and the two modes converge to the same namespace.

Runs the same harness as ``python -m repro.gateway bench --writeback``
and emits ``BENCH_writeback.json`` at the repo root.
"""

import argparse

import pytest

from repro.gateway.__main__ import run_writeback_bench

from _bench_json import update_bench_json


def _bench_args(**overrides):
    defaults = dict(
        servers=20,
        group_size=5,
        files=3_000,
        ops=5_000,
        clients=8,
        profile="HP",
        seed=7,
        cache_capacity=4096,
        lease_ttl_s=5.0,
        rate_per_s=2000.0,
        hot_threshold=32,
        chaos=False,
        flush_max_pending=16,
        flush_age_s=0.25,
        json=None,
    )
    defaults.update(overrides)
    return argparse.Namespace(**defaults)


@pytest.fixture(scope="module")
def writeback_stats():
    # One pair of replays shared by the whole module; deterministic
    # simulation outputs, not wall-clock timings.
    return run_writeback_bench(_bench_args())


def test_mutation_rpc_reduction(writeback_stats):
    """Write-back sends >= 1.5x fewer mutation RPCs than write-through."""
    back = writeback_stats["writeback"]
    through = writeback_stats["writethrough"]
    assert back["mutation_rpcs"] > 0
    assert through["mutation_rpcs"] > back["mutation_rpcs"]
    assert writeback_stats["mutation_rpc_reduction"] >= 1.5, writeback_stats


def test_zero_acknowledged_loss(writeback_stats):
    """No acked mutation vanished: fleet == oracle in both modes, and the
    two modes converge to the identical namespace despite crash windows."""
    assert writeback_stats["crash_windows"] >= 2
    assert writeback_stats["writethrough"]["oracle_divergences"] == 0
    assert writeback_stats["writeback"]["oracle_divergences"] == 0
    assert writeback_stats["mode_namespace_divergence"] == 0
    assert writeback_stats["writeback"]["lost_reported"] == 0


def test_overlay_correctness(writeback_stats):
    """Read-your-writes held: every overlay answer matched the buffer's
    pending intent, and no cache-served read went stale."""
    back = writeback_stats["writeback"]
    assert back["overlay_hits"] > 0
    assert back["overlay_mismatches"] == 0
    assert back["stale_reads"] == 0


def test_buffered_latency_beats_unicast(writeback_stats):
    """The buffered p50 mutation is a local enqueue, not a round trip."""
    back = writeback_stats["writeback"]
    through = writeback_stats["writethrough"]
    assert back["mutation_p50_ms"] < through["mutation_p50_ms"]


def test_flushes_batched(writeback_stats):
    """Flushes actually batch: fewer batches than mutations enqueued."""
    back = writeback_stats["writeback"]
    assert back["flush_batches"] > 0
    assert back["flush_batches"] < writeback_stats["mutations"]


def test_bench_json_emitted(writeback_stats):
    target = update_bench_json(
        "BENCH_writeback.json",
        "gateway_writeback",
        writeback_stats,
    )
    assert target.exists()
