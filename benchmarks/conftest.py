"""Benchmark harness configuration.

Every benchmark regenerates one paper table/figure via its experiment
module, asserts the paper's *shape* claims (who wins, by roughly what
factor, where crossovers fall — absolute numbers are not expected to match
the authors' 2007 testbed), and reports wall time through pytest-benchmark.

Heavy trace-driven experiments run one round (``run_once``); the regenerated
rows are printed (run with ``-s`` to see them live).

Pass ``--trace-out PATH`` to capture a JSONL span log of every G-HBA query
the micro-benchmarks issue (see :mod:`repro.obs`).  Without the flag the
benchmarks run under the null tracer — the configuration whose overhead the
throughput numbers are meant to reflect.
"""

from __future__ import annotations

import pytest

from repro.obs.export import write_spans_jsonl
from repro.obs.trace import NULL_TRACER, CollectingTracer


def pytest_addoption(parser):
    parser.addoption(
        "--trace-out",
        action="store",
        default=None,
        help="write a JSONL span log of benchmarked G-HBA queries to PATH",
    )


@pytest.fixture(scope="session")
def obs_tracer(request):
    """Session tracer: collecting when --trace-out was given, else null."""
    trace_out = request.config.getoption("--trace-out")
    if not trace_out:
        yield NULL_TRACER
        return
    tracer = CollectingTracer()
    yield tracer
    written = write_spans_jsonl(tracer.finished_spans(), trace_out)
    print(f"\nwrote {written} spans to {trace_out}")


@pytest.fixture
def run_once(benchmark):
    """Benchmark a callable with a single round and return its result."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
