"""Benchmark harness configuration.

Every benchmark regenerates one paper table/figure via its experiment
module, asserts the paper's *shape* claims (who wins, by roughly what
factor, where crossovers fall — absolute numbers are not expected to match
the authors' 2007 testbed), and reports wall time through pytest-benchmark.

Heavy trace-driven experiments run one round (``run_once``); the regenerated
rows are printed (run with ``-s`` to see them live).
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_once(benchmark):
    """Benchmark a callable with a single round and return its result."""

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1
        )

    return _run
