"""Figure 11: replicas migrated when one MDS joins, vs. system size.

Paper: HBA migrates N replicas (full mirror to the newcomer); hash-based
placement migrates up to N - M' (growing with N); G-HBA migrates only
(N - M')/(M' + 1) to the newcomer.
"""

from repro.experiments import fig11

SERVER_COUNTS = (10, 20, 30, 40, 50, 60, 70, 80, 90, 100)


def test_fig11_migration(run_once):
    result = run_once(fig11.run, server_counts=SERVER_COUNTS)
    print()
    print(result.format())

    for row in result.rows:
        n = row["num_servers"]
        assert row["hba"] == n
        for trace in ("hp", "ins", "res"):
            hash_migrated = row[f"hash_{trace}"]
            ghba_migrated = row[f"ghba_{trace}"]
            # Ordering: G-HBA < hash placement < HBA (the figure's stack).
            assert ghba_migrated < row["hba"]
            assert hash_migrated <= row["hba"]
            if n >= 20:
                assert ghba_migrated < hash_migrated

    # Slope: HBA and hash placement grow ~linearly with N while G-HBA's
    # cost follows (N - M')/(M' + 1) for the joined group — bounded by the
    # smallest group a split can produce (M' = floor(M/2)).
    first, last = result.rows[0], result.rows[-1]
    assert last["hba"] == 10 * first["hba"]
    assert last["hash_hp"] > 4 * first["hash_hp"]
    from repro.core.optimal import TRACE_MODELS, optimal_group_size

    for row in result.rows:
        n = row["num_servers"]
        m = optimal_group_size(n, TRACE_MODELS["HP"], max_group_size=20)
        smallest_group = max(1, m // 2)
        bound = (n - smallest_group) / (smallest_group + 1)
        assert row["ghba_hp"] <= bound + 1
