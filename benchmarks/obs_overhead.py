"""CI gate: tracing overhead on the gateway bench stays under 10%.

Runs the same seeded gateway bench twice — once with the null tracer,
once with a :class:`~repro.obs.trace.CollectingTracer` — and compares
CPU time (``time.process_time``, best-of-N, so scheduler noise on
shared CI runners does not flake the gate).  Also asserts the
zero-overhead contract the timing gate presumes: both runs must produce
bit-identical bench statistics.

Usage::

    PYTHONPATH=src python benchmarks/obs_overhead.py [--max-overhead 0.10]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.gateway.__main__ import run_bench
from repro.obs.trace import CollectingTracer


def _bench_args(ops: int) -> argparse.Namespace:
    return argparse.Namespace(
        servers=8, group_size=4, files=800, ops=ops, clients=6,
        profile="HP", seed=7, cache_capacity=2048, lease_ttl_s=5.0,
        rate_per_s=float(ops), hot_threshold=16, top=5, chaos=False,
        chaos_start_s=0.2, chaos_window_s=0.5, json=None,
    )


def _stats(ops: int, tracer) -> dict:
    stats = run_bench(_bench_args(ops), tracer=tracer)
    stats.pop("_gateway")  # live object, not comparable
    return stats


def _timed(ops: int, make_tracer) -> float:
    started = time.process_time()
    run_bench(_bench_args(ops), tracer=make_tracer())
    return time.process_time() - started


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ops", type=int, default=4000)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--max-overhead", type=float, default=0.10)
    args = parser.parse_args(argv)

    plain = _stats(args.ops, None)
    traced = _stats(args.ops, CollectingTracer())
    if plain != traced:
        diff = {k for k in plain if plain[k] != traced.get(k)}
        print(f"FAIL: tracing perturbed bench stats: {sorted(diff)}")
        return 1
    print("bench stats bit-identical with tracing on and off")

    _timed(args.ops, lambda: None)  # warm-up
    # Interleave the two variants so load drift on a shared runner hits
    # both equally instead of biasing whichever phase ran second.
    base_times, traced_times = [], []
    for _ in range(args.repeats):
        base_times.append(_timed(args.ops, lambda: None))
        traced_times.append(_timed(args.ops, CollectingTracer))
    base = min(base_times)
    with_tracing = min(traced_times)
    overhead = with_tracing / base - 1.0
    print(
        f"cpu time: base {base:.3f}s, traced {with_tracing:.3f}s, "
        f"overhead {overhead:+.1%} (gate: < {args.max_overhead:.0%})"
    )
    if overhead >= args.max_overhead:
        print("FAIL: tracing overhead above the gate")
        return 1
    print("PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
