"""Table 1, quantified: every scheme's qualitative grade, measured.

All six rows of the paper's comparison table are implemented in this
repository; this bench runs them against the same namespace and skewed
access stream and asserts the orderings Table 1 claims.
"""

from repro.experiments import table01_quantified


def test_table01_quantified(run_once):
    result = run_once(table01_quantified.run)
    print()
    print(result.format())
    rows = {row["scheme"]: row for row in result.rows}

    # Migration cost column: hash-based "Large", table/static "0",
    # Bloom-based small, G-HBA smallest among the migrating schemes.
    assert rows["hash_based"]["join_migration"] > 100
    assert rows["table_based"]["join_migration"] == 0
    assert rows["static_tree"]["join_migration"] == 0
    assert rows["g_hba"]["join_migration"] < rows["hba"]["join_migration"]

    # Rename: hashing migrates essentially everything; everyone else nothing.
    assert rows["hash_based"]["rename_migration"] > 0.7
    for scheme in ("table_based", "static_tree", "g_hba"):
        assert rows[scheme]["rename_migration"] == 0.0

    # Memory column: table-based O(n) dwarfs everyone; G-HBA ~ HBA / (N/M).
    assert rows["table_based"]["memory_per_mds"] > (
        2 * rows["hba"]["memory_per_mds"]
    )
    assert rows["g_hba"]["memory_per_mds"] < rows["hba"]["memory_per_mds"]
    assert rows["static_tree"]["memory_per_mds"] < (
        rows["g_hba"]["memory_per_mds"] / 4
    )

    # Load balance column: static "No" (skew shows), dynamic improves on it,
    # hashing and the Bloom schemes balance.
    assert rows["static_tree"]["load_imbalance"] > 2.0
    assert rows["dynamic_tree"]["load_imbalance"] < (
        rows["static_tree"]["load_imbalance"]
    )
    assert rows["dynamic_tree"]["join_migration"] >= 1  # it had to migrate
    assert rows["hash_based"]["load_imbalance"] < 2.0
    assert rows["g_hba"]["load_imbalance"] <= 1.1

    # Lookup column: O(1)-ish for hash and the Bloom schemes (constant,
    # small), logarithmic for the table, tree-walk for the partitions.
    assert rows["hash_based"]["lookup_probes"] == 1.0
    assert rows["g_hba"]["lookup_probes"] < rows["hba"]["lookup_probes"]
    assert rows["table_based"]["lookup_probes"] > 5
