"""Ablation: L1 replacement policy (paper §7's replacement-efficiency
future work, DESIGN.md §4).

Under cache pressure, frequency-aware eviction (LFU) must beat the paper's
LRU, which in turn must beat FIFO, on a Zipf-skewed metadata stream.
"""

from repro.experiments import ablation_policies


def test_ablation_replacement_policy(run_once):
    result = run_once(
        ablation_policies.run,
        policies=("fifo", "lru", "lfu"),
        lru_capacity=24,
        num_ops=8_000,
    )
    print()
    print(result.format())
    rows = {row["policy"]: row for row in result.rows}
    # Hit-share ordering: LFU >= LRU >= FIFO, with a real LFU-FIFO gap.
    assert rows["lfu"]["l1"] >= rows["lru"]["l1"]
    assert rows["lru"]["l1"] >= rows["fifo"]["l1"]
    assert rows["lfu"]["l1"] > rows["fifo"]["l1"] + 0.03
    # Latency follows the hit share.
    assert rows["lfu"]["mean_latency_ms"] <= rows["fifo"]["mean_latency_ms"]
    # Same query stream in every run (fair comparison).
    queries = {row["queries"] for row in result.rows}
    assert len(queries) == 1
