"""Figure 13: percentage of queries served by each hierarchy level.

Paper: L1 absorbs most queries via temporal locality; more than 90% of
requests resolve within the origin's group (L1+L2+L3) even at 100 MDSs;
the L4 share grows with N as stale replicas accumulate.
"""

from repro.experiments import fig13


def test_fig13_hit_rates(run_once):
    result = run_once(
        fig13.run,
        server_counts=(10, 30, 60, 100),
        num_files=1_000,
        num_ops=20_000,
    )
    print()
    print(result.format())

    for row in result.rows:
        # The within-group guarantee: >90% of queries never leave the group.
        assert row["within_group"] > 0.9
        # L1 is the dominant single level (locality capture).
        assert row["l1"] >= max(row["l2"], row["l4"])
        # Every level fraction is a valid probability.
        assert 0.99 <= row["l1"] + row["l2"] + row["l3"] + row["l4"] <= 1.01

    # The L1+L2 share is strongest at small N (the paper reports >80%
    # overall at full trace scale; scaled-down runs warm the LRU less).
    assert result.rows[0]["l1_plus_l2"] > 0.75

    # The paper's staleness effect: the L4 share grows with N.
    l4_shares = [row["l4"] for row in result.rows]
    assert l4_shares[-1] > l4_shares[0]
    assert all(share < 0.1 for share in l4_shares)
