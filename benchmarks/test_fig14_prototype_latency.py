"""Figure 14: prototype query latency under the intensified HP trace.

Paper: on the 60-node prototype, both schemes' latencies climb with load,
and G-HBA decreases HBA's query latency by up to 31.2% under the heaviest
workload.  Our prototype measures a reduction in the same band (the
disk/memory cost ratio of the virtual service clock is coarser than the
authors' hardware, so the measured reduction runs somewhat higher; see
EXPERIMENTS.md).
"""

from repro.experiments import fig14
from repro.experiments.fig14 import improvement_at_heaviest_load


def test_fig14_prototype_latency(run_once):
    result = run_once(
        fig14.run,
        num_nodes=20,
        group_size=7,
        num_files=2_000,
        num_ops=3_000,
        memory_fraction=0.5,
    )
    print()
    print(result.format())
    improvement = improvement_at_heaviest_load(result)
    print(f"\nG-HBA reduction at heaviest load: {improvement * 100:.1f}% "
          "(paper: up to 31.2%)")

    # G-HBA must win at the heaviest load, by a margin in the paper's band
    # (we accept 10..80% — same direction, same order of magnitude; our
    # virtual disk/memory cost ratio is coarser than the authors' hardware,
    # which widens the gap under deep saturation).
    assert 0.10 < improvement < 0.80

    # Both schemes' latency grows as the arrival gap shrinks (rising curves).
    for scheme in ("hba", "ghba"):
        series = [row["avg_latency_ms"] for row in result.filter(scheme=scheme)]
        assert series[-1] > series[0]

    # HBA ends strictly above G-HBA.
    hba_last = result.filter(scheme="hba")[-1]["avg_latency_ms"]
    ghba_last = result.filter(scheme="ghba")[-1]["avg_latency_ms"]
    assert hba_last > ghba_last
