"""Availability under failures (paper §4.5 made quantitative).

Crash failures lose only the failed servers' own files (~1/N coverage
each) with zero misroutes; graceful departures with re-homing lose nothing.
"""

from repro.experiments import availability


def test_availability_under_crash_failures(run_once):
    result = run_once(
        availability.run,
        num_servers=20,
        group_size=5,
        num_files=1_000,
        failures=5,
        graceful=False,
    )
    print()
    print(result.format())
    # Correctness under failure: never a misroute (Section 4.5's "no false
    # positives ... at a degraded performance and coverage level").
    assert all(row["misroutes"] == 0 for row in result.rows)
    # Coverage degrades roughly linearly: each failure loses ~1/N of files.
    coverages = [row["coverage"] for row in result.rows]
    assert coverages[0] == 1.0
    for earlier, later in zip(coverages, coverages[1:]):
        assert later <= earlier
    assert coverages[-1] > 1.0 - 2 * 5 / 20  # bounded loss
    # Latency stays in the same regime — degraded coverage, not collapse.
    latencies = [row["mean_latency_ms"] for row in result.rows]
    assert max(latencies) < 3 * latencies[0]


def test_availability_under_graceful_departures(run_once):
    result = run_once(
        availability.run,
        num_servers=20,
        group_size=5,
        num_files=800,
        failures=5,
        graceful=True,
    )
    # Re-homing keeps every file reachable (Section 3.1's departures).
    assert all(row["coverage"] == 1.0 for row in result.rows)
    assert all(row["misroutes"] == 0 for row in result.rows)
