"""Table 1: qualitative scheme comparison (regeneration + claims)."""

from repro.experiments import table01


def test_table01_comparison(run_once):
    result = run_once(table01.run)
    print()
    print(result.format())
    schemes = {row["scheme"] for row in result.rows}
    assert schemes == {
        "hash_based",
        "table_based",
        "static_tree",
        "dynamic_tree",
        "bloom_filter",
        "g_hba",
    }
    ghba = next(row for row in result.rows if row["scheme"] == "g_hba")
    # The paper's G-HBA row: O(1) lookup, small migration, O(n/m) memory.
    assert ghba["lookup_time"] == "O(1)"
    assert ghba["migration_cost"] == "Small"
    assert ghba["memory_overhead"] == "O(n/m)"
