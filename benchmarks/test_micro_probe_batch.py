"""Micro-benchmarks: isolated probe cost of the packed Bloom substrate.

Not a paper figure — these isolate the ISSUE 9 hot-path primitives from
the query pipeline around them, so a regression in the packed-bitset
layer itself (mask memoization, big-int AND/compare, the batched APIs)
shows up here even when end-to-end throughput hides it behind RNG and
metric costs.  Per-item cost is derived by benchmarking a whole batch
and dividing by the batch size; entries land in ``BENCH_throughput.json``
as ``micro_*``.
"""

import pytest

from repro.bloom.arrays import BloomFilterArray, LRUBloomFilterArray
from repro.bloom.bloom_filter import BloomFilter

from _bench_json import benchmark_entry, update_bench_json

BATCH_SIZES = (1, 16, 256)

#: One L2-like geometry everywhere: 8k bits, 6 hashes (the default the
#: cluster derives for 1 000 expected files at 8 bits/file).
NUM_BITS = 1 << 13
NUM_HASHES = 6


def _items(count, tag="probe"):
    return [f"/micro/{tag}/d{i % 11}/f{i}" for i in range(count)]


def _filter_with(items):
    bloom = BloomFilter(NUM_BITS, NUM_HASHES, seed=9)
    bloom.update(items)
    return bloom


def _record(name, benchmark, batch):
    entry = benchmark_entry(benchmark)
    entry["batch"] = batch
    entry["per_item_us"] = round(entry["mean_ms"] * 1000.0 / batch, 4)
    update_bench_json("BENCH_throughput.json", name, entry)


@pytest.mark.parametrize("batch", BATCH_SIZES)
def test_filter_query_loop(benchmark, batch):
    """Baseline: one ``query`` call per item (the unbatched hot path)."""
    bloom = _filter_with(_items(1_000))
    probes = _items(batch, tag="loop")
    bloom.contains_many(probes)  # warm the shared probe cache

    def run():
        return [bloom.query(item) for item in probes]

    answers = benchmark(run)
    assert len(answers) == batch
    _record(f"micro_query_loop_{batch}", benchmark, batch)


@pytest.mark.parametrize("batch", BATCH_SIZES)
def test_filter_contains_many(benchmark, batch):
    """The batched API must beat (or match, at batch=1) the loop."""
    bloom = _filter_with(_items(1_000))
    probes = _items(batch, tag="many")
    bloom.contains_many(probes)

    def run():
        return bloom.contains_many(probes)

    answers = benchmark(run)
    assert len(answers) == batch
    _record(f"micro_contains_many_{batch}", benchmark, batch)


def test_segment_array_probe_batch(benchmark):
    """L2 shape: one segment array holding 8 same-geometry replicas."""
    array = BloomFilterArray()
    for home_id in range(8):
        array.add_replica(
            home_id, _filter_with(_items(1_000, tag=f"seg{home_id}"))
        )
    probes = _items(256, tag="seg3")
    array.probe_batch(probes)

    def run():
        return array.probe_batch(probes)

    lookups = benchmark(run)
    assert len(lookups) == 256
    assert all(lookup.probes == 8 for lookup in lookups)
    _record("micro_segment_probe_batch_256", benchmark, 256)


def test_lru_array_probe_batch(benchmark):
    """L1 shape: 30 per-home counting filters over a warm cache."""
    array = LRUBloomFilterArray(
        capacity=2_000, filter_bits=1 << 12, num_hashes=NUM_HASHES, seed=9
    )
    items = _items(1_500, tag="lru")
    for index, item in enumerate(items):
        array.record(item, index % 30)
    probes = items[:256]
    array.probe_batch(probes)

    def run():
        return array.probe_batch(probes)

    lookups = benchmark(run)
    assert len(lookups) == 256
    # Warm entries resolve to exactly their recorded home (plus rare
    # false-positive extras); none may come back empty.
    assert all(lookup.hits for lookup in lookups)
    _record("micro_lru_probe_batch_256", benchmark, 256)
