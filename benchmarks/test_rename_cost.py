"""Rename / resize migration: pathname hashing vs. G-HBA.

Quantifies Table 1 and Section 1.1: hash placement must migrate
~(1 - 1/N) of a renamed subtree's records (and of *all* records on a
server-count change), while G-HBA re-keys in place and migrates zero
metadata — only (N - M')/(M' + 1) filter replicas on a join.
"""

from repro.experiments import rename_cost


def test_rename_and_resize_cost(run_once):
    result = run_once(rename_cost.run, num_servers=20, group_size=5)
    print()
    print(result.format())
    rename_row = next(
        row for row in result.rows if row["operation"] == "rename_directory"
    )
    resize_row = next(
        row for row in result.rows if row["operation"] == "add_server"
    )

    # Hash placement migrates ~(1 - 1/N) = 0.95 of the renamed records...
    assert rename_row["hash_fraction"] > 0.75
    # ...and of the entire file population on a resize.
    assert resize_row["hash_fraction"] > 0.75
    # G-HBA migrates zero metadata in both cases.
    assert rename_row["ghba_migrated"] == 0
    assert resize_row["ghba_migrated"] == 0
    # Its reconfiguration cost is a handful of filter replicas, not files.
    assert resize_row["ghba_replicas_moved"] < resize_row["records"] / 10
