"""Ablation: the L1 LRU Bloom filter array (DESIGN.md §4, decision 1).

Disabling L1 (capacity ~ 1) must collapse its traffic onto the deeper,
costlier levels and raise mean latency; growing the capacity recovers the
temporal locality of the workload with diminishing returns.
"""

from repro.experiments import ablation_lru


def test_ablation_lru_capacity(run_once):
    result = run_once(
        ablation_lru.run,
        lru_capacities=(1, 64, 512, 4096),
        num_servers=20,
        group_size=5,
        num_files=1_200,
        num_ops=8_000,
    )
    print()
    print(result.format())

    disabled = result.rows[0]
    enabled = result.rows[-1]
    # Without L1, almost nothing is served there; with it, L1 dominates.
    assert disabled["l1"] < 0.15
    assert enabled["l1"] > 0.5
    # The lost L1 traffic lands on L2/L3 when disabled.
    assert disabled["l3"] > enabled["l3"]
    # Latency: the LRU array pays for itself.
    assert enabled["mean_latency_ms"] < disabled["mean_latency_ms"]
    # Diminishing returns: the last doubling moves L1 by little.
    second_last = result.rows[-2]
    assert abs(enabled["l1"] - second_last["l1"]) < 0.1
