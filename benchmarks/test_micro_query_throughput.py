"""Micro-benchmarks: end-to-end query throughput of the two schemes.

Not a paper figure — these measure the harness itself: simulated queries
per second for G-HBA and HBA at N = 30, memory-resident, with a warm LRU.
Useful for spotting performance regressions in the query critical path.
"""

import itertools

import pytest

from repro.baselines.hba import HBACluster
from repro.core.cluster import GHBACluster
from repro.core.config import GHBAConfig
from repro.gateway.client import GatewayConfig, MetadataClient

from _bench_json import benchmark_entry, update_bench_json


def _config():
    return GHBAConfig(
        max_group_size=6,
        expected_files_per_mds=1_000,
        lru_capacity=2_000,
        lru_filter_bits=1 << 12,
        seed=9,
    )


def _populated(cluster_class, **kwargs):
    cluster = cluster_class(30, _config(), seed=9, **kwargs)
    paths = [f"/tp/d{i % 11}/f{i}" for i in range(6_000)]
    cluster.populate(paths)
    cluster.synchronize_replicas(force=True)
    return cluster, paths


@pytest.fixture(scope="module")
def ghba(obs_tracer):
    # The tracer is the session-wide null tracer unless --trace-out was
    # passed; HBA has no tracing hook, so only G-HBA is wired.
    return _populated(GHBACluster, tracer=obs_tracer)


@pytest.fixture(scope="module")
def hba():
    return _populated(HBACluster)


def test_ghba_query_throughput(benchmark, ghba):
    cluster, paths = ghba
    cycle = itertools.cycle(paths)

    def query():
        return cluster.query(next(cycle))

    result = benchmark(query)
    assert result.found
    update_bench_json(
        "BENCH_throughput.json", "ghba_query", benchmark_entry(benchmark)
    )


def test_hba_query_throughput(benchmark, hba):
    cluster, paths = hba
    cycle = itertools.cycle(paths)

    def query():
        return cluster.query(next(cycle))

    result = benchmark(query)
    assert result.found
    update_bench_json(
        "BENCH_throughput.json", "hba_query", benchmark_entry(benchmark)
    )


def test_ghba_hot_path_throughput(benchmark, ghba):
    """Repeated lookups of one hot path — the pure L1 fast path."""
    cluster, paths = ghba
    hot = paths[0]
    cluster.query(hot, origin_id=0)

    def query():
        return cluster.query(hot, origin_id=0)

    result = benchmark(query)
    assert result.level.name == "L1"
    update_bench_json(
        "BENCH_throughput.json", "ghba_hot_path", benchmark_entry(benchmark)
    )


def test_gateway_lookup_throughput(benchmark):
    """Gateway-fronted lookups over a Zipf-like cycle: mostly lease hits."""
    cluster, paths = _populated(GHBACluster)
    # Provisioned far above the replay rate: this measures the serving
    # pipeline, not admission-control shedding.
    gateway = MetadataClient(
        cluster, GatewayConfig(rate_per_s=1e8, burst=1e6)
    )
    # A short cycle keeps the working set inside the cache, so this
    # measures the lease fast path plus occasional re-validation.
    cycle = itertools.cycle(paths[:512])
    clock = itertools.count()

    def lookup():
        return gateway.lookup(next(cycle), now=next(clock) * 1e-4)

    response = benchmark(lookup)
    assert response.found
    entry = benchmark_entry(benchmark)
    entry["hit_rate"] = round(gateway.hit_rate(), 4)
    update_bench_json("BENCH_throughput.json", "gateway_lookup", entry)
